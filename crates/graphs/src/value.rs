//! Values flowing along condensed-graph arcs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value carried on an arc between graph nodes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Unit (no payload).
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// String.
    Str(String),
    /// Homogeneously-typed-or-not list.
    List(Vec<Value>),
}

impl Value {
    /// Integer view, coercing bools.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Float view, coercing ints.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(1).as_bool(), None);
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
    }
}
