//! The condensed-graph evaluation engine.
//!
//! Evaluation is availability-driven: a template's nodes are grouped into
//! topological waves ([`crate::graph::GraphTemplate::levels`]) and each
//! wave fires in parallel with rayon. Condensed nodes and `IfEl`
//! branches evaluate their subgraphs recursively on the worker that fired
//! them (rayon's work-stealing keeps the pool busy), which is the
//! coercion-driven part of the model.
//!
//! Primitives are resolved by an [`OpExecutor`] — the seam where Secure
//! WebCom plugs in middleware component invocation with authorisation.

use crate::graph::{GraphTemplate, NodeId, Operator, Source};
use crate::value::Value;
use rayon::prelude::*;
use std::fmt;
use std::sync::Mutex;

/// Engine errors.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// A primitive the executor does not provide.
    UnknownPrimitive(String),
    /// A primitive rejected its arguments.
    BadArguments {
        /// The primitive.
        op: String,
        /// The reason.
        reason: String,
    },
    /// The executor refused to run the operation (e.g. authorisation
    /// denied by the WebCom stack).
    Refused {
        /// The primitive.
        op: String,
        /// The reason.
        reason: String,
    },
    /// An `IfEl` condition was not a boolean.
    NonBooleanCondition {
        /// The node.
        node: NodeId,
        /// What the condition evaluated to.
        got: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownPrimitive(op) => write!(f, "unknown primitive `{op}`"),
            EngineError::BadArguments { op, reason } => {
                write!(f, "primitive `{op}` rejected arguments: {reason}")
            }
            EngineError::Refused { op, reason } => write!(f, "`{op}` refused: {reason}"),
            EngineError::NonBooleanCondition { node, got } => {
                write!(f, "IfEl node {node}: condition evaluated to {got}, not bool")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Executes named primitives. Implementations must be `Sync`: waves fire
/// in parallel.
pub trait OpExecutor: Sync {
    /// Runs `op` on `args`.
    fn execute(&self, op: &str, args: &[Value]) -> Result<Value, EngineError>;
}

/// The built-in arithmetic/logic executor used by tests, examples and
/// benches.
#[derive(Default)]
pub struct ArithExecutor;

impl OpExecutor for ArithExecutor {
    fn execute(&self, op: &str, args: &[Value]) -> Result<Value, EngineError> {
        let int2 = |f: fn(i64, i64) -> i64| -> Result<Value, EngineError> {
            match (args.first().and_then(Value::as_int), args.get(1).and_then(Value::as_int)) {
                (Some(a), Some(b)) => Ok(Value::Int(f(a, b))),
                _ => Err(EngineError::BadArguments {
                    op: op.to_string(),
                    reason: format!("expected two ints, got {args:?}"),
                }),
            }
        };
        match op {
            "id" => args.first().cloned().ok_or_else(|| EngineError::BadArguments {
                op: op.into(),
                reason: "expected one argument".into(),
            }),
            "add" => int2(i64::wrapping_add),
            "sub" => int2(i64::wrapping_sub),
            "mul" => int2(i64::wrapping_mul),
            "max" => int2(i64::max),
            "min" => int2(i64::min),
            "lt" => match (args.first().and_then(Value::as_int), args.get(1).and_then(Value::as_int)) {
                (Some(a), Some(b)) => Ok(Value::Bool(a < b)),
                _ => Err(EngineError::BadArguments {
                    op: op.into(),
                    reason: "expected two ints".into(),
                }),
            },
            "eq" => Ok(Value::Bool(args.first() == args.get(1))),
            "concat" => {
                let mut s = String::new();
                for a in args {
                    s.push_str(&a.to_string());
                }
                Ok(Value::Str(s))
            }
            "list" => Ok(Value::List(args.to_vec())),
            "sum_list" => match args.first() {
                Some(Value::List(items)) => {
                    let mut total = 0i64;
                    for v in items {
                        total = total.wrapping_add(v.as_int().ok_or_else(|| {
                            EngineError::BadArguments {
                                op: op.into(),
                                reason: "non-int in list".into(),
                            }
                        })?);
                    }
                    Ok(Value::Int(total))
                }
                _ => Err(EngineError::BadArguments {
                    op: op.into(),
                    reason: "expected a list".into(),
                }),
            },
            other => Err(EngineError::UnknownPrimitive(other.to_string())),
        }
    }
}

/// The evaluation engine.
pub struct Engine<'a, E: OpExecutor> {
    executor: &'a E,
}

impl<'a, E: OpExecutor> Engine<'a, E> {
    /// An engine over `executor`.
    pub fn new(executor: &'a E) -> Self {
        Engine { executor }
    }

    /// Evaluates `template` with `params`, in parallel waves.
    ///
    /// # Panics
    /// Panics if `params.len() != template.arity` — callers validate
    /// arity when building graphs.
    pub fn evaluate(&self, template: &GraphTemplate, params: &[Value]) -> Result<Value, EngineError> {
        assert_eq!(
            params.len(),
            template.arity,
            "graph `{}` expects {} params",
            template.name,
            template.arity
        );
        let results: Vec<Mutex<Option<Value>>> =
            (0..template.nodes.len()).map(|_| Mutex::new(None)).collect();
        let read = |s: &Source, results: &[Mutex<Option<Value>>]| -> Value {
            match *s {
                Source::Param(p) => params[p].clone(),
                Source::Node(n) => results[n]
                    .lock()
                    .expect("poisoned")
                    .clone()
                    .expect("wave ordering guarantees availability"),
            }
        };
        for wave in template.levels() {
            let wave_results: Result<Vec<(NodeId, Value)>, EngineError> = wave
                .par_iter()
                .map(|&i| {
                    let node = &template.nodes[i];
                    let args: Vec<Value> = node.inputs.iter().map(|s| read(s, &results)).collect();
                    let value = match &node.operator {
                        Operator::Const(v) => v.clone(),
                        Operator::Primitive(op) => self.executor.execute(op, &args)?,
                        Operator::Condensed(sub) => self.evaluate(sub, &args)?,
                        Operator::IfEl { then_branch, else_branch } => {
                            let cond = args[0].as_bool().ok_or_else(|| {
                                EngineError::NonBooleanCondition {
                                    node: i,
                                    got: args[0].to_string(),
                                }
                            })?;
                            let branch = if cond { then_branch } else { else_branch };
                            self.evaluate(branch, &args[1..])?
                        }
                    };
                    Ok((i, value))
                })
                .collect();
            for (i, v) in wave_results? {
                *results[i].lock().expect("poisoned") = Some(v);
            }
        }
        Ok(read(&template.output, &results))
    }
}

/// Convenience: evaluate with the built-in arithmetic executor.
pub fn evaluate_arith(template: &GraphTemplate, params: &[Value]) -> Result<Value, EngineError> {
    Engine::new(&ArithExecutor).evaluate(template, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn add_two() -> GraphTemplate {
        let mut b = GraphBuilder::new("add-two", 2);
        let s = b.primitive("sum", "add", vec![Source::Param(0), Source::Param(1)]);
        b.output(Source::Node(s)).unwrap()
    }

    #[test]
    fn evaluates_flat_graph() {
        let t = add_two();
        assert_eq!(
            evaluate_arith(&t, &[Value::Int(2), Value::Int(40)]).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn evaluates_diamond() {
        // (p0+1) * (p0+2)
        let mut b = GraphBuilder::new("diamond", 1);
        let one = b.constant("one", 1i64);
        let two = b.constant("two", 2i64);
        let l = b.primitive("l", "add", vec![Source::Param(0), Source::Node(one)]);
        let r = b.primitive("r", "add", vec![Source::Param(0), Source::Node(two)]);
        let m = b.primitive("m", "mul", vec![Source::Node(l), Source::Node(r)]);
        let t = b.output(Source::Node(m)).unwrap();
        assert_eq!(evaluate_arith(&t, &[Value::Int(3)]).unwrap(), Value::Int(20));
    }

    #[test]
    fn condensed_expansion() {
        let sub = Arc::new(add_two());
        let mut b = GraphBuilder::new("outer", 2);
        let c = b.condensed("call", sub, vec![Source::Param(0), Source::Param(1)]);
        let d = b.primitive("dbl", "mul", vec![Source::Node(c), Source::Node(c)]);
        let t = b.output(Source::Node(d)).unwrap();
        assert_eq!(
            evaluate_arith(&t, &[Value::Int(3), Value::Int(4)]).unwrap(),
            Value::Int(49)
        );
    }

    #[test]
    fn ifel_chooses_branch() {
        let then_b = Arc::new({
            let mut b = GraphBuilder::new("then", 1);
            let n = b.primitive("inc", "add", vec![Source::Param(0), Source::Node(1)]);
            b.constant("one", 1i64);
            b.output(Source::Node(n)).unwrap()
        });
        let else_b = Arc::new({
            let mut b = GraphBuilder::new("else", 1);
            let n = b.primitive("dec", "sub", vec![Source::Param(0), Source::Node(1)]);
            b.constant("one", 1i64);
            b.output(Source::Node(n)).unwrap()
        });
        let mut b = GraphBuilder::new("outer", 2);
        let cond = b.primitive("lt", "lt", vec![Source::Param(0), Source::Param(1)]);
        let choice = b.if_el(
            "choose",
            then_b,
            else_b,
            vec![Source::Node(cond), Source::Param(0)],
        );
        let t = b.output(Source::Node(choice)).unwrap();
        // 3 < 10 -> then -> 3+1
        assert_eq!(
            evaluate_arith(&t, &[Value::Int(3), Value::Int(10)]).unwrap(),
            Value::Int(4)
        );
        // 10 < 3 is false -> else -> 10-1
        assert_eq!(
            evaluate_arith(&t, &[Value::Int(10), Value::Int(3)]).unwrap(),
            Value::Int(9)
        );
    }

    #[test]
    fn ifel_only_fires_taken_branch() {
        // The untaken branch's primitive must not run (coercion-driven).
        struct Counting {
            calls: AtomicUsize,
        }
        impl OpExecutor for Counting {
            fn execute(&self, op: &str, args: &[Value]) -> Result<Value, EngineError> {
                if op == "boom" {
                    self.calls.fetch_add(1, Ordering::SeqCst);
                    return Ok(Value::Unit);
                }
                ArithExecutor.execute(op, args)
            }
        }
        let then_b = Arc::new({
            let mut b = GraphBuilder::new("then", 0);
            let c = b.constant("ok", 1i64);
            b.output(Source::Node(c)).unwrap()
        });
        let else_b = Arc::new({
            let mut b = GraphBuilder::new("else", 0);
            let n = b.primitive("boom", "boom", vec![]);
            b.output(Source::Node(n)).unwrap()
        });
        let mut b = GraphBuilder::new("outer", 0);
        let cond = b.constant("true", true);
        let choice = b.if_el("choose", then_b, else_b, vec![Source::Node(cond)]);
        let t = b.output(Source::Node(choice)).unwrap();
        let exec = Counting {
            calls: AtomicUsize::new(0),
        };
        assert_eq!(
            Engine::new(&exec).evaluate(&t, &[]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(exec.calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn errors_propagate() {
        let mut b = GraphBuilder::new("bad", 0);
        let n = b.primitive("nope", "no-such-op", vec![]);
        let t = b.output(Source::Node(n)).unwrap();
        assert!(matches!(
            evaluate_arith(&t, &[]),
            Err(EngineError::UnknownPrimitive(_))
        ));
        let mut b = GraphBuilder::new("badargs", 0);
        let s = b.constant("s", "str");
        let n = b.primitive("add", "add", vec![Source::Node(s), Source::Node(s)]);
        let t = b.output(Source::Node(n)).unwrap();
        assert!(matches!(
            evaluate_arith(&t, &[]),
            Err(EngineError::BadArguments { .. })
        ));
    }

    #[test]
    fn non_boolean_condition_is_an_error() {
        let branch = Arc::new({
            let mut b = GraphBuilder::new("b", 0);
            let c = b.constant("c", 1i64);
            b.output(Source::Node(c)).unwrap()
        });
        let mut b = GraphBuilder::new("outer", 0);
        let cond = b.constant("notbool", 7i64);
        let choice = b.if_el("choose", branch.clone(), branch, vec![Source::Node(cond)]);
        let t = b.output(Source::Node(choice)).unwrap();
        assert!(matches!(
            evaluate_arith(&t, &[]),
            Err(EngineError::NonBooleanCondition { .. })
        ));
    }

    #[test]
    fn wide_fanout_parallel_wave() {
        // 64 independent nodes in one wave, summed pairwise after.
        let mut b = GraphBuilder::new("fanout", 1);
        let leaves: Vec<_> = (0..64)
            .map(|i| {
                let c = b.constant(&format!("c{i}"), i as i64);
                b.primitive(&format!("n{i}"), "add", vec![Source::Param(0), Source::Node(c)])
            })
            .collect();
        let l = b.primitive(
            "gather",
            "list",
            leaves.iter().map(|&n| Source::Node(n)).collect(),
        );
        let s = b.primitive("sum", "sum_list", vec![Source::Node(l)]);
        let t = b.output(Source::Node(s)).unwrap();
        let expected: i64 = (0..64).map(|i| 10 + i).sum();
        assert_eq!(
            evaluate_arith(&t, &[Value::Int(10)]).unwrap(),
            Value::Int(expected)
        );
    }

    #[test]
    fn deep_recursion_through_condensed_nodes() {
        // Chain of 32 nested condensed increments.
        let mut inner: Arc<GraphTemplate> = Arc::new({
            let mut b = GraphBuilder::new("inc", 1);
            let one = b.constant("one", 1i64);
            let n = b.primitive("add", "add", vec![Source::Param(0), Source::Node(one)]);
            b.output(Source::Node(n)).unwrap()
        });
        for depth in 0..31 {
            inner = Arc::new({
                let mut b = GraphBuilder::new(&format!("wrap{depth}"), 1);
                let c = b.condensed("call", inner.clone(), vec![Source::Param(0)]);
                let one = b.constant("one", 1i64);
                let n = b.primitive("add", "add", vec![Source::Node(c), Source::Node(one)]);
                b.output(Source::Node(n)).unwrap()
            });
        }
        assert_eq!(
            evaluate_arith(&inner, &[Value::Int(0)]).unwrap(),
            Value::Int(32)
        );
    }

    #[test]
    fn output_can_be_a_param() {
        let t = GraphBuilder::new("identity", 1)
            .output(Source::Param(0))
            .unwrap();
        assert_eq!(
            evaluate_arith(&t, &[Value::Str("x".into())]).unwrap(),
            Value::Str("x".into())
        );
    }
}
