//! Condensed graphs: the metacomputing substrate WebCom coordinates
//! (Morrison [21], WebCom [22]).
//!
//! Condensed graphs unify availability-driven, coercion-driven and
//! control-driven computing: nodes fire when their operands arrive;
//! condensed nodes carry whole graphs as operators and expand when
//! fired; conditionals coerce only the taken branch into evaluation.
//!
//! * [`value`] — values carried on arcs;
//! * [`graph`] — templates, validation (reference/arity/cycle checks),
//!   topological waves, the fluent [`graph::GraphBuilder`];
//! * [`engine`] — the parallel (rayon) wave evaluator and the
//!   [`engine::OpExecutor`] seam through which Secure WebCom injects
//!   middleware invocation with authorisation.

pub mod dot;
pub mod engine;
pub mod graph;
pub mod value;

pub use dot::to_dot;
pub use engine::{evaluate_arith, ArithExecutor, Engine, EngineError, OpExecutor};
pub use graph::{GraphBuilder, GraphError, GraphTemplate, NodeId, NodeSpec, Operator, Source};
pub use value::Value;
