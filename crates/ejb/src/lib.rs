//! Enterprise JavaBeans middleware security simulator (paper §2).
//!
//! [`container`] models an EJB 2.1 server: beans with deployment-
//! descriptor security (`security-role`, `method-permission`,
//! `unchecked`, `exclude-list`), server-wide principals, and the
//! deployer's principal-role mapping. [`adapter`] exposes it through the
//! common [`hetsec_middleware::MiddlewareSecurity`] surface.

pub mod adapter;
pub mod container;
pub mod descriptor;

pub use adapter::EjbMiddleware;
pub use container::{BeanDescriptor, EjbContainer, InvokeOutcome, MethodPermission};
pub use descriptor::{deploy_descriptor, parse_ejb_jar, DescriptorError, EjbJar, SALARIES_EJB_JAR};
