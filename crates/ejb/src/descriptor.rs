//! EJB 2.1 deployment-descriptor ingestion (`ejb-jar.xml`).
//!
//! The paper's EJB security policies were configured through deployment
//! descriptors; this module parses the security-relevant subset —
//! `<security-role>`, `<method-permission>` (with `<unchecked/>`),
//! `<exclude-list>` — from a simplified `ejb-jar.xml` and deploys it
//! into an [`EjbContainer`].
//!
//! The XML dialect supported is deliberately small (elements, text,
//! comments; no attributes or namespaces), which covers real descriptors
//! of the era for these elements.

use crate::container::EjbContainer;
use std::fmt;

/// A parsed XML element: name, text content, children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlElement {
    /// Element name.
    pub name: String,
    /// Concatenated text content (trimmed).
    pub text: String,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
}

impl XmlElement {
    /// First child with the given name.
    pub fn child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text of the first child with the given name.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name).map(|c| c.text.as_str())
    }
}

/// Descriptor parsing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DescriptorError {
    /// XML syntax problem.
    Xml(String),
    /// A required element was missing.
    Missing(&'static str),
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::Xml(m) => write!(f, "malformed descriptor XML: {m}"),
            DescriptorError::Missing(e) => write!(f, "descriptor missing <{e}>"),
        }
    }
}

impl std::error::Error for DescriptorError {}

/// Parses the minimal XML dialect into an element tree.
pub fn parse_xml(src: &str) -> Result<XmlElement, DescriptorError> {
    let mut chars = src.char_indices().peekable();
    // Skip prolog/comments/whitespace, find the root element.
    let root = parse_element(src, &mut chars)?;
    // Trailing whitespace/comments allowed.
    while let Some(&(i, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if src[i..].starts_with("<!--") {
            skip_comment(src, &mut chars)?;
        } else {
            return Err(DescriptorError::Xml(format!("trailing content at byte {i}")));
        }
    }
    Ok(root)
}

type CharIter<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_comment(src: &str, chars: &mut CharIter) -> Result<(), DescriptorError> {
    let (start, _) = *chars.peek().ok_or_else(|| DescriptorError::Xml("eof".into()))?;
    let rest = &src[start..];
    debug_assert!(rest.starts_with("<!--"));
    match rest.find("-->") {
        Some(end) => {
            let target = start + end + 3;
            while chars.peek().is_some_and(|&(i, _)| i < target) {
                chars.next();
            }
            Ok(())
        }
        None => Err(DescriptorError::Xml("unterminated comment".into())),
    }
}

fn parse_element(src: &str, chars: &mut CharIter) -> Result<XmlElement, DescriptorError> {
    // Skip whitespace, prolog, comments until '<' of an element.
    loop {
        match chars.peek() {
            None => return Err(DescriptorError::Xml("expected element".into())),
            Some(&(i, c)) if c.is_whitespace() => {
                let _ = i;
                chars.next();
            }
            Some(&(i, '<')) => {
                let rest = &src[i..];
                if rest.starts_with("<?") {
                    // Prolog: skip to '?>'.
                    let end = rest
                        .find("?>")
                        .ok_or_else(|| DescriptorError::Xml("unterminated prolog".into()))?;
                    let target = i + end + 2;
                    while chars.peek().is_some_and(|&(j, _)| j < target) {
                        chars.next();
                    }
                } else if rest.starts_with("<!--") {
                    skip_comment(src, chars)?;
                } else if rest.starts_with("<!") {
                    // DOCTYPE: skip to '>'.
                    let end = rest
                        .find('>')
                        .ok_or_else(|| DescriptorError::Xml("unterminated doctype".into()))?;
                    let target = i + end + 1;
                    while chars.peek().is_some_and(|&(j, _)| j < target) {
                        chars.next();
                    }
                } else {
                    break;
                }
            }
            Some(&(i, c)) => {
                return Err(DescriptorError::Xml(format!(
                    "unexpected {c:?} at byte {i} (expected element)"
                )))
            }
        }
    }
    // Opening tag.
    let (open_at, _) = chars.next().ok_or_else(|| DescriptorError::Xml("eof".into()))?; // consumes '<'
    let mut name = String::new();
    let mut self_closing = false;
    loop {
        match chars.next() {
            None => return Err(DescriptorError::Xml("unterminated tag".into())),
            Some((_, '>')) => break,
            Some((_, '/')) => {
                // Expect '>' next.
                match chars.next() {
                    Some((_, '>')) => {
                        self_closing = true;
                        break;
                    }
                    _ => return Err(DescriptorError::Xml("malformed self-closing tag".into())),
                }
            }
            Some((i, c)) if c.is_whitespace() => {
                let _ = (i, open_at);
                // Attributes are not supported; skip to tag end.
                loop {
                    match chars.next() {
                        None => return Err(DescriptorError::Xml("unterminated tag".into())),
                        Some((_, '>')) => break,
                        Some((_, '/')) => {
                            if let Some((_, '>')) = chars.next() {
                                self_closing = true;
                                break;
                            }
                            return Err(DescriptorError::Xml("malformed tag".into()));
                        }
                        Some(_) => {}
                    }
                }
                break;
            }
            Some((_, c)) => name.push(c),
        }
    }
    if name.is_empty() {
        return Err(DescriptorError::Xml("empty element name".into()));
    }
    let mut element = XmlElement {
        name: name.clone(),
        text: String::new(),
        children: Vec::new(),
    };
    if self_closing {
        return Ok(element);
    }
    // Content until matching close tag.
    let mut text = String::new();
    loop {
        match chars.peek() {
            None => return Err(DescriptorError::Xml(format!("unclosed <{name}>"))),
            Some(&(i, '<')) => {
                let rest = &src[i..];
                if rest.starts_with("</") {
                    // Close tag.
                    let end = rest
                        .find('>')
                        .ok_or_else(|| DescriptorError::Xml("unterminated close tag".into()))?;
                    let close_name = rest[2..end].trim();
                    if close_name != name {
                        return Err(DescriptorError::Xml(format!(
                            "mismatched </{}>, expected </{}>",
                            close_name, name
                        )));
                    }
                    let target = i + end + 1;
                    while chars.peek().is_some_and(|&(j, _)| j < target) {
                        chars.next();
                    }
                    element.text = text.trim().to_string();
                    return Ok(element);
                } else if rest.starts_with("<!--") {
                    skip_comment(src, chars)?;
                } else {
                    element.children.push(parse_element(src, chars)?);
                }
            }
            Some(&(_, c)) => {
                text.push(c);
                chars.next();
            }
        }
    }
}

/// A method-permission entry as read from the descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DescriptorPermission {
    /// Bean name.
    pub bean: String,
    /// Method name (`*` meaning all currently-deployed methods).
    pub method: String,
    /// Roles permitted; empty plus `unchecked` = anyone.
    pub roles: Vec<String>,
    /// Whether the entry was `<unchecked/>`.
    pub unchecked: bool,
}

/// Everything the deployer needs from an `ejb-jar.xml`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EjbJar {
    /// Declared security roles.
    pub security_roles: Vec<String>,
    /// Beans and their declared methods.
    pub beans: Vec<(String, Vec<String>)>,
    /// Method permissions.
    pub permissions: Vec<DescriptorPermission>,
    /// Excluded (bean, method) pairs.
    pub excluded: Vec<(String, String)>,
}

/// Parses the security view of an `ejb-jar.xml`.
pub fn parse_ejb_jar(src: &str) -> Result<EjbJar, DescriptorError> {
    let root = parse_xml(src)?;
    if root.name != "ejb-jar" {
        return Err(DescriptorError::Missing("ejb-jar"));
    }
    let mut jar = EjbJar::default();
    // <enterprise-beans><session><ejb-name>..</ejb-name><method>..</method>*
    if let Some(beans) = root.child("enterprise-beans") {
        for bean in beans.children.iter() {
            let Some(name) = bean.child_text("ejb-name") else {
                return Err(DescriptorError::Missing("ejb-name"));
            };
            let methods: Vec<String> = bean
                .children_named("business-method")
                .map(|m| m.text.clone())
                .collect();
            jar.beans.push((name.to_string(), methods));
        }
    }
    let Some(asm) = root.child("assembly-descriptor") else {
        return Ok(jar);
    };
    for role in asm.children_named("security-role") {
        if let Some(r) = role.child_text("role-name") {
            jar.security_roles.push(r.to_string());
        }
    }
    for mp in asm.children_named("method-permission") {
        let unchecked = mp.child("unchecked").is_some();
        let roles: Vec<String> = mp
            .children_named("role-name")
            .map(|r| r.text.clone())
            .collect();
        for method in mp.children_named("method") {
            let bean = method
                .child_text("ejb-name")
                .ok_or(DescriptorError::Missing("ejb-name"))?;
            let m = method
                .child_text("method-name")
                .ok_or(DescriptorError::Missing("method-name"))?;
            jar.permissions.push(DescriptorPermission {
                bean: bean.to_string(),
                method: m.to_string(),
                roles: roles.clone(),
                unchecked,
            });
        }
    }
    if let Some(excl) = asm.child("exclude-list") {
        for method in excl.children_named("method") {
            let bean = method
                .child_text("ejb-name")
                .ok_or(DescriptorError::Missing("ejb-name"))?;
            let m = method
                .child_text("method-name")
                .ok_or(DescriptorError::Missing("method-name"))?;
            jar.excluded.push((bean.to_string(), m.to_string()));
        }
    }
    Ok(jar)
}

/// Deploys a parsed descriptor into a container. Returns the number of
/// method-permission entries applied.
pub fn deploy_descriptor(container: &EjbContainer, jar: &EjbJar) -> usize {
    for (bean, methods) in &jar.beans {
        let refs: Vec<&str> = methods.iter().map(String::as_str).collect();
        container.deploy_bean(bean, &refs);
        for role in &jar.security_roles {
            container.declare_role(bean, role);
        }
    }
    let mut applied = 0;
    for p in &jar.permissions {
        let methods: Vec<String> = if p.method == "*" {
            jar.beans
                .iter()
                .find(|(b, _)| b == &p.bean)
                .map(|(_, ms)| ms.clone())
                .unwrap_or_default()
        } else {
            vec![p.method.clone()]
        };
        for m in methods {
            if p.unchecked {
                container.set_unchecked(&p.bean, &m);
                applied += 1;
            } else {
                for role in &p.roles {
                    container.permit_method(&p.bean, &m, role);
                    applied += 1;
                }
            }
        }
    }
    for (bean, method) in &jar.excluded {
        container.set_excluded(bean, method);
        applied += 1;
    }
    applied
}

/// The descriptor for the paper's salaries bean, as a realistic fixture.
pub const SALARIES_EJB_JAR: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- Salaries application deployment descriptor (paper Fig. 1 shape) -->
<ejb-jar>
  <enterprise-beans>
    <session>
      <ejb-name>SalariesBean</ejb-name>
      <business-method>read</business-method>
      <business-method>write</business-method>
      <business-method>ping</business-method>
      <business-method>purge</business-method>
    </session>
  </enterprise-beans>
  <assembly-descriptor>
    <security-role>
      <role-name>Manager</role-name>
    </security-role>
    <security-role>
      <role-name>Clerk</role-name>
    </security-role>
    <method-permission>
      <role-name>Manager</role-name>
      <method>
        <ejb-name>SalariesBean</ejb-name>
        <method-name>read</method-name>
      </method>
      <method>
        <ejb-name>SalariesBean</ejb-name>
        <method-name>write</method-name>
      </method>
    </method-permission>
    <method-permission>
      <role-name>Clerk</role-name>
      <method>
        <ejb-name>SalariesBean</ejb-name>
        <method-name>write</method-name>
      </method>
    </method-permission>
    <method-permission>
      <unchecked/>
      <method>
        <ejb-name>SalariesBean</ejb-name>
        <method-name>ping</method-name>
      </method>
    </method-permission>
    <exclude-list>
      <method>
        <ejb-name>SalariesBean</ejb-name>
        <method-name>purge</method-name>
      </method>
    </exclude-list>
  </assembly-descriptor>
</ejb-jar>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::naming::EjbDomain;

    #[test]
    fn xml_parser_handles_structure() {
        let e = parse_xml("<a><b>hi</b><b>there</b><c/></a>").unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.children.len(), 3);
        assert_eq!(e.child_text("b"), Some("hi"));
        assert_eq!(e.children_named("b").count(), 2);
        assert!(e.child("c").unwrap().children.is_empty());
    }

    #[test]
    fn xml_parser_skips_prolog_doctype_comments() {
        let src = "<?xml version=\"1.0\"?>\n<!DOCTYPE ejb-jar>\n<!-- hi -->\n<r><x>1</x></r>\n<!-- bye -->";
        let e = parse_xml(src).unwrap();
        assert_eq!(e.name, "r");
        assert_eq!(e.child_text("x"), Some("1"));
    }

    #[test]
    fn xml_parser_rejects_malformed() {
        assert!(parse_xml("").is_err());
        assert!(parse_xml("<a>").is_err());
        assert!(parse_xml("<a></b>").is_err());
        assert!(parse_xml("<a></a><b></b>").is_err());
        assert!(parse_xml("<a><!-- unterminated </a>").is_err());
        assert!(parse_xml("text only").is_err());
        assert!(parse_xml("<>x</>").is_err());
    }

    #[test]
    fn parses_the_salaries_descriptor() {
        let jar = parse_ejb_jar(SALARIES_EJB_JAR).unwrap();
        assert_eq!(jar.security_roles, vec!["Manager", "Clerk"]);
        assert_eq!(jar.beans.len(), 1);
        assert_eq!(jar.beans[0].0, "SalariesBean");
        assert_eq!(jar.beans[0].1.len(), 4);
        assert_eq!(jar.permissions.len(), 4); // read+write (Manager), write (Clerk), ping (unchecked)
        assert_eq!(jar.excluded, vec![("SalariesBean".to_string(), "purge".to_string())]);
        assert!(jar.permissions.iter().any(|p| p.unchecked && p.method == "ping"));
    }

    #[test]
    fn deploys_into_a_container_with_paper_semantics() {
        let c = EjbContainer::new(EjbDomain::new("h", "s", "Salaries"));
        let jar = parse_ejb_jar(SALARIES_EJB_JAR).unwrap();
        let applied = deploy_descriptor(&c, &jar);
        assert!(applied >= 5);
        c.map_principal("Manager", "bob");
        c.map_principal("Clerk", "alice");
        c.add_principal("guest");
        assert!(c.invoke("bob", "SalariesBean", "read").is_ok());
        assert!(c.invoke("bob", "SalariesBean", "write").is_ok());
        assert!(c.invoke("alice", "SalariesBean", "write").is_ok());
        assert!(!c.invoke("alice", "SalariesBean", "read").is_ok());
        assert!(c.invoke("guest", "SalariesBean", "ping").is_ok());
        assert!(!c.invoke("bob", "SalariesBean", "purge").is_ok());
    }

    #[test]
    fn wildcard_method_permission_covers_all_methods() {
        let src = r#"<ejb-jar>
  <enterprise-beans>
    <session>
      <ejb-name>B</ejb-name>
      <business-method>m1</business-method>
      <business-method>m2</business-method>
    </session>
  </enterprise-beans>
  <assembly-descriptor>
    <method-permission>
      <role-name>R</role-name>
      <method><ejb-name>B</ejb-name><method-name>*</method-name></method>
    </method-permission>
  </assembly-descriptor>
</ejb-jar>"#;
        let jar = parse_ejb_jar(src).unwrap();
        let c = EjbContainer::new(EjbDomain::new("h", "s", "j"));
        deploy_descriptor(&c, &jar);
        c.map_principal("R", "u");
        assert!(c.invoke("u", "B", "m1").is_ok());
        assert!(c.invoke("u", "B", "m2").is_ok());
    }

    #[test]
    fn descriptor_without_assembly_is_fine() {
        let jar = parse_ejb_jar("<ejb-jar><enterprise-beans><session><ejb-name>B</ejb-name></session></enterprise-beans></ejb-jar>").unwrap();
        assert!(jar.permissions.is_empty());
        assert_eq!(jar.beans.len(), 1);
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            parse_ejb_jar("<web-app></web-app>"),
            Err(DescriptorError::Missing("ejb-jar"))
        ));
    }

    #[test]
    fn exported_policy_matches_descriptor() {
        use crate::adapter::EjbMiddleware;
        let m = EjbMiddleware::new(EjbDomain::new("h", "s", "Salaries"));
        let jar = parse_ejb_jar(SALARIES_EJB_JAR).unwrap();
        deploy_descriptor(m.container(), &jar);
        m.container().map_principal("Manager", "bob");
        use hetsec_middleware::security::MiddlewareSecurity;
        let policy = m.export_policy();
        // read/write for Manager, write for Clerk = 3 grants (unchecked
        // and excluded entries have no RBAC representation).
        assert_eq!(policy.grant_count(), 3);
        assert_eq!(policy.assignment_count(), 1);
    }
}
