//! [`MiddlewareSecurity`] adapter for the EJB container.

use crate::container::EjbContainer;
use hetsec_middleware::naming::{EjbDomain, MiddlewareKind};
use hetsec_middleware::security::{Decision, MiddlewareError, MiddlewareSecurity};
use hetsec_rbac::{
    Domain, ObjectType, Permission, PermissionGrant, RbacPolicy, Role, RoleAssignment, User,
};

/// An EJB server viewed through the common middleware-security surface.
pub struct EjbMiddleware {
    container: EjbContainer,
}

impl EjbMiddleware {
    /// Wraps a fresh container.
    pub fn new(domain: EjbDomain) -> Self {
        EjbMiddleware {
            container: EjbContainer::new(domain),
        }
    }

    /// The underlying container (for native administration).
    pub fn container(&self) -> &EjbContainer {
        &self.container
    }

    fn check_domain(&self, domain: &Domain) -> Result<(), MiddlewareError> {
        if domain.as_str() != self.container.domain().to_string() {
            return Err(MiddlewareError::ForeignDomain {
                domain: domain.clone(),
                kind: MiddlewareKind::Ejb,
                instance: self.instance_name(),
            });
        }
        Ok(())
    }
}

impl MiddlewareSecurity for EjbMiddleware {
    fn kind(&self) -> MiddlewareKind {
        MiddlewareKind::Ejb
    }

    fn instance_name(&self) -> String {
        format!("EJB@{}", self.container.domain())
    }

    fn owned_domains(&self) -> Vec<Domain> {
        vec![self.container.domain().to_domain()]
    }

    fn export_policy(&self) -> RbacPolicy {
        use crate::container::MethodPermission;
        let mut policy = RbacPolicy::new();
        let domain = self.container.domain().to_string();
        for (bean, desc) in self.container.beans() {
            for (method, mp) in &desc.method_permissions {
                if let MethodPermission::Roles(roles) = mp {
                    for role in roles {
                        policy.grant(PermissionGrant::new(
                            domain.as_str(),
                            role.as_str(),
                            bean.as_str(),
                            method.as_str(),
                        ));
                    }
                }
                // `unchecked`/`excluded` entries have no RBAC row; the
                // translation layer documents this lossiness.
            }
        }
        for (role, members) in self.container.role_members() {
            for user in members {
                policy.assign(RoleAssignment::new(
                    user.as_str(),
                    domain.as_str(),
                    role.as_str(),
                ));
            }
        }
        policy
    }

    fn grant(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError> {
        self.check_domain(&grant.domain)?;
        self.container.permit_method(
            grant.object_type.as_str(),
            grant.permission.as_str(),
            grant.role.as_str(),
        );
        Ok(())
    }

    fn revoke(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError> {
        self.check_domain(&grant.domain)?;
        if self.container.forbid_method(
            grant.object_type.as_str(),
            grant.permission.as_str(),
            grant.role.as_str(),
        ) {
            Ok(())
        } else {
            Err(MiddlewareError::NotFound(format!("{grant}")))
        }
    }

    fn assign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError> {
        self.check_domain(&assignment.domain)?;
        self.container
            .map_principal(assignment.role.as_str(), assignment.user.as_str());
        Ok(())
    }

    fn unassign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError> {
        self.check_domain(&assignment.domain)?;
        if self
            .container
            .unmap_principal(assignment.role.as_str(), assignment.user.as_str())
        {
            Ok(())
        } else {
            Err(MiddlewareError::NotFound(format!("{assignment}")))
        }
    }

    fn check(
        &self,
        user: &User,
        domain: &Domain,
        role: Option<&Role>,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> Decision {
        if domain.as_str() != self.container.domain().to_string() {
            return Decision::denied(format!("foreign domain {domain}"));
        }
        match self.container.check_call(
            user.as_str(),
            role.map(|r| r.as_str()),
            object_type.as_str(),
            permission.as_str(),
        ) {
            Ok(()) => Decision::Granted,
            Err(e) => Decision::Denied(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::security::MiddlewareSecurityExt;

    fn domain() -> EjbDomain {
        EjbDomain::new("host1", "ejbsrv", "Salaries")
    }

    fn domain_str() -> String {
        domain().to_string()
    }

    fn fixture() -> EjbMiddleware {
        let m = EjbMiddleware::new(domain());
        let d = domain_str();
        m.grant(&PermissionGrant::new(
            d.as_str(),
            "Manager",
            "SalariesBean",
            "read",
        ))
        .unwrap();
        m.grant(&PermissionGrant::new(
            d.as_str(),
            "Clerk",
            "SalariesBean",
            "write",
        ))
        .unwrap();
        m.assign(&RoleAssignment::new("bob", d.as_str(), "Manager"))
            .unwrap();
        m.assign(&RoleAssignment::new("alice", d.as_str(), "Clerk"))
            .unwrap();
        m
    }

    #[test]
    fn grant_and_check() {
        let m = fixture();
        let d: Domain = domain_str().as_str().into();
        assert!(m.allows(&"bob".into(), &d, &"SalariesBean".into(), &"read".into()));
        assert!(!m.allows(&"bob".into(), &d, &"SalariesBean".into(), &"write".into()));
        assert!(m.allows(&"alice".into(), &d, &"SalariesBean".into(), &"write".into()));
    }

    #[test]
    fn role_pinned_check() {
        let m = fixture();
        let d: Domain = domain_str().as_str().into();
        let decision = m.check(
            &"bob".into(),
            &d,
            Some(&"Clerk".into()),
            &"SalariesBean".into(),
            &"read".into(),
        );
        assert!(!decision.is_granted());
    }

    #[test]
    fn foreign_domain() {
        let m = fixture();
        assert!(m
            .grant(&PermissionGrant::new("other/x/y", "R", "B", "m"))
            .is_err());
        let decision = m.check(
            &"bob".into(),
            &"other/x/y".into(),
            None,
            &"SalariesBean".into(),
            &"read".into(),
        );
        assert!(!decision.is_granted());
    }

    #[test]
    fn export_import_roundtrip() {
        let m = fixture();
        let exported = m.export_policy();
        assert_eq!(exported.grant_count(), 2);
        assert_eq!(exported.assignment_count(), 2);
        let m2 = EjbMiddleware::new(domain());
        let report = m2.import_policy(&exported);
        assert!(report.skipped.is_empty());
        assert_eq!(m2.export_policy(), exported);
    }

    #[test]
    fn unchecked_methods_not_exported() {
        let m = fixture();
        m.container().set_unchecked("SalariesBean", "ping");
        let exported = m.export_policy();
        assert!(!exported
            .grants()
            .any(|g| g.permission.as_str() == "ping"));
    }

    #[test]
    fn revoke_and_unassign() {
        let m = fixture();
        let d = domain_str();
        m.revoke(&PermissionGrant::new(
            d.as_str(),
            "Clerk",
            "SalariesBean",
            "write",
        ))
        .unwrap();
        assert!(!m.allows(
            &"alice".into(),
            &d.as_str().into(),
            &"SalariesBean".into(),
            &"write".into()
        ));
        m.unassign(&RoleAssignment::new("bob", d.as_str(), "Manager"))
            .unwrap();
        assert!(m
            .unassign(&RoleAssignment::new("bob", d.as_str(), "Manager"))
            .is_err());
    }
}
