//! The EJB container simulator (paper §2, "Enterprise Javabeans").
//!
//! Beans live in a container on a server on a host; the triple
//! (host, server, JNDI container name) is the policy `Domain`. Security
//! follows the EJB 2.1 deployment-descriptor model: each bean declares
//! `security-role` elements and `method-permission` entries mapping
//! methods to the roles allowed to call them (plus the `unchecked`
//! marker). Principals are server-wide and are mapped to roles by the
//! deployer.
//!
//! In the common model: `ObjectType` = bean name, `Permission` = method
//! name.

use hetsec_middleware::naming::EjbDomain;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Who may call a method.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodPermission {
    /// Only the listed roles.
    Roles(BTreeSet<String>),
    /// Any authenticated principal (`<unchecked/>`).
    Unchecked,
    /// No one (`<exclude-list>`).
    Excluded,
}

impl Default for MethodPermission {
    fn default() -> Self {
        MethodPermission::Roles(BTreeSet::new())
    }
}

/// A bean's deployment descriptor (security view).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeanDescriptor {
    /// Business methods the bean exposes.
    pub methods: BTreeSet<String>,
    /// `security-role` declarations.
    pub declared_roles: BTreeSet<String>,
    /// `method-permission` entries.
    pub method_permissions: BTreeMap<String, MethodPermission>,
}

/// Result of a simulated bean invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// The call went through; carries a synthetic result string.
    Ok(String),
    /// `javax.ejb.EJBAccessException` equivalent.
    AccessDenied(String),
    /// Unknown bean or method.
    NotFound(String),
}

impl InvokeOutcome {
    /// True for [`InvokeOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, InvokeOutcome::Ok(_))
    }
}

#[derive(Debug, Default)]
struct ContainerState {
    beans: BTreeMap<String, BeanDescriptor>,
    /// Server-wide principals.
    principals: BTreeSet<String>,
    /// role -> members (the deployer's principal-role mapping).
    role_members: BTreeMap<String, BTreeSet<String>>,
}

/// An EJB server hosting one bean container.
pub struct EjbContainer {
    domain: EjbDomain,
    inner: RwLock<ContainerState>,
}

impl EjbContainer {
    /// An empty container at the given JNDI location.
    pub fn new(domain: EjbDomain) -> Self {
        EjbContainer {
            domain,
            inner: RwLock::new(ContainerState::default()),
        }
    }

    /// The container's domain triple.
    pub fn domain(&self) -> &EjbDomain {
        &self.domain
    }

    /// Deploys a bean with its business methods.
    pub fn deploy_bean(&self, name: &str, methods: &[&str]) {
        let mut s = self.inner.write();
        let bean = s.beans.entry(name.to_string()).or_default();
        for m in methods {
            bean.methods.insert((*m).to_string());
        }
    }

    /// Declares a security role on a bean.
    pub fn declare_role(&self, bean: &str, role: &str) {
        self.inner
            .write()
            .beans
            .entry(bean.to_string())
            .or_default()
            .declared_roles
            .insert(role.to_string());
    }

    /// Adds a `method-permission` entry granting `role` the method.
    /// Deploys the method if it was not declared (mirrors descriptor
    /// processing, which does not verify the business interface).
    pub fn permit_method(&self, bean: &str, method: &str, role: &str) -> bool {
        let mut s = self.inner.write();
        let b = s.beans.entry(bean.to_string()).or_default();
        b.methods.insert(method.to_string());
        b.declared_roles.insert(role.to_string());
        match b
            .method_permissions
            .entry(method.to_string())
            .or_default()
        {
            MethodPermission::Roles(roles) => roles.insert(role.to_string()),
            // Unchecked/Excluded entries are replaced by role lists.
            other => {
                *other = MethodPermission::Roles([role.to_string()].into_iter().collect());
                true
            }
        }
    }

    /// Removes a role from a `method-permission` entry.
    pub fn forbid_method(&self, bean: &str, method: &str, role: &str) -> bool {
        let mut s = self.inner.write();
        s.beans
            .get_mut(bean)
            .and_then(|b| b.method_permissions.get_mut(method))
            .is_some_and(|mp| match mp {
                MethodPermission::Roles(roles) => roles.remove(role),
                _ => false,
            })
    }

    /// Marks a method `<unchecked/>`.
    pub fn set_unchecked(&self, bean: &str, method: &str) {
        let mut s = self.inner.write();
        let b = s.beans.entry(bean.to_string()).or_default();
        b.methods.insert(method.to_string());
        b.method_permissions
            .insert(method.to_string(), MethodPermission::Unchecked);
    }

    /// Puts a method on the exclude list.
    pub fn set_excluded(&self, bean: &str, method: &str) {
        let mut s = self.inner.write();
        let b = s.beans.entry(bean.to_string()).or_default();
        b.methods.insert(method.to_string());
        b.method_permissions
            .insert(method.to_string(), MethodPermission::Excluded);
    }

    /// Registers a principal on the server.
    pub fn add_principal(&self, name: &str) {
        self.inner.write().principals.insert(name.to_string());
    }

    /// Maps a principal into a role (registering the principal).
    pub fn map_principal(&self, role: &str, principal: &str) -> bool {
        let mut s = self.inner.write();
        s.principals.insert(principal.to_string());
        s.role_members
            .entry(role.to_string())
            .or_default()
            .insert(principal.to_string())
    }

    /// Removes a principal from a role.
    pub fn unmap_principal(&self, role: &str, principal: &str) -> bool {
        self.inner
            .write()
            .role_members
            .get_mut(role)
            .is_some_and(|m| m.remove(principal))
    }

    /// Roles a principal is mapped into.
    pub fn roles_of(&self, principal: &str) -> Vec<String> {
        self.inner
            .read()
            .role_members
            .iter()
            .filter(|(_, m)| m.contains(principal))
            .map(|(r, _)| r.clone())
            .collect()
    }

    /// `isCallerInRole` equivalent.
    pub fn is_caller_in_role(&self, principal: &str, role: &str) -> bool {
        self.inner
            .read()
            .role_members
            .get(role)
            .is_some_and(|m| m.contains(principal))
    }

    /// The container's access decision for a call, optionally restricted
    /// to one caller role.
    pub fn check_call(
        &self,
        principal: &str,
        caller_role: Option<&str>,
        bean: &str,
        method: &str,
    ) -> Result<(), String> {
        let s = self.inner.read();
        let Some(b) = s.beans.get(bean) else {
            return Err(format!("no such bean {bean}"));
        };
        if !b.methods.contains(method) {
            return Err(format!("no such method {bean}.{method}"));
        }
        if !s.principals.contains(principal) {
            return Err(format!("unknown principal {principal}"));
        }
        match b.method_permissions.get(method) {
            None => Err(format!("{bean}.{method} has no method-permission entry")),
            Some(MethodPermission::Excluded) => Err(format!("{bean}.{method} is excluded")),
            Some(MethodPermission::Unchecked) => Ok(()),
            Some(MethodPermission::Roles(roles)) => {
                let in_permitted_role = s.role_members.iter().any(|(role, members)| {
                    roles.contains(role)
                        && members.contains(principal)
                        && caller_role.is_none_or(|want| want == role.as_str())
                });
                if in_permitted_role {
                    Ok(())
                } else {
                    Err(format!("{principal} not in any role permitted {bean}.{method}"))
                }
            }
        }
    }

    /// Simulated business-method invocation.
    pub fn invoke(&self, principal: &str, bean: &str, method: &str) -> InvokeOutcome {
        match self.check_call(principal, None, bean, method) {
            Ok(()) => InvokeOutcome::Ok(format!("{bean}.{method}() -> ok [caller {principal}]")),
            Err(e) if e.starts_with("no such") => InvokeOutcome::NotFound(e),
            Err(e) => InvokeOutcome::AccessDenied(e),
        }
    }

    /// Snapshot of bean descriptors.
    pub fn beans(&self) -> BTreeMap<String, BeanDescriptor> {
        self.inner.read().beans.clone()
    }

    /// Snapshot of the principal-role mapping.
    pub fn role_members(&self) -> BTreeMap<String, BTreeSet<String>> {
        self.inner.read().role_members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> EjbContainer {
        let c = EjbContainer::new(EjbDomain::new("host1", "ejbsrv", "Salaries"));
        c.deploy_bean("SalariesBean", &["read", "write", "audit"]);
        c.permit_method("SalariesBean", "read", "Manager");
        c.permit_method("SalariesBean", "write", "Manager");
        c.permit_method("SalariesBean", "write", "Clerk");
        c.map_principal("Manager", "bob");
        c.map_principal("Clerk", "alice");
        c
    }

    #[test]
    fn descriptor_driven_access() {
        let c = fixture();
        assert!(c.invoke("bob", "SalariesBean", "read").is_ok());
        assert!(c.invoke("bob", "SalariesBean", "write").is_ok());
        assert!(c.invoke("alice", "SalariesBean", "write").is_ok());
        assert!(!c.invoke("alice", "SalariesBean", "read").is_ok());
    }

    #[test]
    fn method_without_permission_entry_denies() {
        let c = fixture();
        match c.invoke("bob", "SalariesBean", "audit") {
            InvokeOutcome::AccessDenied(msg) => assert!(msg.contains("no method-permission")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_bean_method_principal() {
        let c = fixture();
        assert!(matches!(
            c.invoke("bob", "GhostBean", "read"),
            InvokeOutcome::NotFound(_)
        ));
        assert!(matches!(
            c.invoke("bob", "SalariesBean", "ghost"),
            InvokeOutcome::NotFound(_)
        ));
        assert!(matches!(
            c.invoke("mallory", "SalariesBean", "read"),
            InvokeOutcome::AccessDenied(_)
        ));
    }

    #[test]
    fn unchecked_and_excluded() {
        let c = fixture();
        c.set_unchecked("SalariesBean", "ping");
        c.add_principal("guest");
        assert!(c.invoke("guest", "SalariesBean", "ping").is_ok());
        c.set_excluded("SalariesBean", "dangerous");
        assert!(matches!(
            c.invoke("bob", "SalariesBean", "dangerous"),
            InvokeOutcome::AccessDenied(_)
        ));
    }

    #[test]
    fn caller_role_restriction() {
        let c = fixture();
        c.map_principal("Clerk", "bob");
        assert!(c.check_call("bob", Some("Manager"), "SalariesBean", "read").is_ok());
        assert!(c.check_call("bob", Some("Clerk"), "SalariesBean", "read").is_err());
        assert!(c.check_call("bob", Some("Clerk"), "SalariesBean", "write").is_ok());
    }

    #[test]
    fn is_caller_in_role() {
        let c = fixture();
        assert!(c.is_caller_in_role("bob", "Manager"));
        assert!(!c.is_caller_in_role("bob", "Clerk"));
        assert!(!c.is_caller_in_role("mallory", "Manager"));
        assert_eq!(c.roles_of("alice"), vec!["Clerk".to_string()]);
    }

    #[test]
    fn revocation() {
        let c = fixture();
        assert!(c.forbid_method("SalariesBean", "write", "Clerk"));
        assert!(!c.forbid_method("SalariesBean", "write", "Clerk"));
        assert!(!c.invoke("alice", "SalariesBean", "write").is_ok());
        assert!(c.unmap_principal("Manager", "bob"));
        assert!(!c.invoke("bob", "SalariesBean", "read").is_ok());
    }

    #[test]
    fn permit_replaces_unchecked() {
        let c = fixture();
        c.set_unchecked("SalariesBean", "audit");
        c.add_principal("guest");
        assert!(c.invoke("guest", "SalariesBean", "audit").is_ok());
        c.permit_method("SalariesBean", "audit", "Manager");
        assert!(!c.invoke("guest", "SalariesBean", "audit").is_ok());
        assert!(c.invoke("bob", "SalariesBean", "audit").is_ok());
    }

    #[test]
    fn snapshots() {
        let c = fixture();
        let beans = c.beans();
        assert!(beans["SalariesBean"].methods.contains("read"));
        assert!(beans["SalariesBean"].declared_roles.contains("Manager"));
        assert_eq!(c.role_members()["Clerk"].len(), 1);
        assert_eq!(c.domain().host, "host1");
    }
}
