//! CORBA middleware security simulator (paper §2).
//!
//! [`orb`] models an ORB server — an interface repository of IDL
//! interfaces, object references, and CORBASec-style role→operation
//! mediation on a simulated GIOP request path — and [`adapter`] exposes
//! it through the common [`hetsec_middleware::MiddlewareSecurity`]
//! surface.

pub mod adapter;
pub mod idl;
pub mod orb;

pub use adapter::CorbaMiddleware;
pub use idl::{load_idl, parse_idl, IdlError, IdlInterfaceDecl, SALARIES_IDL};
pub use orb::{GiopReply, IdlInterface, ObjectRef, OrbServer};
