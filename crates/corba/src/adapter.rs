//! [`MiddlewareSecurity`] adapter for the ORB server.

use crate::orb::OrbServer;
use hetsec_middleware::naming::{CorbaDomain, MiddlewareKind};
use hetsec_middleware::security::{Decision, MiddlewareError, MiddlewareSecurity};
use hetsec_rbac::{
    Domain, ObjectType, Permission, PermissionGrant, RbacPolicy, Role, RoleAssignment, User,
};

/// A CORBA ORB viewed through the common middleware-security surface.
pub struct CorbaMiddleware {
    orb: OrbServer,
}

impl CorbaMiddleware {
    /// Wraps a fresh ORB.
    pub fn new(domain: CorbaDomain) -> Self {
        CorbaMiddleware {
            orb: OrbServer::new(domain),
        }
    }

    /// The underlying ORB (for native administration).
    pub fn orb(&self) -> &OrbServer {
        &self.orb
    }

    fn check_domain(&self, domain: &Domain) -> Result<(), MiddlewareError> {
        if domain.as_str() != self.orb.domain().to_string() {
            return Err(MiddlewareError::ForeignDomain {
                domain: domain.clone(),
                kind: MiddlewareKind::Corba,
                instance: self.instance_name(),
            });
        }
        Ok(())
    }
}

impl MiddlewareSecurity for CorbaMiddleware {
    fn kind(&self) -> MiddlewareKind {
        MiddlewareKind::Corba
    }

    fn instance_name(&self) -> String {
        format!("CORBA@{}", self.orb.domain())
    }

    fn owned_domains(&self) -> Vec<Domain> {
        vec![self.orb.domain().to_domain()]
    }

    fn export_policy(&self) -> RbacPolicy {
        let mut policy = RbacPolicy::new();
        let domain = self.orb.domain().to_string();
        for (role, by_iface) in self.orb.role_rights() {
            for (iface, ops) in by_iface {
                for op in ops {
                    policy.grant(PermissionGrant::new(
                        domain.as_str(),
                        role.as_str(),
                        iface.as_str(),
                        op.as_str(),
                    ));
                }
            }
        }
        for (role, members) in self.orb.role_members() {
            for user in members {
                policy.assign(RoleAssignment::new(
                    user.as_str(),
                    domain.as_str(),
                    role.as_str(),
                ));
            }
        }
        policy
    }

    fn grant(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError> {
        self.check_domain(&grant.domain)?;
        self.orb.grant_operation(
            grant.role.as_str(),
            grant.object_type.as_str(),
            grant.permission.as_str(),
        );
        Ok(())
    }

    fn revoke(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError> {
        self.check_domain(&grant.domain)?;
        if self.orb.revoke_operation(
            grant.role.as_str(),
            grant.object_type.as_str(),
            grant.permission.as_str(),
        ) {
            Ok(())
        } else {
            Err(MiddlewareError::NotFound(format!("{grant}")))
        }
    }

    fn assign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError> {
        self.check_domain(&assignment.domain)?;
        self.orb
            .add_role_member(assignment.role.as_str(), assignment.user.as_str());
        Ok(())
    }

    fn unassign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError> {
        self.check_domain(&assignment.domain)?;
        if self
            .orb
            .remove_role_member(assignment.role.as_str(), assignment.user.as_str())
        {
            Ok(())
        } else {
            Err(MiddlewareError::NotFound(format!("{assignment}")))
        }
    }

    fn check(
        &self,
        user: &User,
        domain: &Domain,
        role: Option<&Role>,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> Decision {
        if domain.as_str() != self.orb.domain().to_string() {
            return Decision::denied(format!("foreign domain {domain}"));
        }
        match self.orb.check_invoke(
            user.as_str(),
            role.map(|r| r.as_str()),
            object_type.as_str(),
            permission.as_str(),
        ) {
            Ok(()) => Decision::Granted,
            Err(e) => Decision::Denied(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::security::MiddlewareSecurityExt;

    fn domain() -> CorbaDomain {
        CorbaDomain::new("zeus", "SalariesOrb")
    }

    fn fixture() -> CorbaMiddleware {
        let m = CorbaMiddleware::new(domain());
        let d = domain().to_string();
        m.grant(&PermissionGrant::new(d.as_str(), "Manager", "Salaries", "read"))
            .unwrap();
        m.assign(&RoleAssignment::new("claire", d.as_str(), "Manager"))
            .unwrap();
        m
    }

    #[test]
    fn grant_and_check() {
        let m = fixture();
        let d: Domain = domain().to_string().as_str().into();
        assert!(m.allows(&"claire".into(), &d, &"Salaries".into(), &"read".into()));
        assert!(!m.allows(&"claire".into(), &d, &"Salaries".into(), &"write".into()));
    }

    #[test]
    fn foreign_domain() {
        let m = fixture();
        assert!(m
            .grant(&PermissionGrant::new("other:orb", "R", "I", "op"))
            .is_err());
    }

    #[test]
    fn export_import_roundtrip() {
        let m = fixture();
        let exported = m.export_policy();
        let m2 = CorbaMiddleware::new(domain());
        let report = m2.import_policy(&exported);
        assert!(report.skipped.is_empty());
        assert_eq!(m2.export_policy(), exported);
    }

    #[test]
    fn revoke_and_unassign() {
        let m = fixture();
        let d = domain().to_string();
        m.revoke(&PermissionGrant::new(d.as_str(), "Manager", "Salaries", "read"))
            .unwrap();
        assert!(m
            .revoke(&PermissionGrant::new(d.as_str(), "Manager", "Salaries", "read"))
            .is_err());
        m.unassign(&RoleAssignment::new("claire", d.as_str(), "Manager"))
            .unwrap();
        assert!(m
            .unassign(&RoleAssignment::new("claire", d.as_str(), "Manager"))
            .is_err());
    }

    #[test]
    fn role_pinned_check() {
        let m = fixture();
        let d: Domain = domain().to_string().as_str().into();
        let ok = m.check(
            &"claire".into(),
            &d,
            Some(&"Manager".into()),
            &"Salaries".into(),
            &"read".into(),
        );
        assert!(ok.is_granted());
        let denied = m.check(
            &"claire".into(),
            &d,
            Some(&"Clerk".into()),
            &"Salaries".into(),
            &"read".into(),
        );
        assert!(!denied.is_granted());
    }
}
