//! The CORBA ORB simulator (paper §2, "CORBA").
//!
//! An ORB server on a machine — the pair is the policy `Domain` — hosts
//! an interface repository of IDL interfaces and object instances bound
//! to them. Security follows the paper's reading of CORBASec: roles are
//! unique to each domain, users are members of roles, and permissions
//! are the operations (method calls) on objects of a given interface
//! (the `ObjectType`).

use hetsec_middleware::naming::CorbaDomain;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An IDL interface: a named set of operations.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdlInterface {
    /// Operation names.
    pub operations: BTreeSet<String>,
}

/// An interoperable object reference (simulated IOR).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectRef {
    /// The hosting domain (`machine:orb-server`).
    pub domain: String,
    /// The interface the object implements.
    pub interface: String,
    /// Instance id.
    pub instance: String,
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IOR:{}/{}/{}", self.domain, self.interface, self.instance)
    }
}

/// Outcome of a simulated GIOP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GiopReply {
    /// Normal reply with a synthetic payload.
    Reply(String),
    /// `CORBA::NO_PERMISSION`.
    NoPermission(String),
    /// `CORBA::OBJECT_NOT_EXIST` / `BAD_OPERATION`.
    SystemException(String),
}

impl GiopReply {
    /// True for a normal reply.
    pub fn is_reply(&self) -> bool {
        matches!(self, GiopReply::Reply(_))
    }
}

#[derive(Debug, Default)]
struct OrbState {
    interfaces: BTreeMap<String, IdlInterface>,
    /// instance id -> interface name.
    objects: BTreeMap<String, String>,
    /// role -> interface -> permitted operations.
    role_rights: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    /// role -> members.
    role_members: BTreeMap<String, BTreeSet<String>>,
}

/// An ORB server with CORBASec-style mediation.
pub struct OrbServer {
    domain: CorbaDomain,
    inner: RwLock<OrbState>,
}

impl OrbServer {
    /// An empty ORB.
    pub fn new(domain: CorbaDomain) -> Self {
        OrbServer {
            domain,
            inner: RwLock::new(OrbState::default()),
        }
    }

    /// The (machine, ORB server) domain.
    pub fn domain(&self) -> &CorbaDomain {
        &self.domain
    }

    /// Registers an IDL interface with operations.
    pub fn register_interface(&self, name: &str, operations: &[&str]) {
        let mut s = self.inner.write();
        let iface = s.interfaces.entry(name.to_string()).or_default();
        for op in operations {
            iface.operations.insert((*op).to_string());
        }
    }

    /// Binds an object instance to an interface, returning its IOR.
    pub fn bind_object(&self, interface: &str, instance: &str) -> Option<ObjectRef> {
        let mut s = self.inner.write();
        if !s.interfaces.contains_key(interface) {
            return None;
        }
        s.objects
            .insert(instance.to_string(), interface.to_string());
        Some(ObjectRef {
            domain: self.domain.to_string(),
            interface: interface.to_string(),
            instance: instance.to_string(),
        })
    }

    /// Grants a role the right to invoke `operation` on `interface`.
    /// The operation is added to the interface repository if missing.
    pub fn grant_operation(&self, role: &str, interface: &str, operation: &str) -> bool {
        let mut s = self.inner.write();
        s.interfaces
            .entry(interface.to_string())
            .or_default()
            .operations
            .insert(operation.to_string());
        s.role_rights
            .entry(role.to_string())
            .or_default()
            .entry(interface.to_string())
            .or_default()
            .insert(operation.to_string())
    }

    /// Revokes an operation right.
    pub fn revoke_operation(&self, role: &str, interface: &str, operation: &str) -> bool {
        self.inner
            .write()
            .role_rights
            .get_mut(role)
            .and_then(|by_iface| by_iface.get_mut(interface))
            .is_some_and(|ops| ops.remove(operation))
    }

    /// Adds a user to a role.
    pub fn add_role_member(&self, role: &str, user: &str) -> bool {
        self.inner
            .write()
            .role_members
            .entry(role.to_string())
            .or_default()
            .insert(user.to_string())
    }

    /// Removes a user from a role.
    pub fn remove_role_member(&self, role: &str, user: &str) -> bool {
        self.inner
            .write()
            .role_members
            .get_mut(role)
            .is_some_and(|m| m.remove(user))
    }

    /// The mediation decision, optionally pinned to one role.
    pub fn check_invoke(
        &self,
        user: &str,
        role: Option<&str>,
        interface: &str,
        operation: &str,
    ) -> Result<(), String> {
        let s = self.inner.read();
        let Some(iface) = s.interfaces.get(interface) else {
            return Err(format!("unknown interface {interface}"));
        };
        if !iface.operations.contains(operation) {
            return Err(format!("unknown operation {interface}::{operation}"));
        }
        let permitted = s.role_members.iter().any(|(r, members)| {
            members.contains(user)
                && role.is_none_or(|want| want == r.as_str())
                && s.role_rights
                    .get(r)
                    .and_then(|by_iface| by_iface.get(interface))
                    .is_some_and(|ops| ops.contains(operation))
        });
        if permitted {
            Ok(())
        } else {
            Err(format!("{user} lacks {interface}::{operation}"))
        }
    }

    /// A simulated GIOP request against an IOR.
    pub fn request(&self, user: &str, ior: &ObjectRef, operation: &str) -> GiopReply {
        if ior.domain != self.domain.to_string() {
            return GiopReply::SystemException(format!("IOR {ior} not hosted here"));
        }
        {
            let s = self.inner.read();
            match s.objects.get(&ior.instance) {
                None => {
                    return GiopReply::SystemException(format!("OBJECT_NOT_EXIST: {}", ior.instance))
                }
                Some(iface) if iface != &ior.interface => {
                    return GiopReply::SystemException(format!(
                        "BAD_PARAM: {} is not a {}",
                        ior.instance, ior.interface
                    ))
                }
                Some(_) => {}
            }
        }
        match self.check_invoke(user, None, &ior.interface, operation) {
            Ok(()) => GiopReply::Reply(format!(
                "{}::{}() on {} ok for {}",
                ior.interface, operation, ior.instance, user
            )),
            Err(e) if e.starts_with("unknown operation") => GiopReply::SystemException(e),
            Err(e) => GiopReply::NoPermission(e),
        }
    }

    /// Snapshot of role rights.
    pub fn role_rights(&self) -> BTreeMap<String, BTreeMap<String, BTreeSet<String>>> {
        self.inner.read().role_rights.clone()
    }

    /// Snapshot of role membership.
    pub fn role_members(&self) -> BTreeMap<String, BTreeSet<String>> {
        self.inner.read().role_members.clone()
    }

    /// Snapshot of the interface repository.
    pub fn interfaces(&self) -> BTreeMap<String, IdlInterface> {
        self.inner.read().interfaces.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> OrbServer {
        let orb = OrbServer::new(CorbaDomain::new("zeus", "SalariesOrb"));
        orb.register_interface("Salaries", &["read", "write"]);
        orb.grant_operation("Manager", "Salaries", "read");
        orb.grant_operation("Manager", "Salaries", "write");
        orb.grant_operation("Clerk", "Salaries", "write");
        orb.add_role_member("Manager", "bob");
        orb.add_role_member("Clerk", "alice");
        orb
    }

    #[test]
    fn mediation() {
        let orb = fixture();
        assert!(orb.check_invoke("bob", None, "Salaries", "read").is_ok());
        assert!(orb.check_invoke("alice", None, "Salaries", "write").is_ok());
        assert!(orb.check_invoke("alice", None, "Salaries", "read").is_err());
        assert!(orb.check_invoke("mallory", None, "Salaries", "read").is_err());
        assert!(orb.check_invoke("bob", None, "Ghost", "read").is_err());
        assert!(orb.check_invoke("bob", None, "Salaries", "drop").is_err());
    }

    #[test]
    fn role_pinning() {
        let orb = fixture();
        orb.add_role_member("Clerk", "bob");
        assert!(orb.check_invoke("bob", Some("Manager"), "Salaries", "read").is_ok());
        assert!(orb.check_invoke("bob", Some("Clerk"), "Salaries", "read").is_err());
        assert!(orb.check_invoke("bob", Some("Clerk"), "Salaries", "write").is_ok());
    }

    #[test]
    fn giop_request_path() {
        let orb = fixture();
        let ior = orb.bind_object("Salaries", "payroll-1").unwrap();
        assert!(orb.request("bob", &ior, "read").is_reply());
        assert!(matches!(
            orb.request("alice", &ior, "read"),
            GiopReply::NoPermission(_)
        ));
        assert!(matches!(
            orb.request("bob", &ior, "drop"),
            GiopReply::SystemException(_)
        ));
        let bogus = ObjectRef {
            domain: orb.domain().to_string(),
            interface: "Salaries".to_string(),
            instance: "ghost".to_string(),
        };
        assert!(matches!(
            orb.request("bob", &bogus, "read"),
            GiopReply::SystemException(_)
        ));
        let foreign = ObjectRef {
            domain: "other:orb".to_string(),
            interface: "Salaries".to_string(),
            instance: "payroll-1".to_string(),
        };
        assert!(matches!(
            orb.request("bob", &foreign, "read"),
            GiopReply::SystemException(_)
        ));
    }

    #[test]
    fn bind_requires_registered_interface() {
        let orb = fixture();
        assert!(orb.bind_object("Ghost", "x").is_none());
        let ior = orb.bind_object("Salaries", "x").unwrap();
        assert!(ior.to_string().starts_with("IOR:zeus:SalariesOrb/Salaries/x"));
    }

    #[test]
    fn interface_mismatch_detected() {
        let orb = fixture();
        orb.register_interface("Other", &["noop"]);
        orb.bind_object("Salaries", "obj-1").unwrap();
        let wrong = ObjectRef {
            domain: orb.domain().to_string(),
            interface: "Other".to_string(),
            instance: "obj-1".to_string(),
        };
        assert!(matches!(
            orb.request("bob", &wrong, "noop"),
            GiopReply::SystemException(_)
        ));
    }

    #[test]
    fn revocation() {
        let orb = fixture();
        assert!(orb.revoke_operation("Clerk", "Salaries", "write"));
        assert!(!orb.revoke_operation("Clerk", "Salaries", "write"));
        assert!(orb.check_invoke("alice", None, "Salaries", "write").is_err());
        assert!(orb.remove_role_member("Manager", "bob"));
        assert!(orb.check_invoke("bob", None, "Salaries", "read").is_err());
    }

    #[test]
    fn grant_registers_operation() {
        let orb = fixture();
        orb.grant_operation("Auditor", "Salaries", "audit");
        assert!(orb.interfaces()["Salaries"].operations.contains("audit"));
        orb.add_role_member("Auditor", "carol");
        assert!(orb.check_invoke("carol", None, "Salaries", "audit").is_ok());
    }
}
