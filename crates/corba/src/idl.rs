//! A small OMG IDL parser for interface registration.
//!
//! CORBA deployments of the paper's era declared their object types in
//! IDL; this module parses the subset needed to populate the interface
//! repository: `module` nesting and `interface` declarations with
//! operation signatures. Parameter lists and types are accepted and
//! discarded — mediation (paper §2) keys on interface + operation names.

use crate::orb::OrbServer;
use std::fmt;

/// A parsed interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdlInterfaceDecl {
    /// Scoped name (`Module::Interface` flattened with `::`).
    pub name: String,
    /// Operation names in declaration order.
    pub operations: Vec<String>,
}

/// IDL parse errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdlError(pub String);

impl fmt::Display for IdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IDL error: {}", self.0)
    }
}

impl std::error::Error for IdlError {}

/// Strips `//` line comments and `/* */` block comments.
fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for c2 in chars.by_ref() {
                        if c2 == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    let mut prev = ' ';
                    for c2 in chars.by_ref() {
                        if prev == '*' && c2 == '/' {
                            break;
                        }
                        prev = c2;
                    }
                    out.push(' ');
                }
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Tokenises into identifiers, punctuation and scoped-name separators.
fn tokenize(src: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            match c {
                '{' | '}' | ';' | '(' | ')' | ',' => tokens.push(c.to_string()),
                ':' if chars.peek() == Some(&':') => {
                    chars.next();
                    tokens.push("::".to_string());
                }
                _ => {} // whitespace and ignorable punctuation
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Parses IDL text into interface declarations.
pub fn parse_idl(src: &str) -> Result<Vec<IdlInterfaceDecl>, IdlError> {
    let cleaned = strip_comments(src);
    let tokens = tokenize(&cleaned);
    let mut out = Vec::new();
    let mut scope: Vec<String> = Vec::new();
    // Stack entries: true = module (contributes to scope), false = other
    // brace we must match.
    let mut braces: Vec<bool> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match tokens[i].as_str() {
            "module" => {
                let name = tokens
                    .get(i + 1)
                    .ok_or_else(|| IdlError("module needs a name".into()))?;
                if tokens.get(i + 2).map(String::as_str) != Some("{") {
                    return Err(IdlError(format!("module {name} needs a body")));
                }
                scope.push(name.clone());
                braces.push(true);
                i += 3;
            }
            "interface" => {
                let name = tokens
                    .get(i + 1)
                    .ok_or_else(|| IdlError("interface needs a name".into()))?
                    .clone();
                // Skip inheritance up to '{' (or ';' for forward decls).
                let mut j = i + 2;
                while j < tokens.len() && tokens[j] != "{" && tokens[j] != ";" {
                    j += 1;
                }
                if tokens.get(j).map(String::as_str) == Some(";") {
                    i = j + 1; // forward declaration
                    continue;
                }
                if tokens.get(j).map(String::as_str) != Some("{") {
                    return Err(IdlError(format!("interface {name} needs a body")));
                }
                // Parse operations until the matching '}'.
                let mut ops = Vec::new();
                let mut k = j + 1;
                while k < tokens.len() && tokens[k] != "}" {
                    // An operation looks like: <type tokens> <name> ( ... ) ;
                    // Find the next '(' and take the token before it.
                    let mut p = k;
                    while p < tokens.len() && tokens[p] != "(" && tokens[p] != "}" && tokens[p] != ";" {
                        p += 1;
                    }
                    match tokens.get(p).map(String::as_str) {
                        Some("(") => {
                            if p == k {
                                return Err(IdlError("operation missing name".into()));
                            }
                            ops.push(tokens[p - 1].clone());
                            // Skip to the ')' then the ';'.
                            while p < tokens.len() && tokens[p] != ")" {
                                p += 1;
                            }
                            while p < tokens.len() && tokens[p] != ";" {
                                p += 1;
                            }
                            k = p + 1;
                        }
                        Some(";") => {
                            // Attribute-ish member; ignore.
                            k = p + 1;
                        }
                        _ => break,
                    }
                }
                if tokens.get(k).map(String::as_str) != Some("}") {
                    return Err(IdlError(format!("unclosed interface {name}")));
                }
                let scoped = if scope.is_empty() {
                    name
                } else {
                    format!("{}::{}", scope.join("::"), name)
                };
                out.push(IdlInterfaceDecl {
                    name: scoped,
                    operations: ops,
                });
                i = k + 1;
                // Optional trailing ';'.
                if tokens.get(i).map(String::as_str) == Some(";") {
                    i += 1;
                }
            }
            "{" => {
                braces.push(false);
                i += 1;
            }
            "}" => {
                match braces.pop() {
                    Some(true) => {
                        scope.pop();
                    }
                    Some(false) => {}
                    None => return Err(IdlError("unbalanced '}'".into())),
                }
                i += 1;
                if tokens.get(i).map(String::as_str) == Some(";") {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    if !braces.is_empty() {
        return Err(IdlError("unbalanced '{'".into()));
    }
    Ok(out)
}

/// Parses IDL and registers every interface in the ORB. Returns the
/// number of interfaces registered.
pub fn load_idl(orb: &OrbServer, src: &str) -> Result<usize, IdlError> {
    let decls = parse_idl(src)?;
    for d in &decls {
        let ops: Vec<&str> = d.operations.iter().map(String::as_str).collect();
        orb.register_interface(&d.name, &ops);
    }
    Ok(decls.len())
}

/// The salaries IDL, as a realistic fixture.
pub const SALARIES_IDL: &str = r#"
// Salaries service (paper Fig. 1 shape)
module Payroll {
    interface Salaries {
        long read(in string employee);
        void write(in string employee, in long amount);
    };
    interface Audit {
        void log(in string entry);
    };
};
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::naming::CorbaDomain;

    #[test]
    fn parses_the_salaries_idl() {
        let decls = parse_idl(SALARIES_IDL).unwrap();
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[0].name, "Payroll::Salaries");
        assert_eq!(decls[0].operations, vec!["read", "write"]);
        assert_eq!(decls[1].name, "Payroll::Audit");
        assert_eq!(decls[1].operations, vec!["log"]);
    }

    #[test]
    fn comments_stripped() {
        let src = "interface I { /* block */ void a(); // line\n void b(); };";
        let decls = parse_idl(src).unwrap();
        assert_eq!(decls[0].operations, vec!["a", "b"]);
    }

    #[test]
    fn nested_modules_scope_names() {
        let src = "module A { module B { interface C { void op(); }; }; };";
        let decls = parse_idl(src).unwrap();
        assert_eq!(decls[0].name, "A::B::C");
    }

    #[test]
    fn forward_declarations_skipped() {
        let src = "interface Fwd; interface Real { void go(); };";
        let decls = parse_idl(src).unwrap();
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].name, "Real");
    }

    #[test]
    fn inheritance_clause_tolerated() {
        let src = "interface Base { void a(); }; interface Derived : Base { void b(); };";
        let decls = parse_idl(src).unwrap();
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[1].operations, vec!["b"]);
    }

    #[test]
    fn malformed_idl_rejected() {
        assert!(parse_idl("module {").is_err());
        assert!(parse_idl("interface I { void a(;").is_err());
        assert!(parse_idl("module M { interface I { void a(); };").is_err());
        assert!(parse_idl("}").is_err());
    }

    #[test]
    fn loads_into_the_orb() {
        let orb = OrbServer::new(CorbaDomain::new("zeus", "payroll"));
        let n = load_idl(&orb, SALARIES_IDL).unwrap();
        assert_eq!(n, 2);
        let ifaces = orb.interfaces();
        assert!(ifaces.contains_key("Payroll::Salaries"));
        assert!(ifaces["Payroll::Salaries"].operations.contains("read"));
        // Mediation works against IDL-declared operations.
        orb.grant_operation("Manager", "Payroll::Salaries", "read");
        orb.add_role_member("Manager", "claire");
        assert!(orb.check_invoke("claire", None, "Payroll::Salaries", "read").is_ok());
        assert!(orb.check_invoke("claire", None, "Payroll::Salaries", "write").is_err());
    }
}
