//! Textbook RSA over the fixed-width bignum, with deliberately small
//! (insecure) parameters.
//!
//! The paper's trust-management layer only needs signatures that verify
//! against the signing key and fail against any other key or tampered
//! payload. A 256-bit textbook RSA instance preserves exactly that API
//! shape while keeping keygen fast enough for tests; it is **not**
//! cryptographically secure and is documented as a simulation in
//! DESIGN.md.

use crate::bigint::{Montgomery, U512};
use crate::drbg::Drbg;
use crate::sha256::sha256;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Size of each RSA prime in bits. The modulus is twice this.
pub const PRIME_BITS: u32 = 128;
/// Miller-Rabin rounds; error probability <= 4^-ROUNDS per candidate.
const MR_ROUNDS: usize = 24;
/// Public exponent (F4).
pub const PUBLIC_EXPONENT: u64 = 65_537;

/// Returns a random value with exactly `bits` bits (top bit set, odd).
fn random_odd(drbg: &mut Drbg, bits: u32) -> U512 {
    let bytes = bits.div_ceil(8) as usize;
    let mut buf = vec![0u8; bytes];
    drbg.fill_bytes(&mut buf);
    let mut v = U512::from_be_bytes(&buf);
    // Clamp to exactly `bits` bits.
    let excess = v.bits().saturating_sub(bits);
    v = v.shr_small(excess);
    // Force the top and bottom bits.
    let top = U512::ONE.shl_small(bits - 1);
    let mut limbs = v.limbs();
    limbs[0] |= 1;
    v = U512::from_limbs(limbs);
    if !v.bit(bits - 1) {
        v = v.add(&top);
    }
    v
}

/// Small primes used for cheap trial division before Miller-Rabin.
const SMALL_PRIMES: [u64; 24] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Miller-Rabin probabilistic primality test.
pub fn is_probable_prime(n: &U512, drbg: &mut Drbg) -> bool {
    if n.cmp_val(&U512::TWO) == std::cmp::Ordering::Less {
        return false;
    }
    if *n == U512::TWO {
        return true;
    }
    if !n.is_odd() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pv = U512::from_u64(p);
        if *n == pv {
            return true;
        }
        if n.rem(&pv).is_zero() {
            return false;
        }
    }
    // n - 1 = d * 2^r with d odd
    let n_minus_1 = n.sub(&U512::ONE);
    let mut d = n_minus_1;
    let mut r = 0u32;
    while !d.is_odd() {
        d = d.shr_small(1);
        r += 1;
    }
    // One Montgomery context serves all witness rounds: the witness
    // exponentiation and the squaring chain both stay in the Montgomery
    // domain, comparing against the precomputed forms of 1 and n-1.
    let ctx = Montgomery::new(n).expect("odd modulus > 2");
    let one_m = ctx.one();
    let minus_one_m = ctx.to_mont(&n_minus_1);
    'witness: for _ in 0..MR_ROUNDS {
        // Random witness in [2, n-2].
        let bits = n.bits();
        let mut a;
        loop {
            a = random_odd(drbg, bits.clamp(8, 64));
            a = a.rem(&n_minus_1);
            if a.cmp_val(&U512::TWO) != std::cmp::Ordering::Less {
                break;
            }
        }
        let mut x = ctx.pow(&ctx.to_mont(&a), &d);
        if x == one_m || x == minus_one_m {
            continue 'witness;
        }
        for _ in 0..r.saturating_sub(1) {
            x = ctx.mul(&x, &x);
            if x == minus_one_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a probable prime with exactly `bits` bits.
pub fn generate_prime(drbg: &mut Drbg, bits: u32) -> U512 {
    loop {
        let candidate = random_odd(drbg, bits);
        if is_probable_prime(&candidate, drbg) {
            return candidate;
        }
    }
}

/// An RSA public key `(n, e)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RsaPublic {
    /// Modulus.
    pub n: U512,
    /// Public exponent.
    pub e: U512,
}

/// An RSA secret key `(n, d)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RsaSecret {
    /// Modulus.
    pub n: U512,
    /// Private exponent.
    pub d: U512,
}

/// A signature value (`< n`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RsaSignature(pub U512);

/// Generates an RSA keypair deterministically from the DRBG stream.
pub fn generate_keypair(drbg: &mut Drbg) -> (RsaPublic, RsaSecret) {
    let e = U512::from_u64(PUBLIC_EXPONENT);
    loop {
        let p = generate_prime(drbg, PRIME_BITS);
        let q = generate_prime(drbg, PRIME_BITS);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        let phi = p.sub(&U512::ONE).mul(&q.sub(&U512::ONE));
        if phi.gcd(&e) != U512::ONE {
            continue;
        }
        let d = e.modinv(&phi).expect("e invertible mod phi");
        return (RsaPublic { n, e }, RsaSecret { n, d });
    }
}

/// Hashes `payload` into an integer representative `< n`.
fn digest_to_int(payload: &[u8], n: &U512) -> U512 {
    let digest = sha256(payload);
    U512::from_be_bytes(&digest).rem(n)
}

/// Cap on cached per-modulus Montgomery contexts. A process that signs
/// or verifies against more distinct keys than this simply restarts the
/// memo; correctness never depends on a hit.
const CTX_CACHE_CAP: usize = 1024;

fn ctx_cache() -> &'static RwLock<HashMap<U512, Montgomery>> {
    static CACHE: OnceLock<RwLock<HashMap<U512, Montgomery>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// One Montgomery context per RSA modulus, shared across the process.
///
/// Building the context (`n0` via Newton iteration plus the `R^2 mod n`
/// reduction) costs a few µs — a measurable slice of a ~35 µs sign —
/// and every sign/verify against the same key repeats it. Keys are
/// long-lived while payloads churn, so the memo hit rate is effectively
/// 1 after the first operation per key. Returns `None` for even moduli,
/// which never arise from [`generate_keypair`].
pub fn cached_montgomery(n: &U512) -> Option<Montgomery> {
    if let Some(ctx) = ctx_cache().read().get(n) {
        return Some(*ctx);
    }
    let ctx = Montgomery::new(n)?;
    let mut cache = ctx_cache().write();
    if cache.len() >= CTX_CACHE_CAP {
        cache.clear();
    }
    cache.insert(*n, ctx);
    Some(ctx)
}

fn modpow_cached(base: &U512, exp: &U512, n: &U512) -> U512 {
    match cached_montgomery(n) {
        Some(ctx) => ctx.modpow(base, exp),
        None => base.modpow_schoolbook(exp, n),
    }
}

/// Signs `payload` with the secret key: `SHA-256(payload)^d mod n`.
/// Reuses the per-key Montgomery context via [`cached_montgomery`].
pub fn sign(secret: &RsaSecret, payload: &[u8]) -> RsaSignature {
    let m = digest_to_int(payload, &secret.n);
    RsaSignature(modpow_cached(&m, &secret.d, &secret.n))
}

/// Verifies a signature: `sig^e mod n == SHA-256(payload) mod n`.
/// Reuses the per-key Montgomery context via [`cached_montgomery`].
pub fn verify(public: &RsaPublic, payload: &[u8], sig: &RsaSignature) -> bool {
    if sig.0.cmp_val(&public.n) != std::cmp::Ordering::Less {
        return false;
    }
    let m = digest_to_int(payload, &public.n);
    modpow_cached(&sig.0, &public.e, &public.n) == m
}

/// [`sign`] without the per-key context memo: rebuilds the Montgomery
/// context on every call. Kept as the differential reference and the
/// bench baseline for the cached path.
pub fn sign_uncached(secret: &RsaSecret, payload: &[u8]) -> RsaSignature {
    let m = digest_to_int(payload, &secret.n);
    RsaSignature(m.modpow(&secret.d, &secret.n))
}

/// [`verify`] without the per-key context memo.
pub fn verify_uncached(public: &RsaPublic, payload: &[u8], sig: &RsaSignature) -> bool {
    if sig.0.cmp_val(&public.n) != std::cmp::Ordering::Less {
        return false;
    }
    let m = digest_to_int(payload, &public.n);
    sig.0.modpow(&public.e, &public.n) == m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(label: &str) -> (RsaPublic, RsaSecret) {
        let mut drbg = Drbg::from_label(label);
        generate_keypair(&mut drbg)
    }

    #[test]
    fn known_primes_pass_miller_rabin() {
        let mut drbg = Drbg::from_label("mr");
        for p in [2u64, 3, 5, 7, 97, 101, 1_000_000_007, 2_147_483_647] {
            assert!(is_probable_prime(&U512::from_u64(p), &mut drbg), "p={p}");
        }
    }

    #[test]
    fn known_composites_fail_miller_rabin() {
        let mut drbg = Drbg::from_label("mr2");
        // Includes Carmichael numbers 561, 1105, 1729.
        for c in [1u64, 4, 9, 100, 561, 1105, 1729, 1_000_000_006] {
            assert!(!is_probable_prime(&U512::from_u64(c), &mut drbg), "c={c}");
        }
    }

    #[test]
    fn generated_prime_has_requested_bits() {
        let mut drbg = Drbg::from_label("gp");
        let p = generate_prime(&mut drbg, 64);
        assert_eq!(p.bits(), 64);
        assert!(p.is_odd());
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (public, secret) = keypair("kp-1");
        let sig = sign(&secret, b"hello middleware");
        assert!(verify(&public, b"hello middleware", &sig));
    }

    #[test]
    fn tampered_payload_rejected() {
        let (public, secret) = keypair("kp-2");
        let sig = sign(&secret, b"original");
        assert!(!verify(&public, b"tampered", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (_, secret) = keypair("kp-3");
        let (other_public, _) = keypair("kp-4");
        let sig = sign(&secret, b"msg");
        assert!(!verify(&other_public, b"msg", &sig));
    }

    #[test]
    fn oversized_signature_rejected() {
        let (public, _) = keypair("kp-5");
        let bogus = RsaSignature(public.n); // == n, not < n
        assert!(!verify(&public, b"msg", &bogus));
    }

    #[test]
    fn keygen_is_deterministic() {
        let (a_pub, _) = keypair("same-seed");
        let (b_pub, _) = keypair("same-seed");
        assert_eq!(a_pub, b_pub);
        let (c_pub, _) = keypair("other-seed");
        assert_ne!(a_pub, c_pub);
    }

    #[test]
    fn cached_context_matches_uncached_sign_and_verify() {
        for label in ["ctx-a", "ctx-b", "ctx-c"] {
            let (public, secret) = keypair(label);
            for payload in [b"alpha".as_slice(), b"beta", b"gamma"] {
                let cached = sign(&secret, payload);
                let uncached = sign_uncached(&secret, payload);
                assert_eq!(cached, uncached, "{label}");
                assert!(verify(&public, payload, &cached));
                assert!(verify_uncached(&public, payload, &cached));
            }
        }
    }

    #[test]
    fn cached_context_rejects_even_modulus() {
        assert!(cached_montgomery(&U512::from_u64(100)).is_none());
    }

    #[test]
    fn modulus_has_expected_size() {
        let (public, _) = keypair("size");
        assert_eq!(public.n.bits(), PRIME_BITS * 2);
    }
}
