//! Fixed-width 512-bit unsigned integer arithmetic.
//!
//! The simulated PKI only ever manipulates values up to 512 bits (a
//! 256-bit RSA modulus and the 512-bit intermediate of a 256x256-bit
//! product), so a single fixed-width type avoids heap allocation on the
//! signing/verification hot path.

use std::cmp::Ordering;
use std::fmt;

/// Number of 64-bit limbs in a [`U512`]. Limb 0 is least significant.
pub const LIMBS: usize = 8;

/// A 512-bit unsigned integer stored as little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct U512 {
    limbs: [u64; LIMBS],
}

impl U512 {
    /// The value zero.
    pub const ZERO: U512 = U512 { limbs: [0; LIMBS] };
    /// The value one.
    pub const ONE: U512 = {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = 1;
        U512 { limbs }
    };
    /// The value two.
    pub const TWO: U512 = {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = 2;
        U512 { limbs }
    };

    /// Builds a value from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = v;
        U512 { limbs }
    }

    /// Builds a value from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        let mut limbs = [0u64; LIMBS];
        limbs[0] = v as u64;
        limbs[1] = (v >> 64) as u64;
        U512 { limbs }
    }

    /// Builds a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        U512 { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; LIMBS] {
        self.limbs
    }

    /// Builds a value from big-endian bytes; at most 64 bytes are read.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut out = U512::ZERO;
        for &b in bytes.iter().take(64) {
            out = out.shl_small(8);
            out.limbs[0] |= b as u64;
        }
        out
    }

    /// Serialises to 64 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, limb) in self.limbs.iter().enumerate() {
            let be = limb.to_be_bytes();
            let off = 64 - (i + 1) * 8;
            out[off..off + 8].copy_from_slice(&be);
        }
        out
    }

    /// Parses a lowercase/uppercase hex string (no `0x` prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || s.len() > 128 {
            return None;
        }
        let mut out = U512::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16)? as u64;
            out = out.shl_small(4);
            out.limbs[0] |= d;
        }
        Some(out)
    }

    /// Renders as minimal lowercase hex (no leading zeros, `"0"` for zero).
    pub fn to_hex(&self) -> String {
        let bytes = self.to_be_bytes();
        let mut s = String::with_capacity(128);
        let mut started = false;
        for b in bytes {
            if !started {
                if b == 0 {
                    continue;
                }
                started = true;
                if b >> 4 != 0 {
                    s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
                }
                s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
            } else {
                s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
                s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
            }
        }
        if s.is_empty() {
            s.push('0');
        }
        s
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// True iff the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..LIMBS).rev() {
            if self.limbs[i] != 0 {
                return (i as u32) * 64 + (64 - self.limbs[i].leading_zeros());
            }
        }
        0
    }

    /// Returns the bit at position `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= LIMBS {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Wrapping addition; also returns the carry out.
    pub fn overflowing_add(&self, rhs: &U512) -> (U512, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = 0u64;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&rhs.limbs) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *o = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U512 { limbs: out }, carry != 0)
    }

    /// Addition; panics on overflow (debug-grade guard for the PKI domain).
    pub fn add(&self, rhs: &U512) -> U512 {
        let (v, c) = self.overflowing_add(rhs);
        debug_assert!(!c, "U512 add overflow");
        v
    }

    /// Wrapping subtraction; also returns whether a borrow occurred.
    pub fn overflowing_sub(&self, rhs: &U512) -> (U512, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = 0u64;
        for ((o, &a), &b) in out.iter_mut().zip(&self.limbs).zip(&rhs.limbs) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *o = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U512 { limbs: out }, borrow != 0)
    }

    /// Subtraction; panics on underflow.
    pub fn sub(&self, rhs: &U512) -> U512 {
        let (v, b) = self.overflowing_sub(rhs);
        debug_assert!(!b, "U512 sub underflow");
        v
    }

    /// Shift left by `n` bits (`n < 512`), discarding bits shifted out.
    pub fn shl_small(&self, n: u32) -> U512 {
        if n == 0 {
            return *self;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; LIMBS];
        for i in (0..LIMBS).rev() {
            if i < limb_shift {
                continue;
            }
            let src = i - limb_shift;
            let mut v = self.limbs[src] << bit_shift;
            if bit_shift != 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U512 { limbs: out }
    }

    /// Shift right by `n` bits (`n < 512`).
    pub fn shr_small(&self, n: u32) -> U512 {
        if n == 0 {
            return *self;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; LIMBS];
        for (i, o) in out.iter_mut().enumerate() {
            let src = i + limb_shift;
            if src >= LIMBS {
                break;
            }
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift != 0 && src + 1 < LIMBS {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            *o = v;
        }
        U512 { limbs: out }
    }

    /// Full 512x512 -> 1024-bit product, returned as (low, high) halves.
    pub fn widening_mul(&self, rhs: &U512) -> (U512, U512) {
        let mut prod = [0u64; LIMBS * 2];
        for i in 0..LIMBS {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..LIMBS {
                let idx = i + j;
                let cur = prod[idx] as u128;
                let p = (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + cur + carry;
                prod[idx] = p as u64;
                carry = p >> 64;
            }
            let mut idx = i + LIMBS;
            while carry != 0 && idx < LIMBS * 2 {
                let p = (prod[idx] as u128) + carry;
                prod[idx] = p as u64;
                carry = p >> 64;
                idx += 1;
            }
        }
        let mut lo = [0u64; LIMBS];
        let mut hi = [0u64; LIMBS];
        lo.copy_from_slice(&prod[..LIMBS]);
        hi.copy_from_slice(&prod[LIMBS..]);
        (U512 { limbs: lo }, U512 { limbs: hi })
    }

    /// Truncated multiplication; panics in debug builds if the product
    /// does not fit into 512 bits.
    pub fn mul(&self, rhs: &U512) -> U512 {
        let (lo, hi) = self.widening_mul(rhs);
        debug_assert!(hi.is_zero(), "U512 mul overflow");
        lo
    }

    /// Computes `(self * rhs) mod m` using the full double-width product.
    pub fn mulmod(&self, rhs: &U512, m: &U512) -> U512 {
        assert!(!m.is_zero(), "mulmod by zero modulus");
        let (lo, hi) = self.widening_mul(rhs);
        rem_1024(&lo, &hi, m)
    }

    /// Computes `(self + rhs) mod m`, assuming both operands are `< m`.
    pub fn addmod(&self, rhs: &U512, m: &U512) -> U512 {
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || sum.cmp_val(m) != Ordering::Less {
            sum.overflowing_sub(m).0
        } else {
            sum
        }
    }

    /// Quotient and remainder by schoolbook bit-serial long division.
    pub fn divmod(&self, divisor: &U512) -> (U512, U512) {
        assert!(!divisor.is_zero(), "division by zero");
        if self.cmp_val(divisor) == Ordering::Less {
            return (U512::ZERO, *self);
        }
        let mut quotient = U512::ZERO;
        let mut remainder = U512::ZERO;
        let bits = self.bits();
        for i in (0..bits).rev() {
            // When the divisor exceeds 2^511 the shift can push the
            // remainder past 512 bits; the wrapping subtraction absorbs
            // that implicit high bit (2^512 + r - d < d, single step).
            let overflow = remainder.bit(511);
            remainder = remainder.shl_small(1);
            if self.bit(i) {
                remainder.limbs[0] |= 1;
            }
            if overflow || remainder.cmp_val(divisor) != Ordering::Less {
                remainder = remainder.overflowing_sub(divisor).0;
                let limb = (i / 64) as usize;
                quotient.limbs[limb] |= 1u64 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    /// Remainder of `self / m`.
    pub fn rem(&self, m: &U512) -> U512 {
        self.divmod(m).1
    }

    /// Modular exponentiation.
    ///
    /// Odd moduli (every RSA modulus and Miller-Rabin candidate) take
    /// the Montgomery fixed-window path; even moduli fall back to the
    /// bit-serial schoolbook loop, which remains the reference
    /// implementation as [`U512::modpow_schoolbook`].
    pub fn modpow(&self, exp: &U512, m: &U512) -> U512 {
        assert!(!m.is_zero(), "modpow by zero modulus");
        match Montgomery::new(m) {
            Some(ctx) => ctx.modpow(self, exp),
            None => self.modpow_schoolbook(exp, m),
        }
    }

    /// Modular exponentiation by bit-serial square-and-multiply, with
    /// every step reduced through the 1024-bit long division. Kept as
    /// the differential-testing reference for the Montgomery path and
    /// as the fallback for even moduli.
    pub fn modpow_schoolbook(&self, exp: &U512, m: &U512) -> U512 {
        assert!(!m.is_zero(), "modpow by zero modulus");
        if *m == U512::ONE {
            return U512::ZERO;
        }
        let mut base = self.rem(m);
        let mut result = U512::ONE;
        let bits = exp.bits();
        for i in 0..bits {
            if exp.bit(i) {
                result = result.mulmod(&base, m);
            }
            if i + 1 < bits {
                base = base.mulmod(&base, m);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &U512) -> U512 {
        let mut a = *self;
        let mut b = *other;
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0u32;
        while !a.is_odd() && !b.is_odd() {
            a = a.shr_small(1);
            b = b.shr_small(1);
            shift += 1;
        }
        while !a.is_odd() {
            a = a.shr_small(1);
        }
        loop {
            while !b.is_odd() {
                b = b.shr_small(1);
            }
            if a.cmp_val(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                return a.shl_small(shift);
            }
        }
    }

    /// Modular inverse of `self` mod `m` (both < 2^511), or `None` when
    /// `gcd(self, m) != 1`. Uses the extended Euclidean algorithm with a
    /// signed accumulator tracked as (magnitude, sign).
    pub fn modinv(&self, m: &U512) -> Option<U512> {
        if m.is_zero() || self.is_zero() {
            return None;
        }
        // Invariants: r0 = t0_sign*t0*self (mod m), r1 likewise.
        let mut r0 = *m;
        let mut r1 = self.rem(m);
        let mut t0 = (U512::ZERO, false); // (magnitude, negative?)
        let mut t1 = (U512::ONE, false);
        while !r1.is_zero() {
            let (q, r) = r0.divmod(&r1);
            // t2 = t0 - q * t1  (signed arithmetic on magnitudes)
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(t0, (qt1, t1.1));
            r0 = r1;
            r1 = r;
            t0 = t1;
            t1 = t2;
        }
        if r0 != U512::ONE {
            return None;
        }
        let inv = if t0.1 { m.sub(&t0.0.rem(m)).rem(m) } else { t0.0.rem(m) };
        Some(inv)
    }

    /// Three-way comparison by value.
    pub fn cmp_val(&self, other: &U512) -> Ordering {
        for i in (0..LIMBS).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Lowest limb as `u64` (truncating).
    pub fn as_u64(&self) -> u64 {
        self.limbs[0]
    }
}

/// Signed subtraction on (magnitude, is_negative) pairs.
fn signed_sub(a: (U512, bool), b: (U512, bool)) -> (U512, bool) {
    match (a.1, b.1) {
        // a - b with same signs: magnitude subtraction.
        (false, false) => match a.0.cmp_val(&b.0) {
            Ordering::Less => (b.0.sub(&a.0), true),
            _ => (a.0.sub(&b.0), false),
        },
        (true, true) => match b.0.cmp_val(&a.0) {
            Ordering::Less => (a.0.sub(&b.0), true),
            _ => (b.0.sub(&a.0), false),
        },
        // (-a) - b = -(a+b)
        (true, false) => (a.0.add(&b.0), true),
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
    }
}

/// Remainder of a 1024-bit value (given as lo/hi 512-bit halves) by a
/// 512-bit modulus, via bit-serial long division over 1024 bits.
fn rem_1024(lo: &U512, hi: &U512, m: &U512) -> U512 {
    if hi.is_zero() {
        return lo.rem(m);
    }
    let mut remainder = U512::ZERO;
    let total_bits = 512 + hi.bits();
    for i in (0..total_bits).rev() {
        // Same implicit-high-bit handling as `divmod`: for moduli above
        // 2^511 the shift may carry out of the 512-bit window.
        let overflow = remainder.bit(511);
        remainder = remainder.shl_small(1);
        let bit = if i >= 512 { hi.bit(i - 512) } else { lo.bit(i) };
        if bit {
            let mut l = remainder.limbs();
            l[0] |= 1;
            remainder = U512::from_limbs(l);
        }
        if overflow || remainder.cmp_val(m) != Ordering::Less {
            remainder = remainder.overflowing_sub(m).0;
        }
    }
    remainder
}

/// Montgomery-form arithmetic context for a fixed odd modulus.
///
/// Montgomery multiplication replaces the bit-serial 1024-bit long
/// division inside [`U512::mulmod`] with an interleaved
/// multiply-and-reduce (CIOS) that costs one 8x8-limb product plus an
/// 8-limb reduction per step — no per-bit division at all. Building the
/// context costs a few hundred limb additions (computing `R mod m` and
/// `R^2 mod m`), amortised over the dozens-to-hundreds of
/// multiplications of a `modpow`, so RSA sign/verify and each
/// Miller-Rabin witness round share a single context.
///
/// `R = 2^512`. Values in the Montgomery domain represent `x` as
/// `x * R mod m`; [`Montgomery::mul`] computes `a * b / R mod m`.
#[derive(Clone, Copy, Debug)]
pub struct Montgomery {
    m: U512,
    /// `-m^-1 mod 2^64`, the per-limb reduction factor.
    n0: u64,
    /// `R mod m`, i.e. the Montgomery form of 1.
    r1: U512,
    /// `R^2 mod m`, the conversion factor into the Montgomery domain.
    r2: U512,
}

impl Montgomery {
    /// Builds a context for an odd modulus `m > 1`; returns `None` for
    /// even or trivial moduli (callers fall back to schoolbook).
    pub fn new(m: &U512) -> Option<Montgomery> {
        if !m.is_odd() || *m == U512::ONE {
            return None;
        }
        // n0 = -m^-1 mod 2^64 by Newton iteration: for odd m0,
        // inv = m0 is correct mod 2^3 and each step doubles the bits.
        let m0 = m.limbs[0];
        let mut inv = m0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();

        // r1 = 2^512 mod m without long division: start from
        // 2^bits(m) mod m = 2^bits(m) - m (one subtraction; valid since
        // 2^(bits-1) <= m < 2^bits), then double up to 2^512.
        let b = m.bits();
        let mut r1 = if b == 512 {
            // 2^512 - m, computed as the wrapping negation of m.
            U512::ZERO.overflowing_sub(m).0
        } else {
            U512::ONE.shl_small(b).sub(m)
        };
        for _ in b..512 {
            r1 = r1.addmod(&r1, m);
        }

        let ctx = Montgomery { m: *m, n0, r1, r2: U512::ZERO };
        // r2 = R^2 mod m via the context itself: mont_sq(2^k * R) =
        // 2^2k * R, so starting from 2R nine squarings reach 2^512 * R.
        let mut r2 = r1.addmod(&r1, m);
        for _ in 0..9 {
            r2 = ctx.mul(&r2, &r2);
        }
        Some(Montgomery { r2, ..ctx })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &U512 {
        &self.m
    }

    /// Montgomery form of 1 (`R mod m`).
    pub fn one(&self) -> U512 {
        self.r1
    }

    /// Converts into the Montgomery domain: `a * R mod m`. Accepts any
    /// `a` (not just `a < m`); the result is fully reduced.
    pub fn to_mont(&self, a: &U512) -> U512 {
        self.mul(a, &self.r2)
    }

    /// Converts out of the Montgomery domain: `a / R mod m`.
    pub fn from_mont(&self, a: &U512) -> U512 {
        self.mul(a, &U512::ONE)
    }

    /// Montgomery product `a * b / R mod m` by CIOS (coarsely
    /// integrated operand scanning): the reduction is interleaved with
    /// the multiplication limb by limb, so the intermediate never
    /// exceeds `LIMBS + 2` limbs. Requires at least one operand `< m`;
    /// the result is `< m`.
    pub fn mul(&self, a: &U512, b: &U512) -> U512 {
        let al = &a.limbs;
        let bl = &b.limbs;
        let ml = &self.m.limbs;
        let mut t = [0u64; LIMBS + 2];
        for &ai in al.iter() {
            // t += ai * b
            let ai = ai as u128;
            let mut carry: u128 = 0;
            for j in 0..LIMBS {
                let s = t[j] as u128 + ai * (bl[j] as u128) + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[LIMBS] as u128 + carry;
            t[LIMBS] = s as u64;
            t[LIMBS + 1] = (s >> 64) as u64;

            // t = (t + mu * m) / 2^64, exact by choice of mu.
            let mu = t[0].wrapping_mul(self.n0) as u128;
            let s = t[0] as u128 + mu * (ml[0] as u128);
            let mut carry = s >> 64;
            for j in 1..LIMBS {
                let s = t[j] as u128 + mu * (ml[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[LIMBS] as u128 + carry;
            t[LIMBS - 1] = s as u64;
            t[LIMBS] = t[LIMBS + 1] + (s >> 64) as u64;
            t[LIMBS + 1] = 0;
        }
        let mut out = [0u64; LIMBS];
        out.copy_from_slice(&t[..LIMBS]);
        let out = U512 { limbs: out };
        // CIOS guarantees t < 2m, so one conditional subtraction fully
        // reduces; t[LIMBS] == 1 marks the value 2^512 + out, and the
        // wrapping subtraction absorbs that implicit high bit.
        if t[LIMBS] != 0 || out.cmp_val(&self.m) != Ordering::Less {
            out.overflowing_sub(&self.m).0
        } else {
            out
        }
    }

    /// Modular exponentiation by fixed 4-bit-window scanning: one table
    /// of 16 powers, then four squarings plus at most one multiply per
    /// window, all in the Montgomery domain.
    pub fn modpow(&self, base: &U512, exp: &U512) -> U512 {
        let bm = if base.cmp_val(&self.m) == Ordering::Less {
            self.to_mont(base)
        } else {
            self.to_mont(&base.rem(&self.m))
        };
        self.from_mont(&self.pow(&bm, exp))
    }

    /// Exponentiation with base and result in the Montgomery domain.
    pub fn pow(&self, base_m: &U512, exp: &U512) -> U512 {
        let bits = exp.bits();
        if bits == 0 {
            return self.r1;
        }
        // table[i] = base^i in Montgomery form.
        let mut table = [self.r1; 16];
        for i in 1..16 {
            table[i] = self.mul(&table[i - 1], base_m);
        }
        // 4 divides 64, so a window never straddles a limb boundary.
        let nwin = bits.div_ceil(4);
        let mut acc = self.r1;
        let mut first = true;
        for w in (0..nwin).rev() {
            if !first {
                for _ in 0..4 {
                    acc = self.mul(&acc, &acc);
                }
            }
            let shift = w * 4;
            let idx = ((exp.limbs[(shift / 64) as usize] >> (shift % 64)) & 0xf) as usize;
            if first {
                acc = table[idx];
                first = false;
            } else if idx != 0 {
                acc = self.mul(&acc, &table[idx]);
            }
        }
        acc
    }
}

impl PartialOrd for U512 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U512 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other)
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(0x{})", self.to_hex())
    }
}

impl fmt::Display for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_basics() {
        assert!(U512::ZERO.is_zero());
        assert!(!U512::ONE.is_zero());
        assert_eq!(U512::ONE.bits(), 1);
        assert_eq!(U512::ZERO.bits(), 0);
        assert!(U512::ONE.is_odd());
        assert!(!U512::TWO.is_odd());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = U512::from_u128(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let b = U512::from_u128(0x0fed_cba9_8765_4321_5555_6666_7777_8888);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn carry_propagates_across_limbs() {
        let a = U512::from_u64(u64::MAX);
        let s = a.add(&U512::ONE);
        assert_eq!(s.limbs()[0], 0);
        assert_eq!(s.limbs()[1], 1);
    }

    #[test]
    fn overflow_detected() {
        let limbs = [u64::MAX; LIMBS];
        let max = U512::from_limbs(limbs);
        let (_, c) = max.overflowing_add(&U512::ONE);
        assert!(c);
        let (_, b) = U512::ZERO.overflowing_sub(&U512::ONE);
        assert!(b);
    }

    #[test]
    fn mul_small_values() {
        let a = U512::from_u64(1_000_003);
        let b = U512::from_u64(999_983);
        assert_eq!(a.mul(&b).as_u64(), 1_000_003u64 * 999_983u64);
    }

    #[test]
    fn widening_mul_max() {
        let max = U512::from_limbs([u64::MAX; LIMBS]);
        let (lo, hi) = max.widening_mul(&max);
        // (2^512-1)^2 = 2^1024 - 2^513 + 1
        assert_eq!(lo.limbs()[0], 1);
        assert_eq!(hi.limbs()[0], u64::MAX - 1);
        for i in 1..LIMBS {
            assert_eq!(lo.limbs()[i], 0);
            assert_eq!(hi.limbs()[i], u64::MAX);
        }
    }

    #[test]
    fn divmod_matches_u128() {
        let a = U512::from_u128(0xdead_beef_cafe_babe_1234_5678_9abc_def0);
        let b = U512::from_u64(0x1_0000_0001);
        let (q, r) = a.divmod(&b);
        let av = 0xdead_beef_cafe_babe_1234_5678_9abc_def0u128;
        let bv = 0x1_0000_0001u128;
        assert_eq!(q, U512::from_u128(av / bv));
        assert_eq!(r, U512::from_u128(av % bv));
    }

    #[test]
    fn shifts() {
        let a = U512::from_u64(0b1011);
        assert_eq!(a.shl_small(100).shr_small(100), a);
        assert_eq!(a.shl_small(1).as_u64(), 0b10110);
        assert_eq!(a.shr_small(2).as_u64(), 0b10);
    }

    #[test]
    fn hex_roundtrip() {
        let a = U512::from_u128(0xabc_def0_1234);
        assert_eq!(U512::from_hex(&a.to_hex()), Some(a));
        assert_eq!(U512::ZERO.to_hex(), "0");
        assert_eq!(U512::from_hex("0"), Some(U512::ZERO));
        assert_eq!(U512::from_hex(""), None);
        assert_eq!(U512::from_hex("xyz"), None);
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = U512::from_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
        let bytes = a.to_be_bytes();
        assert_eq!(U512::from_be_bytes(&bytes), a);
    }

    #[test]
    fn modpow_fermat_little() {
        // 2^(p-1) mod p == 1 for prime p
        let p = U512::from_u64(1_000_000_007);
        let e = U512::from_u64(1_000_000_006);
        assert_eq!(U512::TWO.modpow(&e, &p), U512::ONE);
    }

    #[test]
    fn modpow_edge_cases() {
        let m = U512::from_u64(97);
        assert_eq!(U512::from_u64(5).modpow(&U512::ZERO, &m), U512::ONE);
        assert_eq!(U512::from_u64(5).modpow(&U512::ONE, &m), U512::from_u64(5));
        assert_eq!(U512::from_u64(5).modpow(&U512::TWO, &U512::ONE), U512::ZERO);
    }

    #[test]
    fn gcd_values() {
        assert_eq!(
            U512::from_u64(48).gcd(&U512::from_u64(36)),
            U512::from_u64(12)
        );
        assert_eq!(U512::from_u64(17).gcd(&U512::from_u64(31)), U512::ONE);
        assert_eq!(U512::ZERO.gcd(&U512::from_u64(5)), U512::from_u64(5));
        assert_eq!(U512::from_u64(5).gcd(&U512::ZERO), U512::from_u64(5));
    }

    #[test]
    fn modinv_small() {
        let m = U512::from_u64(101);
        for a in 1..101u64 {
            let av = U512::from_u64(a);
            let inv = av.modinv(&m).expect("inverse exists mod prime");
            assert_eq!(av.mulmod(&inv, &m), U512::ONE, "a={a}");
        }
    }

    #[test]
    fn modinv_nonexistent() {
        assert!(U512::from_u64(6).modinv(&U512::from_u64(9)).is_none());
        assert!(U512::ZERO.modinv(&U512::from_u64(7)).is_none());
    }

    #[test]
    fn divmod_full_width_divisor() {
        // Regression: for divisors above 2^511 the bit-serial division
        // used to drop the remainder's shifted-out high bit.
        let m = U512::from_limbs([u64::MAX - 4, u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX]); // 2^512 - 5
        let big = U512::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff").unwrap(); // 2^256 - 1
        // big^3 mod (2^512 - 5) = 8*2^256 - 16 (since 2^768 = 5*2^256,
        // 3*2^512 = 15 mod m).
        let sq = big.mulmod(&big, &m);
        let cube = sq.mulmod(&big, &m);
        let expected = U512::ONE.shl_small(259).sub(&U512::from_u64(16));
        assert_eq!(cube, expected);
        // divmod agrees: (q, r) reconstructs and r < m.
        let x = U512::from_limbs([7, 0, 0, 0, 0, 0, 0, u64::MAX]);
        let (q, r) = x.divmod(&m);
        assert!(r.cmp_val(&m) == Ordering::Less);
        assert_eq!(q.mul(&m).add(&r), x);
    }

    #[test]
    fn montgomery_roundtrip_and_mul() {
        let m = U512::from_u64(1_000_000_007);
        let ctx = Montgomery::new(&m).unwrap();
        let a = U512::from_u64(123_456_789);
        let b = U512::from_u64(987_654_321);
        assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a);
        let prod = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        assert_eq!(prod, a.mulmod(&b, &m));
        assert_eq!(ctx.from_mont(&ctx.one()), U512::ONE);
    }

    #[test]
    fn montgomery_rejects_even_or_trivial_modulus() {
        assert!(Montgomery::new(&U512::from_u64(100)).is_none());
        assert!(Montgomery::new(&U512::ONE).is_none());
        assert!(Montgomery::new(&U512::from_u64(97)).is_some());
    }

    #[test]
    fn montgomery_full_width_modulus() {
        // bits(m) == 512 exercises the wrapping-negation branch of r1.
        let m = U512::from_limbs([u64::MAX - 4, u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX]);
        assert!(m.is_odd());
        assert_eq!(m.bits(), 512);
        let ctx = Montgomery::new(&m).unwrap();
        let a = U512::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff").unwrap();
        let e = U512::from_u64(65_537);
        assert_eq!(ctx.modpow(&a, &e), a.modpow_schoolbook(&e, &m));
    }

    #[test]
    fn montgomery_modpow_matches_schoolbook() {
        let m = U512::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff1").unwrap();
        let ctx = Montgomery::new(&m).unwrap();
        let base = U512::from_hex("123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef").unwrap();
        for e in [0u64, 1, 2, 3, 16, 65_537, u64::MAX] {
            let exp = U512::from_u64(e);
            assert_eq!(
                ctx.modpow(&base, &exp),
                base.modpow_schoolbook(&exp, &m),
                "e={e}"
            );
        }
        // Large exponent (full 256-bit) as well.
        let exp = U512::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855").unwrap();
        assert_eq!(ctx.modpow(&base, &exp), base.modpow_schoolbook(&exp, &m));
    }

    #[test]
    fn modpow_dispatch_even_modulus_falls_back() {
        // Even modulus: the public modpow must agree with schoolbook.
        let m = U512::from_u64(1 << 20);
        let base = U512::from_u64(12_345);
        let exp = U512::from_u64(77);
        assert_eq!(base.modpow(&exp, &m), base.modpow_schoolbook(&exp, &m));
    }

    #[test]
    fn mulmod_large() {
        // Check mulmod on values requiring the 1024-bit intermediate.
        let a = U512::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff").unwrap();
        let m = U512::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff1").unwrap();
        // a = m + 14, so a*a mod m = 14*14 = 196
        let r = a.mulmod(&a, &m);
        assert_eq!(r, U512::from_u64(196));
    }
}
