//! Deterministic random bit generator built on SHA-256 in counter mode.
//!
//! Key generation and the test/bench workloads need reproducible
//! randomness that does not depend on platform entropy; a hash-counter
//! DRBG keeps the whole PKI deterministic given a seed string.

use crate::sha256::Sha256;

/// SHA-256 counter-mode deterministic generator.
#[derive(Clone)]
pub struct Drbg {
    seed: [u8; 32],
    counter: u64,
    buf: [u8; 32],
    pos: usize,
}

impl Drbg {
    /// Seeds the generator from arbitrary bytes.
    pub fn new(seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"hetsec-drbg-v1");
        h.update(seed);
        Drbg {
            seed: h.finalize(),
            counter: 0,
            buf: [0u8; 32],
            pos: 32,
        }
    }

    /// Seeds from a UTF-8 label.
    pub fn from_label(label: &str) -> Self {
        Self::new(label.as_bytes())
    }

    fn refill(&mut self) {
        let mut h = Sha256::new();
        h.update(&self.seed);
        h.update(&self.counter.to_be_bytes());
        self.buf = h.finalize();
        self.counter += 1;
        self.pos = 0;
    }

    /// Next pseudo-random byte.
    pub fn next_u8(&mut self) -> u8 {
        if self.pos >= 32 {
            self.refill();
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    /// Next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_be_bytes(bytes)
    }

    /// Fills `out` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = self.next_u8();
        }
    }

    /// Uniform value in `[0, bound)` by rejection sampling.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Drbg::from_label("seed-a");
        let mut b = Drbg::from_label("seed-a");
        let mut c = Drbg::from_label("seed-b");
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_spans_refills() {
        let mut d = Drbg::from_label("span");
        let mut buf = [0u8; 100];
        d.fill_bytes(&mut buf);
        // Not all zero, and not all equal.
        assert!(buf.iter().any(|&b| b != buf[0]));
    }

    #[test]
    fn next_below_in_range() {
        let mut d = Drbg::from_label("range");
        for _ in 0..1000 {
            let v = d.next_below(7);
            assert!(v < 7);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut d = Drbg::from_label("cover");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[d.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
