//! Verdict-stamp signing primitives.
//!
//! A verdict stamp is a compact token a master signs over the verdict
//! it reached when verifying a credential: `(credential fingerprint,
//! signature-status code, session epoch, issued-at)`. Receiving nodes
//! check one stamp signature against the already-known master key —
//! whose Montgomery context is cached process-wide — instead of paying
//! a fresh RSA verification (key parse + context build + modpow) per
//! credential.
//!
//! This module owns only the canonical byte encoding and the sign /
//! verify wrappers; the stamp *semantics* (which statuses exist, who is
//! trusted to issue, epoch staleness) live in the keynote and webcom
//! layers. The payload is domain-separated so a stamp signature can
//! never be confused with a credential signature made by the same key,
//! and every field is fixed-width so no delimiter ambiguity exists.

use crate::keys::{KeyPair, PublicKey, Signature};

/// Domain-separation tag; bump the suffix on any layout change.
const STAMP_DOMAIN: &[u8] = b"hetsec-verdict-stamp-v1";

/// Canonical signable encoding of a stamp's fields.
///
/// Layout: `domain || fingerprint(32) || status(1) || epoch(8 BE) ||
/// issued_at(8 BE)` — 62 bytes, fixed width throughout.
pub fn stamp_payload(fingerprint: &[u8; 32], status: u8, epoch: u64, issued_at: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(STAMP_DOMAIN.len() + 32 + 1 + 8 + 8);
    buf.extend_from_slice(STAMP_DOMAIN);
    buf.extend_from_slice(fingerprint);
    buf.push(status);
    buf.extend_from_slice(&epoch.to_be_bytes());
    buf.extend_from_slice(&issued_at.to_be_bytes());
    buf
}

/// Signs a stamp payload with the issuing master's key.
pub fn sign_stamp(
    key: &KeyPair,
    fingerprint: &[u8; 32],
    status: u8,
    epoch: u64,
    issued_at: u64,
) -> Signature {
    key.sign(&stamp_payload(fingerprint, status, epoch, issued_at))
}

/// Verifies a stamp signature against the issuer's public key. One
/// modpow using the per-key cached Montgomery context.
pub fn verify_stamp(
    key: &PublicKey,
    fingerprint: &[u8; 32],
    status: u8,
    epoch: u64,
    issued_at: u64,
    sig: &Signature,
) -> bool {
    key.verify(&stamp_payload(fingerprint, status, epoch, issued_at), sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let kp = KeyPair::from_label("stamp-master");
        let fp = [7u8; 32];
        let sig = sign_stamp(&kp, &fp, 1, 3, 1_700_000_000);
        assert!(verify_stamp(kp.public(), &fp, 1, 3, 1_700_000_000, &sig));
    }

    #[test]
    fn any_field_change_invalidates() {
        let kp = KeyPair::from_label("stamp-master-2");
        let fp = [9u8; 32];
        let sig = sign_stamp(&kp, &fp, 1, 5, 42);
        let mut other_fp = fp;
        other_fp[0] ^= 1;
        assert!(!verify_stamp(kp.public(), &other_fp, 1, 5, 42, &sig));
        assert!(!verify_stamp(kp.public(), &fp, 2, 5, 42, &sig));
        assert!(!verify_stamp(kp.public(), &fp, 1, 6, 42, &sig));
        assert!(!verify_stamp(kp.public(), &fp, 1, 5, 43, &sig));
        let other = KeyPair::from_label("stamp-imposter");
        assert!(!verify_stamp(other.public(), &fp, 1, 5, 42, &sig));
    }

    #[test]
    fn domain_separated_from_plain_signing() {
        // A signature over the raw payload bytes (no domain tag) must
        // not verify as a stamp, and vice versa.
        let kp = KeyPair::from_label("stamp-domain");
        let fp = [3u8; 32];
        let mut raw = Vec::new();
        raw.extend_from_slice(&fp);
        raw.push(1);
        raw.extend_from_slice(&0u64.to_be_bytes());
        raw.extend_from_slice(&0u64.to_be_bytes());
        let plain = kp.sign(&raw);
        assert!(!verify_stamp(kp.public(), &fp, 1, 0, 0, &plain));
    }

    #[test]
    fn payload_is_fixed_width() {
        let a = stamp_payload(&[0u8; 32], 0, 0, 0);
        let b = stamp_payload(&[0xff; 32], 255, u64::MAX, u64::MAX);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), STAMP_DOMAIN.len() + 32 + 1 + 8 + 8);
    }
}
