//! Principal key material: printable public keys, keypairs, signatures.
//!
//! KeyNote principals are printable strings; this module defines the
//! canonical textual encodings used throughout the framework:
//!
//! * public key: `rsa-sim:<hex n>:<hex e>`
//! * signature:  `sig-rsa-sha256:<hex s>`

use crate::bigint::U512;
use crate::drbg::Drbg;
use crate::rsa::{self, RsaPublic, RsaSecret, RsaSignature};
use crate::sha256::{hex_digest, sha256};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Prefix of textual public keys.
pub const KEY_PREFIX: &str = "rsa-sim";
/// Prefix of textual signatures.
pub const SIG_PREFIX: &str = "sig-rsa-sha256";

/// Errors from parsing textual key material.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// The string did not have the expected `prefix:field:field` shape.
    Malformed(String),
    /// A hex field failed to parse.
    BadHex(String),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::Malformed(s) => write!(f, "malformed key material: {s}"),
            KeyError::BadHex(s) => write!(f, "invalid hex in key material: {s}"),
        }
    }
}

impl std::error::Error for KeyError {}

/// A parsed public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PublicKey {
    inner: RsaPublic,
}

impl PublicKey {
    /// Canonical textual form (`rsa-sim:<n>:<e>`).
    pub fn to_text(&self) -> String {
        format!(
            "{KEY_PREFIX}:{}:{}",
            self.inner.n.to_hex(),
            self.inner.e.to_hex()
        )
    }

    /// Short fingerprint: first 16 hex chars of SHA-256 of the text form.
    pub fn fingerprint(&self) -> String {
        let digest = sha256(self.to_text().as_bytes());
        hex_digest(&digest)[..16].to_string()
    }

    /// Verifies `sig` over `payload`.
    pub fn verify(&self, payload: &[u8], sig: &Signature) -> bool {
        rsa::verify(&self.inner, payload, &sig.inner)
    }

    /// Raw RSA public key.
    pub fn raw(&self) -> &RsaPublic {
        &self.inner
    }
}

impl FromStr for PublicKey {
    type Err = KeyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let prefix = parts.next().unwrap_or_default();
        if prefix != KEY_PREFIX {
            return Err(KeyError::Malformed(s.to_string()));
        }
        let n_hex = parts.next().ok_or_else(|| KeyError::Malformed(s.to_string()))?;
        let e_hex = parts.next().ok_or_else(|| KeyError::Malformed(s.to_string()))?;
        if parts.next().is_some() {
            return Err(KeyError::Malformed(s.to_string()));
        }
        let n = U512::from_hex(n_hex).ok_or_else(|| KeyError::BadHex(n_hex.to_string()))?;
        let e = U512::from_hex(e_hex).ok_or_else(|| KeyError::BadHex(e_hex.to_string()))?;
        Ok(PublicKey {
            inner: RsaPublic { n, e },
        })
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

impl Serialize for PublicKey {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_text())
    }
}

impl<'de> Deserialize<'de> for PublicKey {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        s.parse().map_err(serde::de::Error::custom)
    }
}

/// A detached signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    inner: RsaSignature,
}

impl Signature {
    /// Canonical textual form (`sig-rsa-sha256:<s>`).
    pub fn to_text(&self) -> String {
        format!("{SIG_PREFIX}:{}", self.inner.0.to_hex())
    }

    /// Raw RSA signature, mirroring [`PublicKey::raw`]. Lets callers
    /// reach the uncached [`rsa`] entry points for baselines.
    pub fn raw(&self) -> &RsaSignature {
        &self.inner
    }
}

impl FromStr for Signature {
    type Err = KeyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        if parts.next() != Some(SIG_PREFIX) {
            return Err(KeyError::Malformed(s.to_string()));
        }
        let hex = parts.next().ok_or_else(|| KeyError::Malformed(s.to_string()))?;
        if parts.next().is_some() {
            return Err(KeyError::Malformed(s.to_string()));
        }
        let v = U512::from_hex(hex).ok_or_else(|| KeyError::BadHex(hex.to_string()))?;
        Ok(Signature {
            inner: RsaSignature(v),
        })
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

/// A signing keypair for one principal.
#[derive(Clone, Debug)]
pub struct KeyPair {
    public: PublicKey,
    secret: RsaSecret,
}

impl KeyPair {
    /// Deterministically derives a keypair from a seed label, e.g. the
    /// principal's name. Same label, same keypair.
    pub fn from_label(label: &str) -> Self {
        let mut drbg = Drbg::from_label(label);
        let (public, secret) = rsa::generate_keypair(&mut drbg);
        KeyPair {
            public: PublicKey { inner: public },
            secret,
        }
    }

    /// Generates a keypair from an already-seeded DRBG.
    pub fn generate(drbg: &mut Drbg) -> Self {
        let (public, secret) = rsa::generate_keypair(drbg);
        KeyPair {
            public: PublicKey { inner: public },
            secret,
        }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Signs a payload.
    pub fn sign(&self, payload: &[u8]) -> Signature {
        Signature {
            inner: rsa::sign(&self.secret, payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let kp = KeyPair::from_label("alice");
        let text = kp.public().to_text();
        let parsed: PublicKey = text.parse().unwrap();
        assert_eq!(&parsed, kp.public());
    }

    #[test]
    fn signature_text_roundtrip() {
        let kp = KeyPair::from_label("bob");
        let sig = kp.sign(b"payload");
        let parsed: Signature = sig.to_text().parse().unwrap();
        assert!(kp.public().verify(b"payload", &parsed));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<PublicKey>().is_err());
        assert!("rsa-sim".parse::<PublicKey>().is_err());
        assert!("rsa-sim:zz:10001".parse::<PublicKey>().is_err());
        assert!("other:aa:bb".parse::<PublicKey>().is_err());
        assert!("rsa-sim:aa:bb:cc".parse::<PublicKey>().is_err());
        assert!("sig-rsa-sha256".parse::<Signature>().is_err());
        assert!("sig-rsa-sha256:zz".parse::<Signature>().is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_short() {
        let kp = KeyPair::from_label("carol");
        let f1 = kp.public().fingerprint();
        let f2 = kp.public().fingerprint();
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 16);
    }

    #[test]
    fn distinct_labels_give_distinct_keys() {
        let a = KeyPair::from_label("a");
        let b = KeyPair::from_label("b");
        assert_ne!(a.public(), b.public());
    }

    #[test]
    fn serde_roundtrip() {
        let kp = KeyPair::from_label("serde");
        let json = serde_json::to_string(kp.public()).unwrap();
        let back: PublicKey = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, kp.public());
    }
}
