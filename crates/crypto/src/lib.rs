//! Simulated PKI substrate for the heterogeneous middleware security
//! framework.
//!
//! The original Secure WebCom system relied on the KeyNote toolkit's
//! RSA/DSA signatures and an external PKI. Neither exists as an offline
//! Rust crate, so this crate builds the substrate from scratch:
//!
//! * [`bigint::U512`] — fixed-width 512-bit arithmetic (add/sub/mul/
//!   divmod/modpow/modinv/gcd, Miller-Rabin support),
//! * [`sha256`] — FIPS 180-4 SHA-256,
//! * [`rsa`] — textbook RSA signatures with toy 256-bit moduli,
//! * [`keys`] — printable key/signature encodings used by KeyNote
//!   principals,
//! * [`keystore`] — a thread-safe name → keypair store with
//!   deterministic derivation, and
//! * [`drbg`] — a SHA-256 counter DRBG so everything is reproducible.
//!
//! **Security note:** the parameters are deliberately small so that key
//! generation stays fast inside tests and benches. This is a functional
//! simulation of a PKI, not a secure one; see DESIGN.md.

pub mod bigint;
pub mod drbg;
pub mod keys;
pub mod keystore;
pub mod rsa;
pub mod sha256;
pub mod stamp;

pub use drbg::Drbg;
pub use keys::{KeyError, KeyPair, PublicKey, Signature};
pub use keystore::KeyStore;
pub use sha256::{hex_digest, sha256};
pub use stamp::{sign_stamp, stamp_payload, verify_stamp};
