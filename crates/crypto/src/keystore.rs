//! A thread-safe named keystore.
//!
//! WebCom environments and examples need to look up principals' keypairs
//! by human-readable name (the paper's `Kbob`, `Kclaire`, ...). The store
//! derives keys deterministically on first use so fixtures are stable.

use crate::keys::{KeyPair, PublicKey, Signature};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Thread-safe name -> keypair store with lazy deterministic derivation.
#[derive(Default)]
pub struct KeyStore {
    keys: RwLock<HashMap<String, KeyPair>>,
}

impl KeyStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the keypair for `name`, deriving it deterministically from
    /// the name on first access.
    pub fn keypair(&self, name: &str) -> KeyPair {
        if let Some(kp) = self.keys.read().get(name) {
            return kp.clone();
        }
        let mut w = self.keys.write();
        w.entry(name.to_string())
            .or_insert_with(|| KeyPair::from_label(name))
            .clone()
    }

    /// Inserts an explicit keypair under `name`, replacing any existing.
    pub fn insert(&self, name: &str, kp: KeyPair) {
        self.keys.write().insert(name.to_string(), kp);
    }

    /// Public key for `name` (derived on demand).
    pub fn public(&self, name: &str) -> PublicKey {
        *self.keypair(name).public()
    }

    /// Signs `payload` with `name`'s key.
    pub fn sign(&self, name: &str, payload: &[u8]) -> Signature {
        self.keypair(name).sign(payload)
    }

    /// Looks up the registered name owning `key`, if any key already
    /// derived/inserted matches.
    pub fn name_of(&self, key: &PublicKey) -> Option<String> {
        self.keys
            .read()
            .iter()
            .find(|(_, kp)| kp.public() == key)
            .map(|(n, _)| n.clone())
    }

    /// Names currently materialised in the store (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.keys.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of materialised keys.
    pub fn len(&self) -> usize {
        self.keys.read().len()
    }

    /// True when no keys have been materialised.
    pub fn is_empty(&self) -> bool {
        self.keys.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_derivation_is_stable() {
        let store = KeyStore::new();
        let a1 = store.public("alice");
        let a2 = store.public("alice");
        assert_eq!(a1, a2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sign_and_verify_through_store() {
        let store = KeyStore::new();
        let sig = store.sign("bob", b"msg");
        assert!(store.public("bob").verify(b"msg", &sig));
        assert!(!store.public("carol").verify(b"msg", &sig));
    }

    #[test]
    fn name_lookup() {
        let store = KeyStore::new();
        let k = store.public("dave");
        assert_eq!(store.name_of(&k), Some("dave".to_string()));
        let unknown = KeyPair::from_label("unregistered-elsewhere");
        let fresh = KeyStore::new();
        assert_eq!(fresh.name_of(unknown.public()), None);
    }

    #[test]
    fn insert_overrides() {
        let store = KeyStore::new();
        let original = store.public("eve");
        store.insert("eve", KeyPair::from_label("eve-rotated"));
        assert_ne!(store.public("eve"), original);
    }

    #[test]
    fn names_sorted() {
        let store = KeyStore::new();
        store.public("zed");
        store.public("amy");
        assert_eq!(store.names(), vec!["amy".to_string(), "zed".to_string()]);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let store = Arc::new(KeyStore::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || s.public(&format!("user-{}", i % 4)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 4);
    }
}
