//! fig_load — the sharded-fabric load harness (PR 8).
//!
//! Drives the closed-loop generator in `hetsec_webcom::load` across
//! the fabric shapes the tentpole claims matter, then records each
//! run's measurements as synthetic series (via `iter_custom`, whose
//! returned duration encodes the value exactly):
//!
//! * `fig_load/throughput/<series>` — completed ops per second;
//! * `fig_load/p50|p99|p999/<series>` — dispatch-latency quantiles in
//!   nanoseconds, from the masters' log-bucketed histograms;
//!
//! where `<series>` is `lockstep_shardsN` / `mux_shardsN` for N in
//! {1, 2, 4}. The acceptance claims read straight off the series: mux
//! beats lockstep ≥ 2× on one shard, and mux throughput scales
//! monotonically 1 → 2 → 4 shards, at ≥ 100k synthetic principals.
//!
//! The host is single-core, so every win here is latency hiding: the
//! synthetic executor sleeps a fixed service time per op, and
//! throughput measures how much of that sleeping the transport and
//! dispatch layers overlap.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsec_webcom::{run_load_with_stack, synthetic_stack, LoadConfig, LoadReport};
use std::time::Duration;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("BENCH_SMOKE").is_some()
}

fn series_label(r: &LoadReport) -> String {
    format!(
        "{}_shards{}",
        if r.mux { "mux" } else { "lockstep" },
        r.shards
    )
}

fn record(group: &mut criterion::BenchmarkGroup<'_>, id: String, value: f64) {
    group.bench_function(id, |b| {
        b.iter_custom(|iters| Duration::from_nanos((value * iters as f64).round() as u64))
    });
}

fn bench_load(c: &mut Criterion) {
    let smoke = smoke_mode();
    let principals = if smoke { 500 } else { 100_000 };
    let stack = synthetic_stack(principals);
    let mut reports = Vec::new();
    for mux in [false, true] {
        for shards in [1usize, 2, 4] {
            let cfg = if smoke {
                LoadConfig {
                    principals,
                    ops: 24 * shards,
                    shards,
                    mux,
                    window: 8,
                    callers: 2,
                    pipeline: 4,
                    service_time: Duration::from_micros(100),
                    ..LoadConfig::default()
                }
            } else {
                LoadConfig {
                    principals,
                    // Closed-loop: size each run for roughly similar
                    // wall time across shard counts.
                    ops: if mux { 1_000 * shards } else { 250 * shards },
                    shards,
                    mux,
                    window: 32,
                    callers: 4,
                    pipeline: 8,
                    service_time: Duration::from_millis(2),
                    ..LoadConfig::default()
                }
            };
            let report = run_load_with_stack(&cfg, &stack);
            assert_eq!(
                report.failed, 0,
                "load run {} dropped ops: {report:?}",
                series_label(&report)
            );
            reports.push(report);
        }
    }
    let mut group = c.benchmark_group("fig_load");
    group.measurement_time(Duration::from_millis(10));
    for r in &reports {
        let label = series_label(r);
        record(&mut group, format!("throughput/{label}"), r.throughput);
        record(
            &mut group,
            format!("p50/{label}"),
            r.latency.p50().as_nanos() as f64,
        );
        record(
            &mut group,
            format!("p99/{label}"),
            r.latency.p99().as_nanos() as f64,
        );
        record(
            &mut group,
            format!("p999/{label}"),
            r.latency.p999().as_nanos() as f64,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
