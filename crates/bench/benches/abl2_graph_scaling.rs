//! abl2 — ablation: condensed-graph engine scaling.
//!
//! Measures the availability-driven wave evaluator on wide fan-out
//! graphs, deep chains, and nested condensed subgraphs — the substrate
//! cost underneath WebCom scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_graphs::{evaluate_arith, GraphBuilder, GraphTemplate, Source, Value};
use std::hint::black_box;
use std::sync::Arc;

fn fanout_graph(width: usize) -> GraphTemplate {
    let mut b = GraphBuilder::new("fanout", 1);
    let leaves: Vec<_> = (0..width)
        .map(|i| {
            let c = b.constant(&format!("c{i}"), i as i64);
            b.primitive(&format!("n{i}"), "add", vec![Source::Param(0), Source::Node(c)])
        })
        .collect();
    let gathered = b.primitive(
        "gather",
        "list",
        leaves.iter().map(|&n| Source::Node(n)).collect(),
    );
    let sum = b.primitive("sum", "sum_list", vec![Source::Node(gathered)]);
    b.output(Source::Node(sum)).unwrap()
}

fn chain_graph(depth: usize) -> GraphTemplate {
    let mut b = GraphBuilder::new("chain", 1);
    let one = b.constant("one", 1i64);
    let mut cur = b.primitive("n0", "add", vec![Source::Param(0), Source::Node(one)]);
    for i in 1..depth {
        cur = b.primitive(&format!("n{i}"), "add", vec![Source::Node(cur), Source::Node(one)]);
    }
    b.output(Source::Node(cur)).unwrap()
}

fn nested_graph(depth: usize) -> GraphTemplate {
    let mut inner = Arc::new({
        let mut b = GraphBuilder::new("inc", 1);
        let one = b.constant("one", 1i64);
        let n = b.primitive("add", "add", vec![Source::Param(0), Source::Node(one)]);
        b.output(Source::Node(n)).unwrap()
    });
    for i in 0..depth {
        inner = Arc::new({
            let mut b = GraphBuilder::new(&format!("wrap{i}"), 1);
            let c = b.condensed("call", inner.clone(), vec![Source::Param(0)]);
            b.output(Source::Node(c)).unwrap()
        });
    }
    GraphTemplate::clone(&inner)
}

fn bench_abl2(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl2_graph_scaling");
    group.sample_size(20);
    for width in [16usize, 64, 256] {
        let g = fanout_graph(width);
        group.throughput(Throughput::Elements(width as u64));
        group.bench_with_input(BenchmarkId::new("fanout", width), &g, |b, g| {
            b.iter(|| black_box(evaluate_arith(g, &[Value::Int(1)]).unwrap()))
        });
    }
    for depth in [16usize, 64, 256] {
        let g = chain_graph(depth);
        group.throughput(Throughput::Elements(depth as u64));
        group.bench_with_input(BenchmarkId::new("chain", depth), &g, |b, g| {
            b.iter(|| black_box(evaluate_arith(g, &[Value::Int(0)]).unwrap()))
        });
    }
    for depth in [4usize, 16, 64] {
        let g = nested_graph(depth);
        group.throughput(Throughput::Elements(depth as u64));
        group.bench_with_input(BenchmarkId::new("nested_condensed", depth), &g, |b, g| {
            b.iter(|| black_box(evaluate_arith(g, &[Value::Int(0)]).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_abl2);
criterion_main!(benches);
