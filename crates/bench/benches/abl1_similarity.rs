//! abl1 — ablation: similarity metrics for imprecise migration [13].
//!
//! Compares the three string metrics and the combined scorer on role
//! vocabularies of increasing size, and measures end-to-end fuzzy role
//! matching inside a migration transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_middleware::MiddlewareKind;
use hetsec_rbac::{PermissionGrant, RbacPolicy, RoleAssignment};
use hetsec_translate::similarity::{
    best_match, combined_similarity, dice_bigram, jaro_winkler, levenshtein_similarity,
};
use hetsec_translate::{transform_policy, MigrationSpec};
use std::hint::black_box;

fn role_vocab(n: usize) -> Vec<String> {
    let stems = [
        "Manager", "Clerk", "Assistant", "Auditor", "Director", "Analyst", "Operator", "Admin",
    ];
    (0..n)
        .map(|i| format!("{}{}", stems[i % stems.len()], i / stems.len()))
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl1_similarity");
    let pairs = [
        ("Manager", "Managers"),
        ("SalesManager", "Manager"),
        ("Clerk", "Clerks"),
        ("Assistant", "Asistant"),
    ];
    for (name, f) in [
        ("levenshtein", levenshtein_similarity as fn(&str, &str) -> f64),
        ("jaro_winkler", jaro_winkler as fn(&str, &str) -> f64),
        ("dice_bigram", dice_bigram as fn(&str, &str) -> f64),
        ("combined", combined_similarity as fn(&str, &str) -> f64),
    ] {
        group.bench_function(BenchmarkId::new("metric", name), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for (a, b2) in pairs {
                    acc += f(a, b2);
                }
                black_box(acc)
            })
        });
    }

    for vocab_size in [8usize, 64, 512] {
        let vocab = role_vocab(vocab_size);
        group.throughput(Throughput::Elements(vocab_size as u64));
        group.bench_with_input(
            BenchmarkId::new("best_match", vocab_size),
            &vocab,
            |b, v| {
                b.iter(|| {
                    black_box(best_match(
                        "Managers3",
                        v.iter().map(String::as_str),
                        0.85,
                    ))
                })
            },
        );
    }

    // End-to-end fuzzy transform: 64 drifted roles against a canon.
    let mut policy = RbacPolicy::new();
    for i in 0..64 {
        policy.grant(PermissionGrant::new(
            "D",
            format!("Managers{i}"),
            "T",
            "read",
        ));
        policy.assign(RoleAssignment::new(format!("u{i}"), "D", format!("Managers{i}")));
    }
    let spec = MigrationSpec::domain("D", "E")
        .with_target_roles((0..64).map(|i| format!("Manager{i}")).collect::<Vec<_>>());
    group.bench_function("fuzzy_transform_64_roles", |b| {
        b.iter(|| {
            let (out, renames) =
                transform_policy(&policy, MiddlewareKind::Ejb, MiddlewareKind::Ejb, &spec);
            assert_eq!(renames.len(), 64);
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
