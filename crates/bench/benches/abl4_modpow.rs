//! abl4 — modular-exponentiation microbenchmark.
//!
//! Isolates the arithmetic underneath RSA sign/verify: Montgomery
//! fixed-window exponentiation (the path `U512::modpow` now dispatches
//! to for odd moduli) against the bit-serial schoolbook ladder it
//! replaced, plus the one-off Montgomery context setup and the
//! end-to-end sign/verify pair that motivated the overhaul.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsec_crypto::bigint::{Montgomery, U512};
use hetsec_crypto::rsa;
use hetsec_crypto::{Drbg, KeyPair};
use std::hint::black_box;

fn bench_modpow(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl4_modpow");

    // A representative RSA-sized instance: 256-bit odd modulus,
    // full-width base, 256-bit exponent (the private-exponent shape).
    let mut drbg = Drbg::from_label("abl4-modpow");
    let mut bytes = [0u8; 32];
    drbg.fill_bytes(&mut bytes);
    let mut m = U512::from_be_bytes(&bytes);
    let mut limbs = m.limbs();
    limbs[0] |= 1; // odd
    m = U512::from_limbs(limbs);
    drbg.fill_bytes(&mut bytes);
    let base = U512::from_be_bytes(&bytes);
    drbg.fill_bytes(&mut bytes);
    let exp = U512::from_be_bytes(&bytes);
    let e_small = U512::from_u64(65_537);

    group.bench_function("montgomery_256bit_exp", |b| {
        b.iter(|| black_box(base.modpow(black_box(&exp), black_box(&m))))
    });
    group.bench_function("schoolbook_256bit_exp", |b| {
        b.iter(|| black_box(base.modpow_schoolbook(black_box(&exp), black_box(&m))))
    });
    group.bench_function("montgomery_f4_exp", |b| {
        b.iter(|| black_box(base.modpow(black_box(&e_small), black_box(&m))))
    });
    group.bench_function("schoolbook_f4_exp", |b| {
        b.iter(|| black_box(base.modpow_schoolbook(black_box(&e_small), black_box(&m))))
    });
    group.bench_function("montgomery_context_setup", |b| {
        b.iter(|| black_box(Montgomery::new(black_box(&m)).unwrap()))
    });

    // End-to-end: the RSA operations the trust layer actually calls.
    // `rsa_sign`/`rsa_verify` now hit the per-key Montgomery context
    // memo; the `_fresh_ctx` series rebuilds the context per call (the
    // pre-memo behavior), so the pair shows the cached-context delta.
    let kp = KeyPair::from_label("abl4-rsa");
    let payload = b"abl4 modpow microbench payload";
    let sig = kp.sign(payload);
    group.bench_function("rsa_sign", |b| {
        b.iter(|| black_box(kp.sign(black_box(payload))))
    });
    group.bench_function("rsa_verify", |b| {
        b.iter(|| black_box(kp.public().verify(black_box(payload), black_box(&sig))))
    });
    let (raw_public, raw_secret) = rsa::generate_keypair(&mut Drbg::from_label("abl4-rsa-raw"));
    let raw_sig = rsa::sign(&raw_secret, payload);
    group.bench_function("rsa_sign_cached_ctx", |b| {
        b.iter(|| black_box(rsa::sign(black_box(&raw_secret), black_box(payload))))
    });
    group.bench_function("rsa_sign_fresh_ctx", |b| {
        b.iter(|| black_box(rsa::sign_uncached(black_box(&raw_secret), black_box(payload))))
    });
    group.bench_function("rsa_verify_cached_ctx", |b| {
        b.iter(|| {
            black_box(rsa::verify(
                black_box(&raw_public),
                black_box(payload),
                black_box(&raw_sig),
            ))
        })
    });
    group.bench_function("rsa_verify_fresh_ctx", |b| {
        b.iter(|| {
            black_box(rsa::verify_uncached(
                black_box(&raw_public),
                black_box(payload),
                black_box(&raw_sig),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_modpow);
criterion_main!(benches);
