//! fig_analyze — incremental policy analysis (PR 9).
//!
//! Measures the static-analysis engine on synthetic WebCom-shaped
//! stores (one Figure 5 policy table plus n membership credentials) at
//! n in {100, 1k, 10k}:
//!
//! * `fig_analyze/cold/nN` — full `analyze` from scratch;
//! * `fig_analyze/incremental/nN` — re-analysis after a
//!   single-assertion `Modify` through a warm `IncrementalAnalyzer`;
//! * `fig_analyze/gate/nN` — a warm `LintAdmissionGate::review` of one
//!   role assignment against an RBAC policy with ~N users.
//!
//! The acceptance claim reads off the first two series: incremental
//! re-analysis after a one-assertion edit of the 10k store must be at
//! least 10x faster than the cold run (asserted below in full mode;
//! the smoke pass only proves the bench still runs).

use criterion::{criterion_group, criterion_main, Criterion};
use hetsec_analyze::{AnalysisOptions, IncrementalAnalyzer, LintAdmissionGate, StoreEdit};
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::parser::parse_assertions;
use hetsec_rbac::{PermissionGrant, RbacPolicy, RoleAssignment};
use hetsec_translate::maintenance::{AdmissionGate, PolicyChange};
use hetsec_translate::SymbolicDirectory;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("BENCH_SMOKE").is_some()
}

const DOMAINS: usize = 8;
const ROLES: usize = 4;

/// The Figure 5 policy table over 8 synthetic grants: role R{d%4} in
/// domain D{d} may read SalariesDB.
fn policy_conditions() -> String {
    let grants: Vec<String> = (0..DOMAINS)
        .map(|d| {
            format!(
                "(ObjectType == \"SalariesDB\" && (Domain == \"D{d}\" && (Role == \"R{}\" \
                 && Permission == \"read\")))",
                d % ROLES
            )
        })
        .collect();
    format!("(app_domain == \"WebCom\" && ({}))", grants.join(" || "))
}

/// A WebCom-shaped store: the policy table plus `n` membership
/// credentials, each binding one synthetic user key to a (domain,
/// role) pair.
fn store_text(n: usize) -> String {
    let mut s = format!(
        "KeyNote-Version: 2\nAuthorizer: POLICY\nLicensees: \"KWebCom\"\n\
         Conditions: {};\n",
        policy_conditions()
    );
    for i in 0..n {
        write!(
            s,
            "\nKeyNote-Version: 2\nAuthorizer: \"KWebCom\"\nLicensees: \"Ku{i}\"\n\
             Conditions: (app_domain == \"WebCom\" && (Domain == \"D{}\" && Role == \"R{}\"));\n",
            i % DOMAINS,
            i % ROLES
        )
        .unwrap();
    }
    s
}

/// The membership credential for user `i`, re-bound to role R{role} —
/// the single-assertion edit the incremental series applies.
fn variant(i: usize, role: usize) -> Assertion {
    let text = format!(
        "KeyNote-Version: 2\nAuthorizer: \"KWebCom\"\nLicensees: \"Ku{i}\"\n\
         Conditions: (app_domain == \"WebCom\" && (Domain == \"D{}\" && Role == \"R{role}\"));\n",
        i % DOMAINS
    );
    parse_assertions(&text).unwrap().remove(0)
}

fn options() -> AnalysisOptions {
    AnalysisOptions {
        webcom_key: "KWebCom".to_string(),
        ..Default::default()
    }
}

/// An RBAC policy mirroring the synthetic store: 8 grants, one
/// assignment per user.
fn rbac_policy(users: usize) -> RbacPolicy {
    let mut p = RbacPolicy::new();
    for d in 0..DOMAINS {
        p.grant(PermissionGrant::new(
            format!("D{d}"),
            format!("R{}", d % ROLES),
            "SalariesDB",
            "read",
        ));
    }
    for i in 0..users {
        p.assign(RoleAssignment::new(
            format!("u{i}"),
            format!("D{}", i % DOMAINS),
            format!("R{}", i % ROLES),
        ));
    }
    p
}

fn bench_analyze(c: &mut Criterion) {
    let smoke = smoke_mode();
    let sizes: &[usize] = if smoke { &[20] } else { &[100, 1_000, 10_000] };
    let mut group = c.benchmark_group("fig_analyze");
    group.measurement_time(Duration::from_millis(if smoke { 20 } else { 400 }));
    let dir = SymbolicDirectory::default();
    let mut speedup_at_largest = 0.0f64;

    for &n in sizes {
        let assertions = parse_assertions(&store_text(n)).unwrap();
        let opts = options();

        group.bench_function(format!("cold/n{n}"), |b| {
            b.iter(|| black_box(hetsec_analyze::analyze(black_box(&assertions), &opts)))
        });

        // Warm engine; each iteration modifies the middle credential
        // (alternating between two role bindings so the store really
        // changes every time) and re-analyzes.
        let mut engine = IncrementalAnalyzer::new(assertions.clone(), opts.clone());
        engine.analyze(&dir);
        let mid = n / 2 + 1; // credential index: assertion 0 is the policy
        let variants = [variant(n / 2, ROLES), variant(n / 2, n / 2 % ROLES)];
        let mut flip = 0usize;
        group.bench_function(format!("incremental/n{n}"), |b| {
            b.iter(|| {
                engine.apply(StoreEdit::Modify(mid, variants[flip & 1].clone()));
                flip += 1;
                black_box(engine.analyze(&dir))
            })
        });

        // The acceptance ratio, measured outside criterion so the two
        // sides see identical stores: one cold run vs one incremental
        // re-analysis after a single-assertion edit.
        if !smoke && n == *sizes.last().unwrap() {
            // Best-of-N on both sides to keep the ratio stable against
            // scheduler noise on a one-shot measurement.
            let cold = (0..3)
                .map(|_| {
                    let t = Instant::now();
                    black_box(hetsec_analyze::analyze(&assertions, &opts));
                    t.elapsed()
                })
                .min()
                .unwrap();
            let incremental = (0..5)
                .map(|_| {
                    engine.apply(StoreEdit::Modify(mid, variants[flip & 1].clone()));
                    flip += 1;
                    let t = Instant::now();
                    black_box(engine.analyze(&dir));
                    t.elapsed()
                })
                .min()
                .unwrap();
            speedup_at_largest =
                cold.as_secs_f64() / incremental.as_secs_f64().max(f64::EPSILON);
        }

        // Warm admission-gate review of a single role assignment, with
        // the escalation pass running against an RBAC policy of ~n
        // users. The gate serves the current policy's analysis from its
        // cache and evolves the candidate incrementally.
        let users = n.min(2_000); // escalation probes are the dominant cost
        let current = rbac_policy(users);
        let mut candidate = current.clone();
        let change = PolicyChange::Assign(RoleAssignment::new("u1", "D2", "R2"));
        candidate.assign(RoleAssignment::new("u1", "D2", "R2"));
        let gate = LintAdmissionGate::new();
        gate.review_delta(&current, &candidate, &change); // warm the cache
        group.bench_function(format!("gate/n{n}"), |b| {
            b.iter(|| black_box(gate.review_delta(black_box(&current), &candidate, &change)))
        });
    }
    group.finish();

    if !smoke {
        println!(
            "fig_analyze: incremental speedup at n={} is {speedup_at_largest:.1}x (bar: >= 10x)",
            sizes.last().unwrap()
        );
        assert!(
            speedup_at_largest >= 10.0,
            "incremental re-analysis must be >= 10x faster than cold at n={}, got {speedup_at_largest:.1}x",
            sizes.last().unwrap()
        );
    }
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
