//! fig8 — "Decentralised Middleware Architecture" (the KeyCom service).
//!
//! Measures the KeyCom path: validating a policy-update request's
//! credentials and applying the update to the COM+ catalogue, for direct
//! authority and for delegation chains of increasing depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_com::ComMiddleware;
use hetsec_rbac::RoleAssignment;
use hetsec_translate::maintenance::PolicyChange;
use hetsec_webcom::{KeyComService, PolicyUpdateRequest, TrustManager};
use std::hint::black_box;
use std::sync::Arc;

fn service() -> KeyComService {
    let tm = TrustManager::permissive();
    tm.add_policy(
        "Authorizer: POLICY\nLicensees: \"KAdmin\"\n\
         Conditions: app_domain==\"WebCom\" && oper==\"administer\" && Domain==\"CORP\";\n",
    )
    .unwrap();
    let com = Arc::new(ComMiddleware::new("CORP"));
    com.catalog().register_application("SalariesDB");
    KeyComService::new(Arc::new(tm), com)
}

/// A delegation chain KAdmin -> Kd1 -> ... -> Kd<depth>.
fn delegation_chain(depth: usize) -> Vec<hetsec_keynote::Assertion> {
    let mut out = Vec::new();
    let mut prev = "KAdmin".to_string();
    for i in 1..=depth {
        let next = format!("Kd{i}");
        out.push(
            hetsec_keynote::parser::parse_assertion(&format!(
                "Authorizer: \"{prev}\"\nLicensees: \"{next}\"\n\
                 Conditions: app_domain==\"WebCom\" && oper==\"administer\" && Domain==\"CORP\";\n"
            ))
            .unwrap(),
        );
        prev = next;
    }
    out
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_keycom");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    group.bench_function("direct_admin_update", |b| {
        let svc = service();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let req = PolicyUpdateRequest {
                requester: "KAdmin".to_string(),
                credentials: vec![],
                change: PolicyChange::Assign(RoleAssignment::new(
                    format!("user{i}"),
                    "CORP",
                    "Manager",
                )),
            };
            svc.handle(&req).unwrap();
            black_box(())
        })
    });

    for depth in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("delegated_update", depth),
            &depth,
            |b, &depth| {
                let svc = service();
                let chain = delegation_chain(depth);
                let requester = format!("Kd{depth}");
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    let req = PolicyUpdateRequest {
                        requester: requester.clone(),
                        credentials: chain.clone(),
                        change: PolicyChange::Assign(RoleAssignment::new(
                            format!("u{i}"),
                            "CORP",
                            "Manager",
                        )),
                    };
                    svc.handle(&req).unwrap();
                    black_box(())
                })
            },
        );
    }

    group.bench_function("refused_update", |b| {
        let svc = service();
        let req = PolicyUpdateRequest {
            requester: "Kmallory".to_string(),
            credentials: vec![],
            change: PolicyChange::Assign(RoleAssignment::new("m", "CORP", "Manager")),
        };
        b.iter(|| black_box(svc.handle(&req).unwrap_err()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
