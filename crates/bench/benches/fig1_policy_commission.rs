//! fig1 — "RBAC relations for a Salaries Database".
//!
//! The figure's artefact is the common RBAC policy implemented "in each
//! of these Middleware systems in a common manner". The bench measures
//! commissioning (import) throughput of the Figure 1 policy and scaled
//! synthetic policies into each middleware simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_com::ComMiddleware;
use hetsec_corba::CorbaMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::naming::{CorbaDomain, EjbDomain};
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_rbac::fixtures::synthetic_policy;
use hetsec_rbac::RbacPolicy;
use std::hint::black_box;

/// Renames domains (and permissions for COM) so a synthetic policy fits
/// one middleware instance.
fn shape_for(domain: &str, com_rights: bool, src: &RbacPolicy) -> RbacPolicy {
    let mut out = RbacPolicy::new();
    let rights = ["Launch", "Access", "RunAs"];
    for (i, g) in src.grants().enumerate() {
        let mut g = g.clone();
        g.domain = domain.into();
        if com_rights {
            g.permission = rights[i % 3].into();
        }
        out.grant(g);
    }
    for a in src.assignments() {
        let mut a = a.clone();
        a.domain = domain.into();
        out.assign(a);
    }
    out
}

fn bench_commission(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_policy_commission");
    group.sample_size(20);
    for scale in [1usize, 4, 16] {
        let policy = synthetic_policy(scale, 4, 3, 4);
        let rows = (policy.grant_count() + policy.assignment_count()) as u64;
        group.throughput(Throughput::Elements(rows));

        let ejb_domain = EjbDomain::new("h", "s", "Bench").to_string();
        let ejb_shaped = shape_for(&ejb_domain, false, &policy);
        group.bench_with_input(BenchmarkId::new("ejb", scale), &ejb_shaped, |b, p| {
            b.iter(|| {
                let m = EjbMiddleware::new(EjbDomain::new("h", "s", "Bench"));
                black_box(m.import_policy(p))
            });
        });

        let corba_domain = CorbaDomain::new("zeus", "bench").to_string();
        let corba_shaped = shape_for(&corba_domain, false, &policy);
        group.bench_with_input(BenchmarkId::new("corba", scale), &corba_shaped, |b, p| {
            b.iter(|| {
                let m = CorbaMiddleware::new(CorbaDomain::new("zeus", "bench"));
                black_box(m.import_policy(p))
            });
        });

        let com_shaped = shape_for("CORP", true, &policy);
        group.bench_with_input(BenchmarkId::new("com", scale), &com_shaped, |b, p| {
            b.iter(|| {
                let m = ComMiddleware::new("CORP");
                black_box(m.import_policy(p))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_commission);
criterion_main!(benches);
