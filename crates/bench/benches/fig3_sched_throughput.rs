//! fig3 — "WebCom-KeyNote Architecture".
//!
//! The figure shows the master/client fabric with trust-management
//! mediation on both sides. The bench measures end-to-end scheduling
//! throughput (master -> client -> reply) with 1..4 clients, and the
//! marginal cost of the TM mediation by comparing against a fabric whose
//! policies trust everything (mediation still runs, but the credential
//! set is trivial).
//!
//! The `transport_*` series compares the fabrics the same workload can
//! ride: in-process channels, loopback TCP (wire protocol + framing +
//! syscalls), and loopback TCP behind a fault injector adding link
//! latency (the retry/failover machinery's steady-state overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_graphs::Value;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_webcom::stack::TrustLayer;
use hetsec_webcom::{
    serve_tcp, spawn_client, ArithComponentExecutor, AuthzStack, Binding, ChannelTransport,
    ClientConfig, ClientEngine, ClientHandle, ClientTransport, FaultyTransport, TcpClientServer,
    TcpTransport, TrustManager, WebComMaster,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn tm(policy: &str) -> Arc<TrustManager> {
    let t = TrustManager::permissive();
    t.add_policy(policy).unwrap();
    Arc::new(t)
}

fn client_policy(clients: usize) -> String {
    let mut policy = String::new();
    for i in 0..clients {
        policy.push_str(&format!(
            "Authorizer: POLICY\nLicensees: \"Kc{i}\"\nConditions: app_domain==\"WebCom\";\n\n"
        ));
    }
    policy
}

fn bind_add(master: &WebComMaster) {
    master.bind(
        "add",
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: "Kworker".to_string(),
        },
    );
}

fn fabric(clients: usize, extra_credentials: usize) -> (WebComMaster, Vec<ClientHandle>) {
    let master = WebComMaster::new("Kmaster", tm(&client_policy(clients)));
    let mut handles = Vec::new();
    for i in 0..clients {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        // Load the user TM with irrelevant credentials to scale the
        // mediation cost realistically.
        for j in 0..extra_credentials {
            user_tm
                .add_credentials_text(&format!(
                    "Authorizer: \"Kstray{j}\"\nLicensees: \"Kother{j}\"\n"
                ))
                .unwrap();
        }
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let handle = spawn_client(ClientConfig {
            name: format!("c{i}"),
            key_text: format!("Kc{i}"),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&handle, vec!["Dom".into()]);
        handles.push(handle);
    }
    bind_add(&master);
    (master, handles)
}

/// A networked client engine with the same trust wiring as [`fabric`]'s
/// in-process clients, served on an ephemeral loopback port.
fn tcp_client(i: usize) -> TcpClientServer {
    let master_trust =
        tm("Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n");
    let user_tm =
        tm("Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n");
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(user_tm)));
    let engine = Arc::new(ClientEngine::new(ClientConfig {
        name: format!("c{i}"),
        key_text: format!("Kc{i}"),
        master_trust,
        stack: Arc::new(stack),
        executor: Arc::new(ArithComponentExecutor),
    }));
    serve_tcp(engine, vec!["Dom".into()], "127.0.0.1:0").expect("bind loopback")
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sched_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    for clients in [1usize, 2, 4] {
        let (master, handles) = fabric(clients, 0);
        group.bench_with_input(
            BenchmarkId::new("schedule_roundtrip", clients),
            &clients,
            |b, _| {
                b.iter(|| {
                    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                    assert!(out.is_ok());
                    black_box(out)
                })
            },
        );
        for h in handles {
            h.shutdown();
        }
    }
    // Mediation cost: credential store size 0 vs 64 vs 256.
    for creds in [0usize, 64, 256] {
        let (master, handles) = fabric(1, creds);
        group.bench_with_input(
            BenchmarkId::new("mediation_credentials", creds),
            &creds,
            |b, _| {
                b.iter(|| {
                    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                    assert!(out.is_ok());
                    black_box(out)
                })
            },
        );
        for h in handles {
            h.shutdown();
        }
    }
    group.finish();
}

/// Same workload, three fabrics: in-process channels, loopback TCP, and
/// loopback TCP where the first client's link drops every request so the
/// master fails over to the healthy one — the price of the recovery path.
fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_transport");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    {
        let (master, handles) = fabric(1, 0);
        group.bench_function("inprocess", |b| {
            b.iter(|| {
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        for h in handles {
            h.shutdown();
        }
    }

    {
        let master = WebComMaster::new("Kmaster", tm(&client_policy(1)));
        let server = tcp_client(0);
        master.register_tcp(server.local_addr()).expect("identify");
        bind_add(&master);
        group.bench_function("tcp", |b| {
            b.iter(|| {
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        server.stop();
    }

    {
        let master = WebComMaster::new("Kmaster", tm(&client_policy(2)))
            .with_op_timeout(Duration::from_secs(2));
        let s0 = tcp_client(0);
        let s1 = tcp_client(1);
        let faulty = Arc::new(FaultyTransport::new(TcpTransport::new(s0.local_addr())));
        master.register_transport("c0", "Kc0", faulty.clone(), vec!["Dom".into()]);
        master.register_tcp(s1.local_addr()).expect("identify");
        bind_add(&master);
        group.bench_function("tcp_faulty_failover", |b| {
            b.iter(|| {
                // Every request finds c0's link dropped and must fail
                // over to c1 — one aborted attempt plus one real TCP
                // round-trip per element.
                faulty.drop_next(1);
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        s0.stop();
        s1.stop();
    }

    group.finish();
}

/// A two-client channel fabric where each link can misbehave: the
/// churn series measures the steady-state cost of a bad client in the
/// fleet. Health-aware dispatch routes around it (breaker + ranking),
/// so every series should converge towards the healthy single-client
/// round-trip rather than paying the fault once per operation.
fn churn_fabric() -> (WebComMaster, Vec<ClientHandle>, Vec<Arc<FaultyTransport>>) {
    let master = WebComMaster::new("Kmaster", tm(&client_policy(2)))
        .with_op_timeout(Duration::from_millis(5))
        // Roomy whole-op budget: the first ops pay the slow client's
        // timeouts *and* still reach the healthy one.
        .with_schedule_deadline(Duration::from_millis(500));
    let mut handles = Vec::new();
    let mut links = Vec::new();
    for i in 0..2 {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let handle = spawn_client(ClientConfig {
            name: format!("c{i}"),
            key_text: format!("Kc{i}"),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        let link = Arc::new(FaultyTransport::new(ChannelTransport::new(handle.sender())));
        master.register_transport(
            format!("c{i}"),
            format!("Kc{i}"),
            Arc::clone(&link) as Arc<dyn ClientTransport>,
            vec!["Dom".into()],
        );
        handles.push(handle);
        links.push(link);
    }
    bind_add(&master);
    (master, handles, links)
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_churn");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    // c0's link resets every request aimed at it; after the breaker
    // opens the fleet rides c1, with a cheap re-arm per element.
    {
        let (master, handles, links) = churn_fabric();
        group.bench_function("flapping_client", |b| {
            b.iter(|| {
                links[0].drop_next(1);
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        for h in handles {
            h.shutdown();
        }
    }

    // c0 answers slower than the op deadline: the first op pays the
    // timeouts, then ranking + breaker keep the fleet on c1 (modulo the
    // occasional half-open probe).
    {
        let (master, handles, links) = churn_fabric();
        links[0].set_delay(Duration::from_millis(50));
        group.bench_function("slow_client", |b| {
            b.iter(|| {
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        for h in handles {
            h.shutdown();
        }
    }

    // c0 is dead before the run starts: the cost of a corpse in the
    // registration list should be ~zero per op.
    {
        let (master, handles, links) = churn_fabric();
        links[0].kill();
        group.bench_function("killed_client", |b| {
            b.iter(|| {
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        for h in handles {
            h.shutdown();
        }
    }

    group.finish();
}

criterion_group!(benches, bench_fig3, bench_transport, bench_churn);
criterion_main!(benches);
