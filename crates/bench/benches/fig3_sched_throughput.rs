//! fig3 — "WebCom-KeyNote Architecture".
//!
//! The figure shows the master/client fabric with trust-management
//! mediation on both sides. The bench measures end-to-end scheduling
//! throughput (master -> client -> reply) with 1..4 clients, and the
//! marginal cost of the TM mediation by comparing against a fabric whose
//! policies trust everything (mediation still runs, but the credential
//! set is trivial).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_graphs::Value;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_webcom::{
    spawn_client, ArithComponentExecutor, AuthzStack, Binding, ClientConfig, ClientHandle,
    TrustLayer, TrustManager, WebComMaster,
};
use std::hint::black_box;
use std::sync::Arc;

fn tm(policy: &str) -> Arc<TrustManager> {
    let t = TrustManager::permissive();
    t.add_policy(policy).unwrap();
    Arc::new(t)
}

fn fabric(clients: usize, extra_credentials: usize) -> (WebComMaster, Vec<ClientHandle>) {
    let mut client_policy = String::new();
    for i in 0..clients {
        client_policy.push_str(&format!(
            "Authorizer: POLICY\nLicensees: \"Kc{i}\"\nConditions: app_domain==\"WebCom\";\n\n"
        ));
    }
    let master = WebComMaster::new("Kmaster", tm(&client_policy));
    let mut handles = Vec::new();
    for i in 0..clients {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        // Load the user TM with irrelevant credentials to scale the
        // mediation cost realistically.
        for j in 0..extra_credentials {
            user_tm
                .add_credentials_text(&format!(
                    "Authorizer: \"Kstray{j}\"\nLicensees: \"Kother{j}\"\n"
                ))
                .unwrap();
        }
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let handle = spawn_client(ClientConfig {
            name: format!("c{i}"),
            key_text: format!("Kc{i}"),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&handle, vec!["Dom".into()]);
        handles.push(handle);
    }
    master.bind(
        "add",
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: "Kworker".to_string(),
        },
    );
    (master, handles)
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sched_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    for clients in [1usize, 2, 4] {
        let (master, handles) = fabric(clients, 0);
        group.bench_with_input(
            BenchmarkId::new("schedule_roundtrip", clients),
            &clients,
            |b, _| {
                b.iter(|| {
                    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                    assert!(out.is_ok());
                    black_box(out)
                })
            },
        );
        for h in handles {
            h.shutdown();
        }
    }
    // Mediation cost: credential store size 0 vs 64 vs 256.
    for creds in [0usize, 64, 256] {
        let (master, handles) = fabric(1, creds);
        group.bench_with_input(
            BenchmarkId::new("mediation_credentials", creds),
            &creds,
            |b, _| {
                b.iter(|| {
                    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                    assert!(out.is_ok());
                    black_box(out)
                })
            },
        );
        for h in handles {
            h.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
