//! fig3 — "WebCom-KeyNote Architecture".
//!
//! The figure shows the master/client fabric with trust-management
//! mediation on both sides. The bench measures end-to-end scheduling
//! throughput (master -> client -> reply) with 1..4 clients, and the
//! marginal cost of the TM mediation by comparing against a fabric whose
//! policies trust everything (mediation still runs, but the credential
//! set is trivial).
//!
//! The `transport_*` series compares the fabrics the same workload can
//! ride: in-process channels, loopback TCP (wire protocol + framing +
//! syscalls), and loopback TCP behind a fault injector adding link
//! latency (the retry/failover machinery's steady-state overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_graphs::Value;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_webcom::stack::TrustLayer;
use hetsec_webcom::{
    serve_tcp, spawn_client, ArithComponentExecutor, AuthzStack, Binding, ClientConfig,
    ClientEngine, ClientHandle, FaultyTransport, TcpClientServer, TcpTransport, TrustManager,
    WebComMaster,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn tm(policy: &str) -> Arc<TrustManager> {
    let t = TrustManager::permissive();
    t.add_policy(policy).unwrap();
    Arc::new(t)
}

fn client_policy(clients: usize) -> String {
    let mut policy = String::new();
    for i in 0..clients {
        policy.push_str(&format!(
            "Authorizer: POLICY\nLicensees: \"Kc{i}\"\nConditions: app_domain==\"WebCom\";\n\n"
        ));
    }
    policy
}

fn bind_add(master: &WebComMaster) {
    master.bind(
        "add",
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: "Kworker".to_string(),
        },
    );
}

fn fabric(clients: usize, extra_credentials: usize) -> (WebComMaster, Vec<ClientHandle>) {
    let master = WebComMaster::new("Kmaster", tm(&client_policy(clients)));
    let mut handles = Vec::new();
    for i in 0..clients {
        let master_trust = tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        );
        let user_tm = tm(
            "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
        );
        // Load the user TM with irrelevant credentials to scale the
        // mediation cost realistically.
        for j in 0..extra_credentials {
            user_tm
                .add_credentials_text(&format!(
                    "Authorizer: \"Kstray{j}\"\nLicensees: \"Kother{j}\"\n"
                ))
                .unwrap();
        }
        let mut stack = AuthzStack::new();
        stack.push(Arc::new(TrustLayer::new(user_tm)));
        let handle = spawn_client(ClientConfig {
            name: format!("c{i}"),
            key_text: format!("Kc{i}"),
            master_trust,
            stack: Arc::new(stack),
            executor: Arc::new(ArithComponentExecutor),
        });
        master.register_client(&handle, vec!["Dom".into()]);
        handles.push(handle);
    }
    bind_add(&master);
    (master, handles)
}

/// A networked client engine with the same trust wiring as [`fabric`]'s
/// in-process clients, served on an ephemeral loopback port.
fn tcp_client(i: usize) -> TcpClientServer {
    let master_trust =
        tm("Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n");
    let user_tm =
        tm("Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n");
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(user_tm)));
    let engine = Arc::new(ClientEngine::new(ClientConfig {
        name: format!("c{i}"),
        key_text: format!("Kc{i}"),
        master_trust,
        stack: Arc::new(stack),
        executor: Arc::new(ArithComponentExecutor),
    }));
    serve_tcp(engine, vec!["Dom".into()], "127.0.0.1:0").expect("bind loopback")
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sched_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    for clients in [1usize, 2, 4] {
        let (master, handles) = fabric(clients, 0);
        group.bench_with_input(
            BenchmarkId::new("schedule_roundtrip", clients),
            &clients,
            |b, _| {
                b.iter(|| {
                    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                    assert!(out.is_ok());
                    black_box(out)
                })
            },
        );
        for h in handles {
            h.shutdown();
        }
    }
    // Mediation cost: credential store size 0 vs 64 vs 256.
    for creds in [0usize, 64, 256] {
        let (master, handles) = fabric(1, creds);
        group.bench_with_input(
            BenchmarkId::new("mediation_credentials", creds),
            &creds,
            |b, _| {
                b.iter(|| {
                    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                    assert!(out.is_ok());
                    black_box(out)
                })
            },
        );
        for h in handles {
            h.shutdown();
        }
    }
    group.finish();
}

/// Same workload, three fabrics: in-process channels, loopback TCP, and
/// loopback TCP where the first client's link drops every request so the
/// master fails over to the healthy one — the price of the recovery path.
fn bench_transport(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_transport");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));

    {
        let (master, handles) = fabric(1, 0);
        group.bench_function("inprocess", |b| {
            b.iter(|| {
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        for h in handles {
            h.shutdown();
        }
    }

    {
        let master = WebComMaster::new("Kmaster", tm(&client_policy(1)));
        let server = tcp_client(0);
        master.register_tcp(server.local_addr()).expect("identify");
        bind_add(&master);
        group.bench_function("tcp", |b| {
            b.iter(|| {
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        server.stop();
    }

    {
        let master = WebComMaster::new("Kmaster", tm(&client_policy(2)))
            .with_op_timeout(Duration::from_secs(2));
        let s0 = tcp_client(0);
        let s1 = tcp_client(1);
        let faulty = Arc::new(FaultyTransport::new(TcpTransport::new(s0.local_addr())));
        master.register_transport("c0", "Kc0", faulty.clone(), vec!["Dom".into()]);
        master.register_tcp(s1.local_addr()).expect("identify");
        bind_add(&master);
        group.bench_function("tcp_faulty_failover", |b| {
            b.iter(|| {
                // Every request finds c0's link dropped and must fail
                // over to c1 — one aborted attempt plus one real TCP
                // round-trip per element.
                faulty.drop_next(1);
                let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(2)]);
                assert!(out.is_ok());
                black_box(out)
            })
        });
        s0.stop();
        s1.stop();
    }

    group.finish();
}

criterion_group!(benches, bench_fig3, bench_transport);
criterion_main!(benches);
