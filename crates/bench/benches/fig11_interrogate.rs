//! fig11 — "The WebCom Integrated Development Environment".
//!
//! Measures the IDE's interrogation pipeline: extracting the component
//! palette from the middlewares, computing authorised (domain, role,
//! user) combinations per component, and resolving partial execution
//! specifications, as the deployment grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::naming::EjbDomain;
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_rbac::{PermissionGrant, RoleAssignment};
use hetsec_webcom::{interrogate, resolve_spec, PartialSpec};
use std::hint::black_box;

fn server(beans: usize, methods: usize, users: usize) -> (EjbMiddleware, String) {
    let d = EjbDomain::new("h", "s", "Palette");
    let m = EjbMiddleware::new(d.clone());
    let ds = d.to_string();
    for b in 0..beans {
        for me in 0..methods {
            m.grant(&PermissionGrant::new(
                ds.as_str(),
                format!("Role{}", me % 3),
                format!("Bean{b}"),
                format!("method{me}"),
            ))
            .unwrap();
        }
    }
    for u in 0..users {
        m.assign(&RoleAssignment::new(
            format!("user{u}"),
            ds.as_str(),
            format!("Role{}", u % 3),
        ))
        .unwrap();
    }
    (m, ds)
}

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_interrogate");
    group.sample_size(15);
    for (beans, methods, users) in [(4usize, 3usize, 6usize), (16, 6, 24), (64, 6, 96)] {
        let (m, ds) = server(beans, methods, users);
        let components = (beans * methods) as u64;
        group.throughput(Throughput::Elements(components));
        group.bench_with_input(
            BenchmarkId::new("build_palette", components),
            &components,
            |b, _| b.iter(|| black_box(interrogate(&[&m]))),
        );
        let palette = interrogate(&[&m]);
        let spec = PartialSpec::any().in_domain(ds.as_str()).as_role("Role1");
        group.bench_with_input(
            BenchmarkId::new("resolve_all_specs", components),
            &components,
            |b, _| {
                b.iter(|| {
                    let mut resolved = 0usize;
                    for entry in &palette.entries {
                        if resolve_spec(entry, &spec).is_some() {
                            resolved += 1;
                        }
                    }
                    black_box(resolved)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
