//! abl3 — ablation: the two trust-management back-ends.
//!
//! The paper's footnote 1 notes Secure WebCom supports both KeyNote and
//! SPKI/SDSI. This bench compares the cost of (a) encoding an RBAC
//! policy and (b) answering an authorisation query under each back-end
//! as the policy grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_rbac::fixtures::synthetic_policy;
use hetsec_spki::encode_rbac;
use hetsec_translate::{encode_policy, SymbolicDirectory, APP_DOMAIN};
use std::hint::black_box;

fn bench_abl3(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl3_spki_vs_keynote");
    group.sample_size(20);
    let dir = SymbolicDirectory::default();
    for scale in [1usize, 4, 16] {
        let policy = synthetic_policy(scale, 4, 3, 4);
        let rows = (policy.grant_count() + policy.assignment_count()) as u64;
        group.throughput(Throughput::Elements(rows));

        group.bench_with_input(BenchmarkId::new("encode_keynote", rows), &policy, |b, p| {
            b.iter(|| black_box(encode_policy(p, "KWebCom", &dir)))
        });
        group.bench_with_input(BenchmarkId::new("encode_spki", rows), &policy, |b, p| {
            b.iter(|| black_box(encode_rbac(p, "Kwebcom")))
        });

        // Query cost: the same positive decision under both back-ends.
        let mut kn = KeyNoteSession::permissive();
        for a in encode_policy(&policy, "KWebCom", &dir) {
            kn.add_policy_assertion(a).unwrap();
        }
        let spki = encode_rbac(&policy, "Kwebcom");
        let attrs: hetsec_keynote::ActionAttributes = [
            ("app_domain", APP_DOMAIN),
            ("Domain", "Dom0"),
            ("Role", "Role0"),
            ("ObjectType", "Obj0"),
            ("Permission", "perm0"),
        ]
        .into_iter()
        .collect();
        group.bench_with_input(BenchmarkId::new("query_keynote", rows), &rows, |b, _| {
            b.iter(|| {
                let r = kn.evaluate(&ActionQuery::principals(&["Kuser-0-0-0"]).attributes(&attrs));
                assert!(r.is_authorized());
                black_box(r)
            })
        });
        group.bench_with_input(BenchmarkId::new("query_spki", rows), &rows, |b, _| {
            b.iter(|| {
                let ok = spki.check(
                    &"user-0-0-0".into(),
                    &"Dom0".into(),
                    &"Role0".into(),
                    "Obj0",
                    &"perm0".into(),
                );
                assert!(ok);
                black_box(ok)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_abl3);
criterion_main!(benches);
