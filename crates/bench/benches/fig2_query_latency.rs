//! fig2 — "Policy Credential allowing Manager Bob to read from and
//! write to the database".
//!
//! Regenerates the Figure 2 policy credential and measures the KeyNote
//! path it exercises: parsing the credential text and answering the
//! Example 1 query (Bob requests read/write on SalariesDB), plus the
//! cached-vs-uncached series for the trust manager's decision cache —
//! repeated identical queries should be served from the cache, and an
//! epoch bump (revocation/reinstatement) must invalidate it.

use criterion::{criterion_group, criterion_main, Criterion};
use hetsec_crypto::{rsa, KeyPair, PublicKey, Signature};
use hetsec_keynote::ast::{Assertion, LicenseeExpr, Principal};
use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::print::signable_text;
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_keynote::signing::sign_assertion;
use hetsec_keynote::{ActionAttributes, VerifyCache};
use hetsec_webcom::{AuthzRequest, StampIssuer, StampVerifier, TrustManager};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("BENCH_SMOKE").is_some()
}

const FIG2: &str = "Authorizer: POLICY\n\
                    licensees: \"Kbob\"\n\
                    Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");\n";

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_query_latency");

    group.bench_function("parse_credential", |b| {
        b.iter(|| black_box(parse_assertions(black_box(FIG2)).unwrap()))
    });

    group.bench_function("session_setup", |b| {
        b.iter(|| {
            let mut s = KeyNoteSession::permissive();
            s.add_policy(black_box(FIG2)).unwrap();
            black_box(s)
        })
    });

    let mut session = KeyNoteSession::permissive();
    session.add_policy(FIG2).unwrap();
    let read_attrs: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "read")]
        .into_iter()
        .collect();
    let denied_attrs: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "drop")]
        .into_iter()
        .collect();

    group.bench_function("query_authorized", |b| {
        b.iter(|| black_box(session.evaluate(&ActionQuery::principals(&["Kbob"]).attributes(&read_attrs))))
    });
    group.bench_function("query_denied", |b| {
        b.iter(|| black_box(session.evaluate(&ActionQuery::principals(&["Kbob"]).attributes(&denied_attrs))))
    });
    group.bench_function("query_unknown_key", |b| {
        b.iter(|| black_box(session.evaluate(&ActionQuery::principals(&["Kmallory"]).attributes(&read_attrs))))
    });

    // Cached vs uncached decision path. The uncached series forces a
    // full KeyNote evaluation per query by bumping the session epoch
    // every iteration (revoking an unrelated key invalidates the cache
    // without changing the answer); the cached series repeats an
    // identical query and is served from the decision cache after the
    // first evaluation. A larger store (Figure 2's policy plus a crowd
    // of unrelated delegations) makes the gap representative.
    let tm = TrustManager::permissive();
    tm.add_policy(FIG2).unwrap();
    for i in 0..200 {
        tm.add_credentials_text(&format!(
            "Authorizer: \"Kdept{i}\"\nLicensees: \"Kmember{i}\"\n\
             Conditions: app_domain==\"SalariesDB\";\n"
        ))
        .unwrap();
    }

    group.bench_function("decision_uncached", |b| {
        b.iter(|| {
            // Epoch bump -> the cached entry is stale -> full evaluation.
            tm.reinstate_key("Kunrelated");
            tm.revoke_key("Kunrelated");
            black_box(tm.decide(&AuthzRequest::principal("Kbob").attributes(read_attrs.clone())))
        })
    });
    group.bench_function("decision_cached", |b| {
        b.iter(|| black_box(tm.decide(&AuthzRequest::principal("Kbob").attributes(read_attrs.clone()))))
    });

    // Batch-first decision path: one `decide_batch` call over N
    // requests that borrow the same attribute set, against the same
    // warm cache the cached series hits. `iter_custom` divides by the
    // batch size so the JSON values are per-decision nanoseconds,
    // directly comparable to `decision_cached` — the acceptance bar is
    // >= 3x per-decision throughput at batch=256.
    for &batch in &[1usize, 16, 256] {
        let requests: Vec<AuthzRequest> = (0..batch)
            .map(|_| AuthzRequest::principal("Kbob").attributes_ref(&read_attrs))
            .collect();
        group.bench_function(format!("decision_batched_b{batch}"), |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(tm.decide_batch(black_box(&requests)));
                }
                start.elapsed() / batch as u32
            })
        });
    }

    // Cold-path anatomy over the same 201-assertion store, without the
    // decision cache in the way: the AST interpreter (the pre-overhaul
    // cold path, kept as the reference implementation) against the
    // compiled evaluator that `query_action` now runs.
    let mut big = KeyNoteSession::permissive();
    big.add_policy(FIG2).unwrap();
    for i in 0..200 {
        big.add_credentials(&format!(
            "Authorizer: \"Kdept{i}\"\nLicensees: \"Kmember{i}\"\n\
             Conditions: app_domain==\"SalariesDB\";\n"
        ))
        .unwrap();
    }
    group.bench_function("cold_ast_interpreted", |b| {
        b.iter(|| black_box(big.evaluate(&ActionQuery::principals(&["Kbob"]).attributes(&read_attrs).interpreted())))
    });
    group.bench_function("cold_compiled", |b| {
        b.iter(|| black_box(big.evaluate(&ActionQuery::principals(&["Kbob"]).attributes(&read_attrs))))
    });

    // Request-presented signed credential: the interpreted path pays an
    // RSA verification per query; the compiled path serves the verdict
    // from the verified-credential memo after the first query.
    let kp = KeyPair::from_label("fig2-delegator");
    let key_text = kp.public().to_text();
    let mut strict = KeyNoteSession::new();
    strict
        .add_policy(&format!(
            "Authorizer: POLICY\nLicensees: \"{key_text}\"\n\
             Conditions: app_domain==\"SalariesDB\";\n"
        ))
        .unwrap();
    let mut signed = Assertion::new(
        Principal::key(&key_text),
        LicenseeExpr::Principal("Kworker".to_string()),
    );
    sign_assertion(&mut signed, &kp).unwrap();
    let extra = std::slice::from_ref(&signed);
    group.bench_function("signed_extra_verify_each", |b| {
        b.iter(|| black_box(strict.evaluate(&ActionQuery::principals(&["Kworker"]).attributes(&read_attrs).extra(extra).interpreted())))
    });
    group.bench_function("signed_extra_memoized", |b| {
        b.iter(|| black_box(strict.evaluate(&ActionQuery::principals(&["Kworker"]).attributes(&read_attrs).extra(extra))))
    });

    // Verdict-stamp amortisation (PR 10): what a *fleet-sized batch* of
    // request credentials costs a node, per credential. Each credential
    // is signed by a distinct delegator so the cold path cannot share
    // parsed keys or Montgomery contexts between them — exactly the
    // situation on a node a forwarded request first reaches.
    //
    // * `stamp_cold_verify` — no stamps: the verify-cache miss a cold
    //   node pays per credential (fingerprint the credential, parse the
    //   authorizer key and signature, rebuild the signable text, verify
    //   with a fresh context — `rsa::verify_uncached`, the honest model
    //   of a node that has never seen any of these keys);
    // * `stamp_represent` — a request re-presenting stamped credentials
    //   to a node that has admitted the fleet's stamps: `admit` skips
    //   every already-known verdict by cache lookup, and the
    //   per-credential vetting answers from the cache — zero RSA;
    // * `stamp_memoized` — the PR 3 process-local warm hit, for
    //   reference: steady-state stamped requests cost the same as if
    //   the node had verified everything itself.
    //
    // The one-off admission (one cached-context stamp check per
    // credential, all against the single fleet key) is printed below,
    // outside the series: it is paid once per node, not per request.
    const STAMP_BATCH: usize = 8;
    let stamped_creds: Vec<Assertion> = (0..STAMP_BATCH)
        .map(|i| {
            let kp = KeyPair::from_label(&format!("fig2-stamp-delegator-{i}"));
            let mut a = Assertion::new(
                Principal::key(kp.public().to_text()),
                LicenseeExpr::Principal(format!("Kworker{i}")),
            );
            sign_assertion(&mut a, &kp).unwrap();
            a
        })
        .collect();
    let issuer = StampIssuer::new(KeyPair::from_label("fig2-stamp-master"));
    let stamps = issuer.stamps_for(0, &stamped_creds);

    let cold_batch = |creds: &[Assertion]| {
        for cred in creds {
            black_box(hetsec_keynote::credential_fingerprint(cred).unwrap());
            let key: PublicKey = cred.authorizer.key_text().unwrap().parse().unwrap();
            let sig: Signature = cred.signature.as_deref().unwrap().parse().unwrap();
            let payload = signable_text(cred);
            assert!(black_box(rsa::verify_uncached(
                key.raw(),
                payload.as_bytes(),
                sig.raw()
            )));
        }
    };
    // A node inside the fleet, after its one-off stamp admission.
    let warm_cache = Arc::new(VerifyCache::new());
    let warm_verifier = StampVerifier::new(Arc::clone(&warm_cache)).trust_issuer(issuer.key_text());
    let admission = {
        let t = Instant::now();
        let delta = warm_verifier.admit(&stamps);
        let elapsed = t.elapsed();
        assert_eq!(delta.admitted, STAMP_BATCH as u64);
        elapsed
    };
    let stamped_batch = |creds: &[Assertion]| {
        warm_verifier.admit(black_box(&stamps));
        for cred in creds {
            black_box(warm_cache.verify(black_box(cred)));
        }
    };

    group.bench_function("stamp_cold_verify", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                cold_batch(&stamped_creds);
            }
            start.elapsed() / STAMP_BATCH as u32
        })
    });
    group.bench_function("stamp_represent", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                stamped_batch(&stamped_creds);
            }
            start.elapsed() / STAMP_BATCH as u32
        })
    });
    let memo_cache = VerifyCache::new();
    for cred in &stamped_creds {
        memo_cache.verify(cred);
    }
    group.bench_function("stamp_memoized", |b| {
        b.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                for cred in &stamped_creds {
                    black_box(memo_cache.verify(black_box(cred)));
                }
            }
            start.elapsed() / STAMP_BATCH as u32
        })
    });
    group.finish();

    println!(
        "fig2 verdict stamps: one-off admission of {STAMP_BATCH} stamps took {admission:?} \
         (one cached-context check each)"
    );

    // The stamp acceptance bar, measured outside criterion on identical
    // batches: stamped re-presentation must be at least 5x cheaper than
    // cold per-credential verification. Best-of-N on both sides to
    // shield the one-shot ratio from scheduler noise.
    if !smoke_mode() {
        let cold = (0..7)
            .map(|_| {
                let t = Instant::now();
                cold_batch(&stamped_creds);
                t.elapsed()
            })
            .min()
            .unwrap();
        let stamped = (0..7)
            .map(|_| {
                let t = Instant::now();
                stamped_batch(&stamped_creds);
                t.elapsed()
            })
            .min()
            .unwrap();
        let ratio = cold.as_secs_f64() / stamped.as_secs_f64().max(f64::EPSILON);
        println!(
            "fig2 verdict stamps: re-presentation of {STAMP_BATCH} stamped credentials is \
             {ratio:.1}x cheaper than cold verification (bar: >= 5x)"
        );
        assert!(
            ratio >= 5.0,
            "stamped re-presentation must be >= 5x cheaper than cold RSA verification, \
             got {ratio:.1}x"
        );
    }

    // Report the measured ratio: the acceptance bar for this series is
    // >= 5x on repeated identical queries.
    let stats = tm.cache_stats();
    println!(
        "fig2 decision cache: {} hits / {} misses / {} invalidations",
        stats.hits, stats.misses, stats.invalidations
    );
    let vstats = strict.verify_cache_stats();
    println!(
        "fig2 verify memo: {} hits / {} misses / {} entries",
        vstats.hits, vstats.misses, vstats.entries
    );
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
