//! fig2 — "Policy Credential allowing Manager Bob to read from and
//! write to the database".
//!
//! Regenerates the Figure 2 policy credential and measures the KeyNote
//! path it exercises: parsing the credential text and answering the
//! Example 1 query (Bob requests read/write on SalariesDB).

use criterion::{criterion_group, criterion_main, Criterion};
use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::session::KeyNoteSession;
use hetsec_keynote::ActionAttributes;
use std::hint::black_box;

const FIG2: &str = "Authorizer: POLICY\n\
                    licensees: \"Kbob\"\n\
                    Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");\n";

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_query_latency");

    group.bench_function("parse_credential", |b| {
        b.iter(|| black_box(parse_assertions(black_box(FIG2)).unwrap()))
    });

    group.bench_function("session_setup", |b| {
        b.iter(|| {
            let mut s = KeyNoteSession::permissive();
            s.add_policy(black_box(FIG2)).unwrap();
            black_box(s)
        })
    });

    let mut session = KeyNoteSession::permissive();
    session.add_policy(FIG2).unwrap();
    let read_attrs: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "read")]
        .into_iter()
        .collect();
    let denied_attrs: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "drop")]
        .into_iter()
        .collect();

    group.bench_function("query_authorized", |b| {
        b.iter(|| black_box(session.query_action(&["Kbob"], &read_attrs)))
    });
    group.bench_function("query_denied", |b| {
        b.iter(|| black_box(session.query_action(&["Kbob"], &denied_attrs)))
    });
    group.bench_function("query_unknown_key", |b| {
        b.iter(|| black_box(session.query_action(&["Kmallory"], &read_attrs)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
