//! fig7 — "Claire delegates her Role membership to Fred".
//!
//! Compares the two deployment styles the paper contrasts (§4.5): a
//! **centralised** policy (every user listed in one Figure 5/6 bundle)
//! against a **decentralised** one (a small core policy plus per-user
//! delegation chains), measuring query latency and update cost (adding
//! one user).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_keynote::ActionAttributes;
use hetsec_rbac::{DomainRole, PermissionGrant, RbacPolicy, RoleAssignment};
use hetsec_translate::{delegate_role, encode_policy, SymbolicDirectory};
use std::hint::black_box;

fn attrs() -> ActionAttributes {
    [
        ("app_domain", "WebCom"),
        ("Domain", "Sales"),
        ("Role", "Manager"),
        ("ObjectType", "SalariesDB"),
        ("Permission", "read"),
    ]
    .into_iter()
    .collect()
}

/// Centralised: all `users` in the UserRole table, one credential each
/// from the WebCom key.
fn centralised(users: usize) -> KeyNoteSession {
    let dir = SymbolicDirectory::default();
    let mut policy = RbacPolicy::new();
    policy.grant(PermissionGrant::new("Sales", "Manager", "SalariesDB", "read"));
    for i in 0..users {
        policy.assign(RoleAssignment::new(format!("user{i}"), "Sales", "Manager"));
    }
    let mut s = KeyNoteSession::permissive();
    for a in encode_policy(&policy, "KWebCom", &dir) {
        s.add_policy_assertion(a).unwrap();
    }
    s
}

/// Decentralised: one root member (user0) in the table; every other user
/// holds the role through a delegation credential from the previous one.
fn decentralised(users: usize) -> KeyNoteSession {
    let dir = SymbolicDirectory::default();
    let mut policy = RbacPolicy::new();
    policy.grant(PermissionGrant::new("Sales", "Manager", "SalariesDB", "read"));
    policy.assign(RoleAssignment::new("user0", "Sales", "Manager"));
    let mut s = KeyNoteSession::permissive();
    for a in encode_policy(&policy, "KWebCom", &dir) {
        s.add_policy_assertion(a).unwrap();
    }
    let role = DomainRole::new("Sales", "Manager");
    for i in 1..users {
        let cred = delegate_role(
            &format!("user{}", i - 1).as_str().into(),
            &format!("user{i}").as_str().into(),
            &role,
            &dir,
        );
        s.add_credential_parsed(cred).unwrap();
    }
    s
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_decentralised");
    group.sample_size(20);
    let a = attrs();
    for users in [8usize, 32, 128] {
        let central = centralised(users);
        let decentral = decentralised(users);
        let last = format!("Kuser{}", users - 1);
        group.bench_with_input(
            BenchmarkId::new("centralised_query", users),
            &users,
            |b, _| {
                b.iter(|| {
                    let r = central.evaluate(&ActionQuery::principals(&[last.as_str()]).attributes(&a));
                    assert!(r.is_authorized());
                    black_box(r)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decentralised_query", users),
            &users,
            |b, _| {
                b.iter(|| {
                    let r = decentral.evaluate(&ActionQuery::principals(&[last.as_str()]).attributes(&a));
                    assert!(r.is_authorized());
                    black_box(r)
                })
            },
        );
        // Update cost: adding one more user.
        group.bench_with_input(
            BenchmarkId::new("centralised_add_user", users),
            &users,
            |b, _| b.iter(|| black_box(centralised(users + 1))),
        );
        let dir = SymbolicDirectory::default();
        let role = DomainRole::new("Sales", "Manager");
        group.bench_with_input(
            BenchmarkId::new("decentralised_add_user", users),
            &users,
            |b, _| {
                b.iter(|| {
                    // One locally-signed credential, no central rebuild.
                    black_box(delegate_role(
                        &format!("user{}", users - 1).as_str().into(),
                        &"newcomer".into(),
                        &role,
                        &dir,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
