//! fig4 — "Credential allowing Clerk Alice to write to the database".
//!
//! Figure 4 adds one delegation hop (POLICY -> Kbob -> Kalice). The
//! bench generalises the chain to depth 1..64 and measures compliance-
//! checking latency as the delegation graph deepens — the cost model of
//! decentralised authorisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_keynote::ActionAttributes;
use std::hint::black_box;

/// Builds a delegation chain of `depth` credentials under one policy.
fn chain_session(depth: usize) -> KeyNoteSession {
    let mut text = String::from(
        "Authorizer: POLICY\nLicensees: \"K0\"\n\
         Conditions: app_domain==\"SalariesDB\" && oper==\"write\";\n\n",
    );
    for i in 0..depth {
        text.push_str(&format!(
            "Authorizer: \"K{i}\"\nLicensees: \"K{}\"\n\
             Conditions: app_domain==\"SalariesDB\" && oper==\"write\";\n\n",
            i + 1
        ));
    }
    let mut s = KeyNoteSession::permissive();
    for a in parse_assertions(&text).unwrap() {
        s.add_policy_assertion(a).unwrap();
    }
    s
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_delegation");
    let attrs: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "write")]
        .into_iter()
        .collect();
    for depth in [1usize, 4, 16, 64] {
        let session = chain_session(depth);
        let leaf = format!("K{depth}");
        group.bench_with_input(BenchmarkId::new("chain_depth", depth), &depth, |b, _| {
            b.iter(|| {
                let r = session.evaluate(&ActionQuery::principals(&[leaf.as_str()]).attributes(&attrs));
                assert!(r.is_authorized());
                black_box(r)
            })
        });
    }
    // The paper's exact Figure 4 shape: depth 1, Alice writes but cannot
    // read (regenerated as a correctness anchor inside the bench).
    let fig4 = chain_session(1);
    let read_attrs: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "read")]
        .into_iter()
        .collect();
    assert!(fig4.evaluate(&ActionQuery::principals(&["K1"]).attributes(&attrs)).is_authorized());
    assert!(!fig4.evaluate(&ActionQuery::principals(&["K1"]).attributes(&read_attrs)).is_authorized());
    group.bench_function("fig4_exact_denied_read", |b| {
        b.iter(|| black_box(fig4.evaluate(&ActionQuery::principals(&["K1"]).attributes(&read_attrs))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
