//! fig5/fig6 — "WebCom's Policy for the Salaries Database" and the
//! Figure 6 membership credential.
//!
//! Measures Policy Comprehension (§4.2): encoding `HasPermission` tables
//! into the Figure 5 policy assertion and `UserRole` rows into Figure 6
//! credentials, serial vs rayon-parallel batches, plus the inverse
//! (Policy Configuration, §4.1) decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_rbac::fixtures::{salaries_policy, synthetic_policy};
use hetsec_translate::batch::{decode_policies_par, encode_policies_par};
use hetsec_translate::{decode_policy, encode_policy, SymbolicDirectory};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_encode");
    group.sample_size(20);
    let dir = SymbolicDirectory::default();

    // The exact Figure 5/6 artefact: the salaries policy.
    let fig1 = salaries_policy();
    group.bench_function("encode_figure1", |b| {
        b.iter(|| black_box(encode_policy(&fig1, "KWebCom", &dir)))
    });
    let fig1_encoded = encode_policy(&fig1, "KWebCom", &dir);
    group.bench_function("decode_figure1", |b| {
        b.iter(|| black_box(decode_policy(&fig1_encoded, "KWebCom", &dir)))
    });

    // Scaling: encode throughput vs number of HasPermission rows.
    for scale in [1usize, 4, 16] {
        let policy = synthetic_policy(scale, 4, 3, 4);
        let rows = (policy.grant_count() + policy.assignment_count()) as u64;
        group.throughput(Throughput::Elements(rows));
        group.bench_with_input(BenchmarkId::new("encode_rows", rows), &policy, |b, p| {
            b.iter(|| black_box(encode_policy(p, "KWebCom", &dir)))
        });
        let encoded = encode_policy(&policy, "KWebCom", &dir);
        group.bench_with_input(BenchmarkId::new("decode_rows", rows), &encoded, |b, e| {
            b.iter(|| black_box(decode_policy(e, "KWebCom", &dir)))
        });
    }

    // Batch sweeps: serial vs parallel over 32 policies.
    let policies: Vec<_> = (0..32).map(|_| synthetic_policy(2, 4, 3, 4)).collect();
    group.bench_function("batch32_serial", |b| {
        b.iter(|| {
            let out: Vec<_> = policies
                .iter()
                .map(|p| encode_policy(p, "KWebCom", &dir))
                .collect();
            black_box(out)
        })
    });
    group.bench_function("batch32_rayon", |b| {
        b.iter(|| black_box(encode_policies_par(&policies, "KWebCom", &dir)))
    });
    let encoded_sets = encode_policies_par(&policies, "KWebCom", &dir);
    group.bench_function("batch32_decode_rayon", |b| {
        b.iter(|| black_box(decode_policies_par(&encoded_sets, "KWebCom", &dir)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
