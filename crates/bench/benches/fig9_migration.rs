//! fig9 — "Interoperating Security Policies" (systems W/X/Y/Z).
//!
//! Measures the three translation paths the figure shows: COM -> KeyNote
//! comprehension (Y's policy serving keyless X), KeyNote -> COM
//! configuration, and the legacy COM -> EJB migration (Z), including a
//! full round-trip fidelity check per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetsec_com::ComMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::naming::EjbDomain;
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_rbac::{PermissionGrant, RoleAssignment};
use hetsec_translate::{decode_policy, encode_policy, migrate, MigrationSpec, SymbolicDirectory};
use std::hint::black_box;

fn com_with(apps: usize, users: usize) -> ComMiddleware {
    let m = ComMiddleware::new("CORPY");
    let rights = ["Launch", "Access", "RunAs"];
    for a in 0..apps {
        for (ri, right) in rights.iter().enumerate() {
            m.grant(&PermissionGrant::new(
                "CORPY",
                format!("Role{}", (a + ri) % 4),
                format!("App{a}"),
                *right,
            ))
            .unwrap();
        }
    }
    for u in 0..users {
        m.assign(&RoleAssignment::new(
            format!("user{u}"),
            "CORPY",
            format!("Role{}", u % 4),
        ))
        .unwrap();
    }
    m
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_migration");
    group.sample_size(15);
    let dir = SymbolicDirectory::default();
    for (apps, users) in [(2usize, 8usize), (8, 32), (16, 128)] {
        let com = com_with(apps, users);
        let exported = com.export_policy();
        let rows = (exported.grant_count() + exported.assignment_count()) as u64;
        group.throughput(Throughput::Elements(rows));

        // Y -> X: comprehension into KeyNote.
        group.bench_with_input(
            BenchmarkId::new("com_to_keynote", rows),
            &exported,
            |b, p| b.iter(|| black_box(encode_policy(p, "KWebCom", &dir))),
        );

        // X -> Y: configuration back from KeyNote into a fresh COM box.
        let credentials = encode_policy(&exported, "KWebCom", &dir);
        group.bench_with_input(
            BenchmarkId::new("keynote_to_com", rows),
            &credentials,
            |b, creds| {
                b.iter(|| {
                    let decoded = decode_policy(creds, "KWebCom", &dir);
                    let fresh = ComMiddleware::new("CORPY");
                    let report = fresh.import_policy(&decoded.policy);
                    assert_eq!(report.skipped.len(), 0);
                    black_box(report)
                })
            },
        );

        // Z: legacy COM -> replacement EJB migration.
        let ejb_domain = EjbDomain::new("zhost", "srv", "Repl").to_string();
        let spec = MigrationSpec::domain("CORPY", ejb_domain.clone());
        group.bench_with_input(BenchmarkId::new("com_to_ejb", rows), &rows, |b, _| {
            b.iter(|| {
                let ejb = EjbMiddleware::new(EjbDomain::new("zhost", "srv", "Repl"));
                let report = migrate(&com, &ejb, &spec);
                assert!(report.import.skipped.is_empty());
                black_box(report)
            })
        });

        // Round-trip fidelity as a measured operation (encode+decode+eq).
        group.bench_with_input(BenchmarkId::new("roundtrip_check", rows), &exported, |b, p| {
            b.iter(|| {
                let creds = encode_policy(p, "KWebCom", &dir);
                let back = decode_policy(&creds, "KWebCom", &dir);
                assert_eq!(&back.policy, p);
                black_box(back)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
