//! fig10 — "Stacked Security Architecture in WebCom".
//!
//! Measures mediation latency as layers are plugged in one by one
//! (L2 only, L1+L2, L0+L1+L2, L0..L3) and under the three combination
//! rules, quantifying the paper's trade-off between stack depth and
//! mediation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::{EjbDomain, MiddlewareKind};
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_os::unix::{Mode, UnixObject, UnixSecurity, UnixUser};
use hetsec_rbac::{PermissionGrant, RoleAssignment};
use hetsec_translate::{encode_policy, SymbolicDirectory};
use hetsec_webcom::{
    ApplicationLayer, AuthzContext, AuthzStack, CombinationRule, MiddlewareLayer, ScheduledAction,
    TrustLayer, TrustManager, UnixOsLayer,
};
use std::hint::black_box;
use std::sync::Arc;

struct Layers {
    os: Arc<UnixOsLayer>,
    middleware: Arc<MiddlewareLayer>,
    trust: Arc<TrustLayer>,
    app: Arc<ApplicationLayer>,
    ctx: AuthzContext,
}

fn layers() -> Layers {
    let domain = EjbDomain::new("h", "s", "j");
    let ds = domain.to_string();
    let ejb = Arc::new(EjbMiddleware::new(domain));
    ejb.grant(&PermissionGrant::new(ds.as_str(), "Manager", "SalariesBean", "read"))
        .unwrap();
    ejb.assign(&RoleAssignment::new("bob", ds.as_str(), "Manager"))
        .unwrap();

    let tm = Arc::new(TrustManager::permissive());
    let mut policy = hetsec_rbac::RbacPolicy::new();
    policy.grant(PermissionGrant::new(ds.as_str(), "Manager", "SalariesBean", "read"));
    policy.assign(RoleAssignment::new("Bob", ds.as_str(), "Manager"));
    for a in encode_policy(&policy, "KWebCom", &SymbolicDirectory::default()) {
        tm.add_policy_assertion(a).unwrap();
    }

    let os = Arc::new(UnixSecurity::new());
    os.add_user("bob", UnixUser { uid: 1, gid: 1, groups: vec![] });
    os.set_object(
        "SalariesBean",
        UnixObject { owner: 1, group: 1, mode: Mode::from_octal(0o700) },
    );

    let ctx = AuthzContext::new(
        "bob",
        "Kbob",
        ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, ds.as_str(), "SalariesBean", "read"),
            ds.as_str(),
            "Manager",
        ),
    );
    Layers {
        os: Arc::new(UnixOsLayer::new(os, ["SalariesBean".to_string()])),
        middleware: Arc::new(MiddlewareLayer::new(ejb)),
        trust: Arc::new(TrustLayer::new(tm)),
        app: Arc::new(ApplicationLayer::denying(Vec::new())),
        ctx,
    }
}

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_stack");
    let l = layers();

    let configs: [(&str, Vec<Arc<dyn hetsec_webcom::AuthzLayer>>); 4] = [
        ("L2", vec![l.trust.clone() as _]),
        ("L1+L2", vec![l.middleware.clone() as _, l.trust.clone() as _]),
        (
            "L0+L1+L2",
            vec![l.os.clone() as _, l.middleware.clone() as _, l.trust.clone() as _],
        ),
        (
            "L0..L3",
            vec![
                l.os.clone() as _,
                l.middleware.clone() as _,
                l.trust.clone() as _,
                l.app.clone() as _,
            ],
        ),
    ];
    for (name, layer_set) in &configs {
        let mut stack = AuthzStack::new();
        for layer in layer_set {
            stack.push(layer.clone());
        }
        group.bench_with_input(BenchmarkId::new("layers", name), name, |b, _| {
            b.iter(|| {
                let d = stack.decide(&l.ctx);
                assert!(d.permitted);
                black_box(d)
            })
        });
    }

    // Combination rules over the full stack.
    for (rule_name, rule) in [
        ("all_present", CombinationRule::AllPresentMustGrant),
        ("first_opinion", CombinationRule::FirstOpinion),
    ] {
        let mut stack = AuthzStack::new().with_rule(rule);
        stack.push(l.os.clone());
        stack.push(l.middleware.clone());
        stack.push(l.trust.clone());
        stack.push(l.app.clone());
        group.bench_with_input(BenchmarkId::new("rule", rule_name), rule_name, |b, _| {
            b.iter(|| black_box(stack.decide(&l.ctx)))
        });
    }

    // Denied path (unknown principal) for the full stack.
    let mut stack = AuthzStack::new();
    stack.push(l.os.clone());
    stack.push(l.middleware.clone());
    stack.push(l.trust.clone());
    stack.push(l.app.clone());
    let denied_ctx = AuthzContext::new("mallory", "Kmallory", l.ctx.action.clone());
    group.bench_function("denied_full_stack", |b| {
        b.iter(|| {
            let d = stack.decide(&denied_ctx);
            assert!(!d.permitted);
            black_box(d)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
