//! The common middleware-security abstraction layer.
//!
//! WebCom treats COM+, EJB and CORBA uniformly through the
//! [`MiddlewareSecurity`] trait: export the native policy to the common
//! extended-RBAC relations, import the owned portion of a unified
//! policy, apply row-level administration, and answer access checks.
//! [`naming`] captures each middleware's concrete `Domain` structure and
//! [`component`] the invocable units WebCom schedules.

pub mod component;
pub mod naming;
pub mod security;

pub use component::ComponentRef;
pub use naming::{CorbaDomain, EjbDomain, MiddlewareKind, NamingError};
pub use security::{Decision, ImportReport, MiddlewareError, MiddlewareSecurity, MiddlewareSecurityExt};
