//! Middleware components: the schedulable units WebCom composes into
//! condensed-graph applications (§1, §6).
//!
//! A component is an invocable operation on a middleware object — a COM
//! method, an EJB business method, a CORBA operation. Executing one
//! requires a permission on the object's type, which is what every layer
//! of the authorisation stack mediates.

use crate::naming::MiddlewareKind;
use hetsec_rbac::{Domain, ObjectType, Permission};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reference to an invocable middleware component.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ComponentRef {
    /// Which middleware family hosts it.
    pub kind: MiddlewareKind,
    /// The domain of the hosting instance.
    pub domain: Domain,
    /// The object type (COM class / bean / IDL interface).
    pub object_type: ObjectType,
    /// The operation (method) to invoke.
    pub operation: String,
}

impl ComponentRef {
    /// Builds a reference.
    pub fn new(
        kind: MiddlewareKind,
        domain: impl Into<Domain>,
        object_type: impl Into<ObjectType>,
        operation: impl Into<String>,
    ) -> Self {
        ComponentRef {
            kind,
            domain: domain.into(),
            object_type: object_type.into(),
            operation: operation.into(),
        }
    }

    /// The permission required to invoke the component. Middleware map
    /// operations to permissions differently: EJB/CORBA permissions are
    /// the method names themselves; COM+ uses its coarse rights, with
    /// method calls requiring `Access`.
    pub fn required_permission(&self) -> Permission {
        match self.kind {
            MiddlewareKind::ComPlus => Permission::new("Access"),
            MiddlewareKind::Ejb | MiddlewareKind::Corba => Permission::new(&self.operation),
        }
    }

    /// A stable identifier string (what the paper's mediation keys on:
    /// "the identifier of the components", §7).
    pub fn identifier(&self) -> String {
        format!(
            "{}://{}/{}#{}",
            match self.kind {
                MiddlewareKind::ComPlus => "com",
                MiddlewareKind::Ejb => "ejb",
                MiddlewareKind::Corba => "corba",
            },
            self.domain,
            self.object_type,
            self.operation
        )
    }
}

impl fmt::Display for ComponentRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.identifier())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_shape() {
        let c = ComponentRef::new(MiddlewareKind::Ejb, "h/s/j", "SalariesBean", "read");
        assert_eq!(c.identifier(), "ejb://h/s/j/SalariesBean#read");
        assert_eq!(c.to_string(), c.identifier());
    }

    #[test]
    fn required_permission_per_kind() {
        let ejb = ComponentRef::new(MiddlewareKind::Ejb, "d", "B", "getSalary");
        assert_eq!(ejb.required_permission().as_str(), "getSalary");
        let corba = ComponentRef::new(MiddlewareKind::Corba, "d", "I", "fetch");
        assert_eq!(corba.required_permission().as_str(), "fetch");
        let com = ComponentRef::new(MiddlewareKind::ComPlus, "d", "C", "DoWork");
        assert_eq!(com.required_permission().as_str(), "Access");
    }

    #[test]
    fn ordering_and_equality() {
        let a = ComponentRef::new(MiddlewareKind::Ejb, "d", "B", "m1");
        let b = ComponentRef::new(MiddlewareKind::Ejb, "d", "B", "m2");
        assert!(a < b);
        assert_eq!(a, a.clone());
    }
}
