//! The common middleware-security abstraction.
//!
//! Every middleware simulator (COM+, EJB, CORBA) implements
//! [`MiddlewareSecurity`]: a native RBAC policy that can be **exported**
//! to the common model (the input of the paper's *Policy Comprehension*,
//! §4.2), **imported** from it (*Policy Configuration*, §4.1), mutated
//! row-by-row (what the KeyCom-style admin services drive, Figure 8),
//! and consulted for access decisions (the L1 layer of Figure 10).

use crate::naming::MiddlewareKind;
use hetsec_rbac::{Domain, ObjectType, Permission, PermissionGrant, RbacPolicy, Role, RoleAssignment, User};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An access decision with a human-readable reason on denial.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Access granted.
    Granted,
    /// Access denied, with the mediating layer's reason.
    Denied(String),
}

impl Decision {
    /// True when granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, Decision::Granted)
    }

    /// Builds a denial.
    pub fn denied(reason: impl Into<String>) -> Decision {
        Decision::Denied(reason.into())
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Granted => write!(f, "granted"),
            Decision::Denied(r) => write!(f, "denied: {r}"),
        }
    }
}

/// Errors from middleware administration operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MiddlewareError {
    /// The row names a domain this middleware instance does not own.
    ForeignDomain {
        /// The offending domain.
        domain: Domain,
        /// This instance's kind.
        kind: MiddlewareKind,
        /// This instance's name.
        instance: String,
    },
    /// A permission name the middleware cannot represent.
    UnsupportedPermission(Permission),
    /// The referenced entity does not exist natively.
    NotFound(String),
}

impl fmt::Display for MiddlewareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiddlewareError::ForeignDomain { domain, kind, instance } => write!(
                f,
                "domain `{domain}` is not managed by {kind} instance `{instance}`"
            ),
            MiddlewareError::UnsupportedPermission(p) => {
                write!(f, "permission `{p}` is not representable")
            }
            MiddlewareError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for MiddlewareError {}

/// Outcome of a bulk policy import.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportReport {
    /// Rows applied to the native policy.
    pub applied: usize,
    /// Rows skipped, with reasons (e.g. foreign domains — imports take
    /// only the portion of the unified policy this instance owns).
    pub skipped: Vec<String>,
}

impl ImportReport {
    /// Records a successful row.
    pub fn applied_row(&mut self) {
        self.applied += 1;
    }

    /// Records a skipped row.
    pub fn skip(&mut self, reason: impl Into<String>) {
        self.skipped.push(reason.into());
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: ImportReport) {
        self.applied += other.applied;
        self.skipped.extend(other.skipped);
    }
}

/// The common surface every middleware security simulator implements.
pub trait MiddlewareSecurity: Send + Sync {
    /// Which middleware family this is.
    fn kind(&self) -> MiddlewareKind;

    /// The instance name (used in diagnostics and scheduling).
    fn instance_name(&self) -> String;

    /// The domains this instance owns (rows outside them are skipped on
    /// import).
    fn owned_domains(&self) -> Vec<Domain>;

    /// Exports the native policy as the common extended-RBAC relations
    /// (*Policy Comprehension* input).
    fn export_policy(&self) -> RbacPolicy;

    /// Imports the relevant portion of a unified policy (*Policy
    /// Configuration*). Rows for foreign domains are skipped, not
    /// errors — a unified policy spans many instances.
    fn import_policy(&self, policy: &RbacPolicy) -> ImportReport {
        let mut report = ImportReport::default();
        let owned = self.owned_domains();
        for g in policy.grants() {
            if !owned.contains(&g.domain) {
                report.skip(format!("grant {g}: foreign domain"));
                continue;
            }
            match self.grant(g) {
                Ok(()) => report.applied_row(),
                Err(e) => report.skip(format!("grant {g}: {e}")),
            }
        }
        for a in policy.assignments() {
            if !owned.contains(&a.domain) {
                report.skip(format!("assign {a}: foreign domain"));
                continue;
            }
            match self.assign(a) {
                Ok(()) => report.applied_row(),
                Err(e) => report.skip(format!("assign {a}: {e}")),
            }
        }
        report
    }

    /// Adds one `HasPermission` row natively.
    fn grant(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError>;

    /// Removes one `HasPermission` row natively.
    fn revoke(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError>;

    /// Adds one `UserRole` row natively.
    fn assign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError>;

    /// Removes one `UserRole` row natively.
    fn unassign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError>;

    /// The L1 access check. When `role` is `Some`, the check is
    /// restricted to that role (the scheduler's pinned-role question);
    /// otherwise any of the user's roles may grant.
    fn check(
        &self,
        user: &User,
        domain: &Domain,
        role: Option<&Role>,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> Decision;
}

/// Blanket helpers over any middleware.
pub trait MiddlewareSecurityExt: MiddlewareSecurity {
    /// Convenience: unrestricted access check returning a bool.
    fn allows(
        &self,
        user: &User,
        domain: &Domain,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> bool {
        self.check(user, domain, None, object_type, permission)
            .is_granted()
    }
}

impl<T: MiddlewareSecurity + ?Sized> MiddlewareSecurityExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_api() {
        assert!(Decision::Granted.is_granted());
        let d = Decision::denied("no role");
        assert!(!d.is_granted());
        assert_eq!(d.to_string(), "denied: no role");
        assert_eq!(Decision::Granted.to_string(), "granted");
    }

    #[test]
    fn import_report_merge() {
        let mut a = ImportReport::default();
        a.applied_row();
        a.skip("x");
        let mut b = ImportReport::default();
        b.applied_row();
        b.applied_row();
        a.merge(b);
        assert_eq!(a.applied, 3);
        assert_eq!(a.skipped.len(), 1);
    }

    #[test]
    fn error_display() {
        let e = MiddlewareError::ForeignDomain {
            domain: Domain::new("Other"),
            kind: MiddlewareKind::Ejb,
            instance: "srv".to_string(),
        };
        assert!(e.to_string().contains("Other"));
        assert!(e.to_string().contains("EJB"));
        assert!(
            MiddlewareError::UnsupportedPermission(Permission::new("fly"))
                .to_string()
                .contains("fly")
        );
    }
}
