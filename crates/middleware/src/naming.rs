//! Domain naming conventions per middleware (paper §2).
//!
//! Each middleware concretises the abstract RBAC `Domain` differently:
//!
//! * **COM+** — the Windows NT domain name;
//! * **EJB** — host + EJB server + bean-container JNDI name;
//! * **CORBA** — machine name + ORB server name.
//!
//! These structured names serialise to/from plain strings so they fit the
//! common `Domain` identifier, and parse back losslessly for migration.

use hetsec_rbac::Domain;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The middleware families supported by Secure WebCom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MiddlewareKind {
    /// Microsoft COM+ / .NET.
    ComPlus,
    /// Enterprise JavaBeans.
    Ejb,
    /// CORBA.
    Corba,
}

impl fmt::Display for MiddlewareKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MiddlewareKind::ComPlus => "COM+",
            MiddlewareKind::Ejb => "EJB",
            MiddlewareKind::Corba => "CORBA",
        };
        write!(f, "{s}")
    }
}

/// Error parsing a structured domain name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamingError(pub String);

impl fmt::Display for NamingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed domain name: {}", self.0)
    }
}

impl std::error::Error for NamingError {}

/// An EJB domain: `host/server/jndi`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EjbDomain {
    /// Host machine.
    pub host: String,
    /// EJB server name.
    pub server: String,
    /// Bean container JNDI name.
    pub jndi: String,
}

impl EjbDomain {
    /// Builds a domain name.
    pub fn new(host: &str, server: &str, jndi: &str) -> Self {
        EjbDomain {
            host: host.to_string(),
            server: server.to_string(),
            jndi: jndi.to_string(),
        }
    }

    /// Converts to the common `Domain` string.
    pub fn to_domain(&self) -> Domain {
        Domain::new(self.to_string())
    }
}

impl fmt::Display for EjbDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.host, self.server, self.jndi)
    }
}

impl FromStr for EjbDomain {
    type Err = NamingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('/').collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            return Err(NamingError(s.to_string()));
        }
        Ok(EjbDomain::new(parts[0], parts[1], parts[2]))
    }
}

/// A CORBA domain: `machine:orb-server`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CorbaDomain {
    /// Machine name.
    pub machine: String,
    /// ORB server name.
    pub orb_server: String,
}

impl CorbaDomain {
    /// Builds a domain name.
    pub fn new(machine: &str, orb_server: &str) -> Self {
        CorbaDomain {
            machine: machine.to_string(),
            orb_server: orb_server.to_string(),
        }
    }

    /// Converts to the common `Domain` string.
    pub fn to_domain(&self) -> Domain {
        Domain::new(self.to_string())
    }
}

impl fmt::Display for CorbaDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.machine, self.orb_server)
    }
}

impl FromStr for CorbaDomain {
    type Err = NamingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 2 || parts.iter().any(|p| p.is_empty()) {
            return Err(NamingError(s.to_string()));
        }
        Ok(CorbaDomain::new(parts[0], parts[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(MiddlewareKind::ComPlus.to_string(), "COM+");
        assert_eq!(MiddlewareKind::Ejb.to_string(), "EJB");
        assert_eq!(MiddlewareKind::Corba.to_string(), "CORBA");
    }

    #[test]
    fn ejb_roundtrip() {
        let d = EjbDomain::new("host1", "ejbsrv", "SalariesBeans");
        let s = d.to_string();
        assert_eq!(s, "host1/ejbsrv/SalariesBeans");
        assert_eq!(s.parse::<EjbDomain>().unwrap(), d);
        assert_eq!(d.to_domain().as_str(), s);
    }

    #[test]
    fn ejb_rejects_malformed() {
        assert!("a/b".parse::<EjbDomain>().is_err());
        assert!("a/b/c/d".parse::<EjbDomain>().is_err());
        assert!("a//c".parse::<EjbDomain>().is_err());
        assert!("".parse::<EjbDomain>().is_err());
    }

    #[test]
    fn corba_roundtrip() {
        let d = CorbaDomain::new("zeus", "SalariesOrb");
        assert_eq!(d.to_string(), "zeus:SalariesOrb");
        assert_eq!("zeus:SalariesOrb".parse::<CorbaDomain>().unwrap(), d);
    }

    #[test]
    fn corba_rejects_malformed() {
        assert!("zeus".parse::<CorbaDomain>().is_err());
        assert!("a:b:c".parse::<CorbaDomain>().is_err());
        assert!(":orb".parse::<CorbaDomain>().is_err());
    }
}
