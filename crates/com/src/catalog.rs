//! The COM+ catalogue simulator (paper §2, "Microsoft COM+/.NET").
//!
//! COM's RBAC model extends the Windows security model: roles are unique
//! to each NT domain, and the permissions are the coarse application
//! rights `Launch`, `Access` and `RunAs`. The catalogue stores COM+
//! applications (AppIDs) with their classes (CLSIDs) and per-application
//! role→rights entries; role membership is domain-wide, resolved against
//! the NT account database.
//!
//! In the common model: `Domain` = the NT domain name, `ObjectType` = the
//! COM+ application name, `Permission` ∈ {Launch, Access, RunAs}.

use hetsec_os::windows::NtDomain;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

/// The three COM+ application rights the paper uses as permissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComRight {
    /// Permission to launch (activate) the application.
    Launch,
    /// Permission to call methods on the application's classes.
    Access,
    /// Permission to configure the identity the application runs as.
    RunAs,
}

impl ComRight {
    /// All rights.
    pub const ALL: [ComRight; 3] = [ComRight::Launch, ComRight::Access, ComRight::RunAs];
}

impl fmt::Display for ComRight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComRight::Launch => "Launch",
            ComRight::Access => "Access",
            ComRight::RunAs => "RunAs",
        };
        write!(f, "{s}")
    }
}

impl FromStr for ComRight {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Launch" => Ok(ComRight::Launch),
            "Access" => Ok(ComRight::Access),
            "RunAs" => Ok(ComRight::RunAs),
            _ => Err(()),
        }
    }
}

/// A COM+ application entry: classes plus role→rights.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComApplication {
    /// Registered class ids (CLSIDs, by readable name here).
    pub classes: BTreeSet<String>,
    /// role name -> rights granted to that role on this application.
    pub role_rights: BTreeMap<String, BTreeSet<ComRight>>,
}

/// The machine-wide COM+ catalogue.
pub struct ComCatalog {
    nt_domain_name: String,
    inner: RwLock<CatalogState>,
}

#[derive(Debug, Default)]
struct CatalogState {
    apps: BTreeMap<String, ComApplication>,
    /// Domain-wide role membership (paper: roles unique to each domain).
    role_members: BTreeMap<String, BTreeSet<String>>,
    nt: NtDomain,
}

impl ComCatalog {
    /// An empty catalogue on a machine joined to `nt_domain`.
    pub fn new(nt_domain: &str) -> Self {
        ComCatalog {
            nt_domain_name: nt_domain.to_string(),
            inner: RwLock::new(CatalogState {
                nt: NtDomain::new(nt_domain),
                ..CatalogState::default()
            }),
        }
    }

    /// The NT domain this catalogue belongs to.
    pub fn nt_domain_name(&self) -> &str {
        &self.nt_domain_name
    }

    /// Registers an application (idempotent).
    pub fn register_application(&self, app: &str) {
        self.inner.write().apps.entry(app.to_string()).or_default();
    }

    /// Registers a class under an application (creating it).
    pub fn register_class(&self, app: &str, class: &str) {
        self.inner
            .write()
            .apps
            .entry(app.to_string())
            .or_default()
            .classes
            .insert(class.to_string());
    }

    /// Grants a right to a role on an application (creating both).
    pub fn grant_right(&self, app: &str, role: &str, right: ComRight) -> bool {
        let mut s = self.inner.write();
        s.apps
            .entry(app.to_string())
            .or_default()
            .role_rights
            .entry(role.to_string())
            .or_default()
            .insert(right)
    }

    /// Revokes a right; returns false if it was absent.
    pub fn revoke_right(&self, app: &str, role: &str, right: ComRight) -> bool {
        let mut s = self.inner.write();
        s.apps
            .get_mut(app)
            .and_then(|a| a.role_rights.get_mut(role))
            .is_some_and(|rights| rights.remove(&right))
    }

    /// Adds a user to a domain role, registering the NT account.
    pub fn add_role_member(&self, role: &str, user: &str) -> bool {
        let mut s = self.inner.write();
        s.nt.add_user(user);
        s.role_members
            .entry(role.to_string())
            .or_default()
            .insert(user.to_string())
    }

    /// Removes a user from a role.
    pub fn remove_role_member(&self, role: &str, user: &str) -> bool {
        self.inner
            .write()
            .role_members
            .get_mut(role)
            .is_some_and(|m| m.remove(user))
    }

    /// Roles a user belongs to.
    pub fn roles_of(&self, user: &str) -> Vec<String> {
        self.inner
            .read()
            .role_members
            .iter()
            .filter(|(_, m)| m.contains(user))
            .map(|(r, _)| r.clone())
            .collect()
    }

    /// True when `user`, acting in `role` (or any role when `None`),
    /// holds `right` on `app`.
    pub fn check_right(&self, user: &str, role: Option<&str>, app: &str, right: ComRight) -> bool {
        let s = self.inner.read();
        let Some(a) = s.apps.get(app) else {
            return false;
        };
        let member_roles: Vec<&String> = s
            .role_members
            .iter()
            .filter(|(r, m)| m.contains(user) && role.is_none_or(|want| want == r.as_str()))
            .map(|(r, _)| r)
            .collect();
        member_roles
            .iter()
            .any(|r| a.role_rights.get(*r).is_some_and(|rights| rights.contains(&right)))
    }

    /// Simulated activation: requires `Launch`.
    pub fn launch(&self, user: &str, app: &str) -> Result<(), String> {
        if self.check_right(user, None, app, ComRight::Launch) {
            Ok(())
        } else {
            Err(format!("{user} lacks Launch on {app}"))
        }
    }

    /// Simulated method call: requires `Access` and the class must exist.
    pub fn call(&self, user: &str, app: &str, class: &str, method: &str) -> Result<String, String> {
        {
            let s = self.inner.read();
            let Some(a) = s.apps.get(app) else {
                return Err(format!("no such application {app}"));
            };
            if !a.classes.contains(class) {
                return Err(format!("no such class {class} in {app}"));
            }
        }
        if self.check_right(user, None, app, ComRight::Access) {
            Ok(format!("{app}.{class}::{method} executed for {user}"))
        } else {
            Err(format!("{user} lacks Access on {app}"))
        }
    }

    /// Snapshot of application names.
    pub fn applications(&self) -> Vec<String> {
        self.inner.read().apps.keys().cloned().collect()
    }

    /// Snapshot of one application.
    pub fn application(&self, app: &str) -> Option<ComApplication> {
        self.inner.read().apps.get(app).cloned()
    }

    /// Snapshot of role memberships.
    pub fn role_members(&self) -> BTreeMap<String, BTreeSet<String>> {
        self.inner.read().role_members.clone()
    }

    /// Access to the NT domain database (for the OS layer).
    pub fn with_nt<R>(&self, f: impl FnOnce(&mut NtDomain) -> R) -> R {
        f(&mut self.inner.write().nt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> ComCatalog {
        let c = ComCatalog::new("CORP");
        c.register_application("SalariesDB");
        c.register_class("SalariesDB", "SalaryRecord");
        c.grant_right("SalariesDB", "Manager", ComRight::Launch);
        c.grant_right("SalariesDB", "Manager", ComRight::Access);
        c.grant_right("SalariesDB", "Clerk", ComRight::Access);
        c.add_role_member("Manager", "bob");
        c.add_role_member("Clerk", "alice");
        c
    }

    #[test]
    fn rights_parse_and_display() {
        for r in ComRight::ALL {
            assert_eq!(r.to_string().parse::<ComRight>().unwrap(), r);
        }
        assert!("Fly".parse::<ComRight>().is_err());
    }

    #[test]
    fn role_based_rights() {
        let c = fixture();
        assert!(c.check_right("bob", None, "SalariesDB", ComRight::Launch));
        assert!(c.check_right("bob", None, "SalariesDB", ComRight::Access));
        assert!(!c.check_right("bob", None, "SalariesDB", ComRight::RunAs));
        assert!(c.check_right("alice", None, "SalariesDB", ComRight::Access));
        assert!(!c.check_right("alice", None, "SalariesDB", ComRight::Launch));
        assert!(!c.check_right("mallory", None, "SalariesDB", ComRight::Access));
    }

    #[test]
    fn role_restricted_check() {
        let c = fixture();
        c.add_role_member("Clerk", "bob"); // bob also a clerk
        assert!(c.check_right("bob", Some("Manager"), "SalariesDB", ComRight::Launch));
        assert!(!c.check_right("bob", Some("Clerk"), "SalariesDB", ComRight::Launch));
        assert!(c.check_right("bob", Some("Clerk"), "SalariesDB", ComRight::Access));
        assert!(!c.check_right("bob", Some("Ghost"), "SalariesDB", ComRight::Access));
    }

    #[test]
    fn launch_and_call() {
        let c = fixture();
        assert!(c.launch("bob", "SalariesDB").is_ok());
        assert!(c.launch("alice", "SalariesDB").is_err());
        let out = c.call("alice", "SalariesDB", "SalaryRecord", "Update").unwrap();
        assert!(out.contains("SalaryRecord::Update"));
        assert!(c.call("alice", "SalariesDB", "NoClass", "X").is_err());
        assert!(c.call("alice", "NoApp", "C", "X").is_err());
        assert!(c.call("mallory", "SalariesDB", "SalaryRecord", "X").is_err());
    }

    #[test]
    fn revocation() {
        let c = fixture();
        assert!(c.revoke_right("SalariesDB", "Clerk", ComRight::Access));
        assert!(!c.revoke_right("SalariesDB", "Clerk", ComRight::Access));
        assert!(!c.check_right("alice", None, "SalariesDB", ComRight::Access));
        assert!(c.remove_role_member("Manager", "bob"));
        assert!(!c.check_right("bob", None, "SalariesDB", ComRight::Launch));
    }

    #[test]
    fn membership_queries() {
        let c = fixture();
        assert_eq!(c.roles_of("bob"), vec!["Manager".to_string()]);
        assert_eq!(c.applications(), vec!["SalariesDB".to_string()]);
        let app = c.application("SalariesDB").unwrap();
        assert!(app.classes.contains("SalaryRecord"));
        assert_eq!(c.role_members()["Clerk"].len(), 1);
    }

    #[test]
    fn nt_accounts_created_on_membership() {
        let c = fixture();
        assert!(c.with_nt(|d| d.has_user("alice")));
        assert!(c.with_nt(|d| d.has_user("bob")));
        assert!(!c.with_nt(|d| d.has_user("mallory")));
    }
}
