//! COM+/.NET middleware security simulator (paper §2).
//!
//! [`catalog`] models the COM+ catalogue — applications, classes, roles
//! with `Launch`/`Access`/`RunAs` rights, and NT-domain role membership —
//! and [`adapter`] exposes it through the common
//! [`hetsec_middleware::MiddlewareSecurity`] surface so WebCom's KeyCom
//! service (Figure 8) and the translation pipelines can drive it.

pub mod adapter;
pub mod catalog;

pub use adapter::ComMiddleware;
pub use catalog::{ComApplication, ComCatalog, ComRight};
