//! [`MiddlewareSecurity`] adapter for the COM+ catalogue.

use crate::catalog::{ComCatalog, ComRight};
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_middleware::security::{Decision, MiddlewareError, MiddlewareSecurity};
use hetsec_rbac::{
    Domain, ObjectType, Permission, PermissionGrant, RbacPolicy, Role, RoleAssignment, User,
};
use std::str::FromStr;

/// A COM+ machine viewed through the common middleware-security surface.
pub struct ComMiddleware {
    catalog: ComCatalog,
}

impl ComMiddleware {
    /// Wraps a fresh catalogue in NT domain `nt_domain`.
    pub fn new(nt_domain: &str) -> Self {
        ComMiddleware {
            catalog: ComCatalog::new(nt_domain),
        }
    }

    /// The underlying catalogue (for native administration, Figure 8).
    pub fn catalog(&self) -> &ComCatalog {
        &self.catalog
    }

    fn check_domain(&self, domain: &Domain) -> Result<(), MiddlewareError> {
        if domain.as_str() != self.catalog.nt_domain_name() {
            return Err(MiddlewareError::ForeignDomain {
                domain: domain.clone(),
                kind: MiddlewareKind::ComPlus,
                instance: self.instance_name(),
            });
        }
        Ok(())
    }

    fn parse_right(permission: &Permission) -> Result<ComRight, MiddlewareError> {
        ComRight::from_str(permission.as_str())
            .map_err(|()| MiddlewareError::UnsupportedPermission(permission.clone()))
    }
}

impl MiddlewareSecurity for ComMiddleware {
    fn kind(&self) -> MiddlewareKind {
        MiddlewareKind::ComPlus
    }

    fn instance_name(&self) -> String {
        format!("COM+@{}", self.catalog.nt_domain_name())
    }

    fn owned_domains(&self) -> Vec<Domain> {
        vec![Domain::new(self.catalog.nt_domain_name())]
    }

    fn export_policy(&self) -> RbacPolicy {
        let mut policy = RbacPolicy::new();
        let domain = self.catalog.nt_domain_name().to_string();
        for app in self.catalog.applications() {
            if let Some(entry) = self.catalog.application(&app) {
                for (role, rights) in entry.role_rights {
                    for right in rights {
                        policy.grant(PermissionGrant::new(
                            domain.as_str(),
                            role.as_str(),
                            app.as_str(),
                            right.to_string(),
                        ));
                    }
                }
            }
        }
        for (role, members) in self.catalog.role_members() {
            for user in members {
                policy.assign(RoleAssignment::new(
                    user.as_str(),
                    domain.as_str(),
                    role.as_str(),
                ));
            }
        }
        policy
    }

    fn grant(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError> {
        self.check_domain(&grant.domain)?;
        let right = Self::parse_right(&grant.permission)?;
        self.catalog
            .grant_right(grant.object_type.as_str(), grant.role.as_str(), right);
        Ok(())
    }

    fn revoke(&self, grant: &PermissionGrant) -> Result<(), MiddlewareError> {
        self.check_domain(&grant.domain)?;
        let right = Self::parse_right(&grant.permission)?;
        if self
            .catalog
            .revoke_right(grant.object_type.as_str(), grant.role.as_str(), right)
        {
            Ok(())
        } else {
            Err(MiddlewareError::NotFound(format!("{grant}")))
        }
    }

    fn assign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError> {
        self.check_domain(&assignment.domain)?;
        self.catalog
            .add_role_member(assignment.role.as_str(), assignment.user.as_str());
        Ok(())
    }

    fn unassign(&self, assignment: &RoleAssignment) -> Result<(), MiddlewareError> {
        self.check_domain(&assignment.domain)?;
        if self
            .catalog
            .remove_role_member(assignment.role.as_str(), assignment.user.as_str())
        {
            Ok(())
        } else {
            Err(MiddlewareError::NotFound(format!("{assignment}")))
        }
    }

    fn check(
        &self,
        user: &User,
        domain: &Domain,
        role: Option<&Role>,
        object_type: &ObjectType,
        permission: &Permission,
    ) -> Decision {
        if domain.as_str() != self.catalog.nt_domain_name() {
            return Decision::denied(format!("foreign domain {domain}"));
        }
        let Ok(right) = ComRight::from_str(permission.as_str()) else {
            return Decision::denied(format!("unsupported COM+ permission {permission}"));
        };
        let role_str = role.map(|r| r.as_str());
        if self
            .catalog
            .check_right(user.as_str(), role_str, object_type.as_str(), right)
        {
            Decision::Granted
        } else {
            Decision::denied(format!("{user} lacks {right} on {object_type}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_middleware::security::MiddlewareSecurityExt;

    fn fixture() -> ComMiddleware {
        let m = ComMiddleware::new("CORP");
        m.grant(&PermissionGrant::new("CORP", "Manager", "SalariesDB", "Access"))
            .unwrap();
        m.grant(&PermissionGrant::new("CORP", "Manager", "SalariesDB", "Launch"))
            .unwrap();
        m.assign(&RoleAssignment::new("bob", "CORP", "Manager")).unwrap();
        m
    }

    #[test]
    fn grant_and_check_through_trait() {
        let m = fixture();
        assert!(m.allows(
            &"bob".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Access".into()
        ));
        assert!(!m.allows(
            &"bob".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"RunAs".into()
        ));
        let d = m.check(
            &"bob".into(),
            &"CORP".into(),
            Some(&"Clerk".into()),
            &"SalariesDB".into(),
            &"Access".into(),
        );
        assert!(!d.is_granted());
    }

    #[test]
    fn foreign_domain_rejected() {
        let m = fixture();
        let err = m
            .grant(&PermissionGrant::new("OTHER", "R", "App", "Access"))
            .unwrap_err();
        assert!(matches!(err, MiddlewareError::ForeignDomain { .. }));
        let d = m.check(
            &"bob".into(),
            &"OTHER".into(),
            None,
            &"SalariesDB".into(),
            &"Access".into(),
        );
        assert!(!d.is_granted());
    }

    #[test]
    fn unsupported_permission_rejected() {
        let m = fixture();
        let err = m
            .grant(&PermissionGrant::new("CORP", "R", "App", "read"))
            .unwrap_err();
        assert!(matches!(err, MiddlewareError::UnsupportedPermission(_)));
    }

    #[test]
    fn export_matches_native_state() {
        let m = fixture();
        let p = m.export_policy();
        assert_eq!(p.grant_count(), 2);
        assert_eq!(p.assignment_count(), 1);
        assert!(p.check_access(&"bob".into(), &"SalariesDB".into(), &"Access".into()));
    }

    #[test]
    fn import_skips_foreign_rows_and_bad_permissions() {
        let m = ComMiddleware::new("CORP");
        let mut unified = RbacPolicy::new();
        unified.grant(PermissionGrant::new("CORP", "Manager", "App", "Access"));
        unified.grant(PermissionGrant::new("ELSEWHERE", "R", "X", "Access"));
        unified.grant(PermissionGrant::new("CORP", "Manager", "App", "read")); // not a COM right
        unified.assign(RoleAssignment::new("bob", "CORP", "Manager"));
        unified.assign(RoleAssignment::new("carol", "ELSEWHERE", "R"));
        let report = m.import_policy(&unified);
        assert_eq!(report.applied, 2);
        assert_eq!(report.skipped.len(), 3);
        assert!(m.allows(&"bob".into(), &"CORP".into(), &"App".into(), &"Access".into()));
    }

    #[test]
    fn revoke_and_unassign() {
        let m = fixture();
        m.revoke(&PermissionGrant::new("CORP", "Manager", "SalariesDB", "Launch"))
            .unwrap();
        assert!(!m.allows(
            &"bob".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Launch".into()
        ));
        assert!(m
            .revoke(&PermissionGrant::new("CORP", "Manager", "SalariesDB", "Launch"))
            .is_err());
        m.unassign(&RoleAssignment::new("bob", "CORP", "Manager")).unwrap();
        assert!(!m.allows(
            &"bob".into(),
            &"CORP".into(),
            &"SalariesDB".into(),
            &"Access".into()
        ));
    }

    #[test]
    fn export_import_roundtrip() {
        let m = fixture();
        let exported = m.export_policy();
        let m2 = ComMiddleware::new("CORP");
        let report = m2.import_policy(&exported);
        assert!(report.skipped.is_empty());
        assert_eq!(m2.export_policy(), exported);
    }
}
