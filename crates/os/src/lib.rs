//! Simulated operating-system security substrates: the L0 layer of the
//! paper's stacked authorisation architecture (Figure 10).
//!
//! Two models are provided, matching the platforms in the paper's
//! interoperation scenario (Figure 9):
//!
//! * [`windows`] — NT domains, SIDs, groups, and ordered discretionary
//!   ACLs with allow/deny entries (`OS(W)` under COM+);
//! * [`unix`] — uid/gid accounts and rwx permission-bit checks
//!   (`OS(U)` under System X).
//!
//! Both expose a simple `access_check(user, object, access) -> bool`
//! surface that the WebCom authorisation stack wraps as a pluggable
//! layer.

pub mod unix;
pub mod windows;

pub use unix::{Mode, UnixAccess, UnixObject, UnixSecurity, UnixUser};
pub use windows::{AccessMask, Ace, AceKind, Acl, NtDomain, Sid, WindowsSecurity};
