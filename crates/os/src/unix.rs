//! A simulated Unix permission model: uid/gid accounts, supplementary
//! groups, and rwx permission bits on named objects.
//!
//! This is the OS layer (L0) for WebCom environments hosted on Unix
//! machines (the paper's System X runs `OS(U)` in Figure 9).

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Access classes requested against an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnixAccess {
    /// Read.
    Read,
    /// Write.
    Write,
    /// Execute.
    Execute,
}

/// A 9-bit rwxrwxrwx mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mode(pub u16);

impl Mode {
    /// Parses an octal literal such as `0o640`.
    pub fn from_octal(bits: u16) -> Mode {
        Mode(bits & 0o777)
    }

    fn class_bits(self, shift: u16) -> u16 {
        (self.0 >> shift) & 0o7
    }

    fn allows(self, shift: u16, access: UnixAccess) -> bool {
        let bits = self.class_bits(shift);
        match access {
            UnixAccess::Read => bits & 0o4 != 0,
            UnixAccess::Write => bits & 0o2 != 0,
            UnixAccess::Execute => bits & 0o1 != 0,
        }
    }
}

/// A user account.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnixUser {
    /// User id.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
    /// Supplementary groups.
    pub groups: Vec<u32>,
}

impl UnixUser {
    fn in_group(&self, gid: u32) -> bool {
        self.gid == gid || self.groups.contains(&gid)
    }
}

/// A securable object (file-like).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnixObject {
    /// Owner uid.
    pub owner: u32,
    /// Owning group id.
    pub group: u32,
    /// Permission bits.
    pub mode: Mode,
}

/// A Unix machine: passwd/group database plus objects.
#[derive(Default)]
pub struct UnixSecurity {
    users: RwLock<BTreeMap<String, UnixUser>>,
    objects: RwLock<BTreeMap<String, UnixObject>>,
}

impl UnixSecurity {
    /// Empty machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an account.
    pub fn add_user(&self, name: &str, user: UnixUser) {
        self.users.write().insert(name.to_string(), user);
    }

    /// Creates or replaces an object.
    pub fn set_object(&self, name: &str, object: UnixObject) {
        self.objects.write().insert(name.to_string(), object);
    }

    /// Changes an object's mode; returns false if the object is unknown.
    pub fn chmod(&self, name: &str, mode: Mode) -> bool {
        match self.objects.write().get_mut(name) {
            Some(o) => {
                o.mode = mode;
                true
            }
            None => false,
        }
    }

    /// Looks up a user.
    pub fn user(&self, name: &str) -> Option<UnixUser> {
        self.users.read().get(name).cloned()
    }

    /// The classic owner/group/other access check. Unknown users or
    /// objects are denied; uid 0 (root) is always allowed.
    pub fn access_check(&self, user: &str, object: &str, access: UnixAccess) -> bool {
        let Some(u) = self.user(user) else {
            return false;
        };
        if u.uid == 0 {
            return true;
        }
        let objects = self.objects.read();
        let Some(o) = objects.get(object) else {
            return false;
        };
        if u.uid == o.owner {
            o.mode.allows(6, access)
        } else if u.in_group(o.group) {
            o.mode.allows(3, access)
        } else {
            o.mode.allows(0, access)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> UnixSecurity {
        let m = UnixSecurity::new();
        m.add_user(
            "root",
            UnixUser {
                uid: 0,
                gid: 0,
                groups: vec![],
            },
        );
        m.add_user(
            "alice",
            UnixUser {
                uid: 1000,
                gid: 100,
                groups: vec![200],
            },
        );
        m.add_user(
            "bob",
            UnixUser {
                uid: 1001,
                gid: 100,
                groups: vec![],
            },
        );
        m.add_user(
            "carol",
            UnixUser {
                uid: 1002,
                gid: 300,
                groups: vec![],
            },
        );
        m.set_object(
            "salaries.db",
            UnixObject {
                owner: 1000,
                group: 100,
                mode: Mode::from_octal(0o640),
            },
        );
        m
    }

    #[test]
    fn owner_class() {
        let m = machine();
        assert!(m.access_check("alice", "salaries.db", UnixAccess::Read));
        assert!(m.access_check("alice", "salaries.db", UnixAccess::Write));
        assert!(!m.access_check("alice", "salaries.db", UnixAccess::Execute));
    }

    #[test]
    fn group_class() {
        let m = machine();
        assert!(m.access_check("bob", "salaries.db", UnixAccess::Read));
        assert!(!m.access_check("bob", "salaries.db", UnixAccess::Write));
    }

    #[test]
    fn other_class() {
        let m = machine();
        assert!(!m.access_check("carol", "salaries.db", UnixAccess::Read));
        m.chmod("salaries.db", Mode::from_octal(0o644));
        assert!(m.access_check("carol", "salaries.db", UnixAccess::Read));
        assert!(!m.access_check("carol", "salaries.db", UnixAccess::Write));
    }

    #[test]
    fn root_bypasses() {
        let m = machine();
        assert!(m.access_check("root", "salaries.db", UnixAccess::Write));
        assert!(m.access_check("root", "salaries.db", UnixAccess::Execute));
    }

    #[test]
    fn unknowns_denied() {
        let m = machine();
        assert!(!m.access_check("mallory", "salaries.db", UnixAccess::Read));
        assert!(!m.access_check("alice", "ghost.db", UnixAccess::Read));
        assert!(!m.chmod("ghost.db", Mode::from_octal(0o777)));
    }

    #[test]
    fn supplementary_groups_count() {
        let m = machine();
        m.set_object(
            "reports",
            UnixObject {
                owner: 1,
                group: 200,
                mode: Mode::from_octal(0o060),
            },
        );
        // alice is in supplementary group 200.
        assert!(m.access_check("alice", "reports", UnixAccess::Read));
        assert!(m.access_check("alice", "reports", UnixAccess::Write));
        assert!(!m.access_check("bob", "reports", UnixAccess::Read));
    }

    #[test]
    fn mode_parsing_masks_extra_bits() {
        assert_eq!(Mode::from_octal(0o7777).0, 0o777);
    }

    #[test]
    fn owner_class_takes_precedence_over_group() {
        // Mode 0o070: owner has nothing even if also in the group.
        let m = machine();
        m.set_object(
            "weird",
            UnixObject {
                owner: 1000,
                group: 100,
                mode: Mode::from_octal(0o070),
            },
        );
        // alice is owner -> owner class (no bits) applies, not group.
        assert!(!m.access_check("alice", "weird", UnixAccess::Read));
        // bob matches the group class.
        assert!(m.access_check("bob", "weird", UnixAccess::Read));
    }
}
