//! A simulated Windows NT security model: accounts and groups in NT
//! domains, security identifiers (SIDs), and ordered discretionary ACLs.
//!
//! This is the operating-system layer underneath the paper's COM+
//! middleware (Figures 8-10): COM+ roles resolve to NT users/groups and
//! the final access check consults an ACL.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A security identifier. Real SIDs are structured (`S-1-5-21-...`); the
/// simulation keeps the string shape and derives them deterministically
/// from `domain\name`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sid(String);

impl Sid {
    /// Derives the SID for an account name in a domain.
    pub fn of(domain: &str, name: &str) -> Sid {
        // Stable readable encoding; uniqueness comes from the pair.
        Sid(format!("S-1-5-21-{}-{}", mangle(domain), mangle(name)))
    }

    /// The well-known *Everyone* SID.
    pub fn everyone() -> Sid {
        Sid("S-1-1-0".to_string())
    }

    /// The raw string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

fn mangle(s: &str) -> u64 {
    // FNV-1a, enough for a deterministic readable id.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl fmt::Display for Sid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Access rights as a bit mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessMask(pub u32);

impl AccessMask {
    /// Read access.
    pub const READ: AccessMask = AccessMask(0x1);
    /// Write access.
    pub const WRITE: AccessMask = AccessMask(0x2);
    /// Execute / launch.
    pub const EXECUTE: AccessMask = AccessMask(0x4);
    /// All of the above.
    pub const ALL: AccessMask = AccessMask(0x7);

    /// Union of two masks.
    pub fn union(self, other: AccessMask) -> AccessMask {
        AccessMask(self.0 | other.0)
    }

    /// True when every bit of `wanted` is present in `self`.
    pub fn covers(self, wanted: AccessMask) -> bool {
        self.0 & wanted.0 == wanted.0
    }

    /// True when the masks share any bit.
    pub fn intersects(self, other: AccessMask) -> bool {
        self.0 & other.0 != 0
    }
}

/// Whether an ACE grants or denies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AceKind {
    /// Access-allowed ACE.
    Allow,
    /// Access-denied ACE.
    Deny,
}

/// One access-control entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ace {
    /// Allow or deny.
    pub kind: AceKind,
    /// Which SID the entry applies to.
    pub trustee: Sid,
    /// Which rights it grants/denies.
    pub mask: AccessMask,
}

/// An ordered discretionary ACL. Evaluation follows Windows semantics:
/// walk entries in order, accumulating allowed bits; a deny ACE matching
/// any still-wanted bit fails the check immediately.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Acl {
    entries: Vec<Ace>,
}

impl Acl {
    /// Empty ACL (denies everything — "null DACL denies" simplification).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an ACE.
    pub fn push(&mut self, ace: Ace) {
        self.entries.push(ace);
    }

    /// Canonicalises: deny ACEs before allow ACEs (Windows canonical
    /// order), preserving relative order within each kind.
    pub fn canonicalize(&mut self) {
        self.entries.sort_by_key(|a| match a.kind {
            AceKind::Deny => 0,
            AceKind::Allow => 1,
        });
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The access check: does a token holding `sids` get all of
    /// `wanted`?
    pub fn access_check(&self, sids: &BTreeSet<Sid>, wanted: AccessMask) -> bool {
        let mut remaining = wanted;
        for ace in &self.entries {
            if !sids.contains(&ace.trustee) {
                continue;
            }
            match ace.kind {
                AceKind::Deny => {
                    if ace.mask.intersects(remaining) {
                        return false;
                    }
                }
                AceKind::Allow => {
                    remaining = AccessMask(remaining.0 & !ace.mask.0);
                    if remaining.0 == 0 {
                        return true;
                    }
                }
            }
        }
        remaining.0 == 0
    }
}

/// An NT domain: accounts, groups, and group membership.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NtDomain {
    name: String,
    users: BTreeSet<String>,
    /// group name -> member user names.
    groups: BTreeMap<String, BTreeSet<String>>,
}

impl NtDomain {
    /// A new, empty domain.
    pub fn new(name: impl Into<String>) -> Self {
        NtDomain {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The domain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a user account; returns its SID.
    pub fn add_user(&mut self, user: &str) -> Sid {
        self.users.insert(user.to_string());
        Sid::of(&self.name, user)
    }

    /// True when the account exists.
    pub fn has_user(&self, user: &str) -> bool {
        self.users.contains(user)
    }

    /// Creates a group; returns its SID.
    pub fn add_group(&mut self, group: &str) -> Sid {
        self.groups.entry(group.to_string()).or_default();
        Sid::of(&self.name, group)
    }

    /// Adds a user to a group (creating both as needed).
    pub fn add_member(&mut self, group: &str, user: &str) {
        self.users.insert(user.to_string());
        self.groups
            .entry(group.to_string())
            .or_default()
            .insert(user.to_string());
    }

    /// Removes a user from a group; returns false if not a member.
    pub fn remove_member(&mut self, group: &str, user: &str) -> bool {
        self.groups
            .get_mut(group)
            .is_some_and(|g| g.remove(user))
    }

    /// The user's *token*: their own SID, every group they belong to,
    /// and Everyone.
    pub fn token(&self, user: &str) -> BTreeSet<Sid> {
        let mut sids = BTreeSet::new();
        if self.users.contains(user) {
            sids.insert(Sid::of(&self.name, user));
            sids.insert(Sid::everyone());
            for (group, members) in &self.groups {
                if members.contains(user) {
                    sids.insert(Sid::of(&self.name, group));
                }
            }
        }
        sids
    }

    /// Groups a user belongs to.
    pub fn groups_of(&self, user: &str) -> Vec<&str> {
        self.groups
            .iter()
            .filter(|(_, m)| m.contains(user))
            .map(|(g, _)| g.as_str())
            .collect()
    }

    /// All user names.
    pub fn users(&self) -> impl Iterator<Item = &str> {
        self.users.iter().map(String::as_str)
    }

    /// All group names.
    pub fn groups(&self) -> impl Iterator<Item = &str> {
        self.groups.keys().map(String::as_str)
    }
}

/// A Windows machine: one NT domain plus securable objects with ACLs.
#[derive(Default)]
pub struct WindowsSecurity {
    domain: RwLock<NtDomain>,
    objects: RwLock<BTreeMap<String, Acl>>,
}

impl WindowsSecurity {
    /// A machine joined to `domain`.
    pub fn new(domain: &str) -> Self {
        WindowsSecurity {
            domain: RwLock::new(NtDomain::new(domain)),
            objects: RwLock::new(BTreeMap::new()),
        }
    }

    /// Mutates the domain database.
    pub fn with_domain<R>(&self, f: impl FnOnce(&mut NtDomain) -> R) -> R {
        f(&mut self.domain.write())
    }

    /// Reads the domain database.
    pub fn read_domain<R>(&self, f: impl FnOnce(&NtDomain) -> R) -> R {
        f(&self.domain.read())
    }

    /// Creates/replaces a securable object's ACL.
    pub fn set_acl(&self, object: &str, acl: Acl) {
        self.objects.write().insert(object.to_string(), acl);
    }

    /// Appends an ACE to an object's ACL (creating the object).
    pub fn add_ace(&self, object: &str, ace: Ace) {
        self.objects
            .write()
            .entry(object.to_string())
            .or_default()
            .push(ace);
    }

    /// The access check: token of `user` vs the object's ACL.
    /// Unknown objects and unknown users are denied.
    pub fn access_check(&self, user: &str, object: &str, wanted: AccessMask) -> bool {
        let token = self.domain.read().token(user);
        if token.is_empty() {
            return false;
        }
        let objects = self.objects.read();
        match objects.get(object) {
            Some(acl) => acl.access_check(&token, wanted),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sids_are_stable_and_distinct() {
        assert_eq!(Sid::of("DOM", "alice"), Sid::of("DOM", "alice"));
        assert_ne!(Sid::of("DOM", "alice"), Sid::of("DOM", "bob"));
        assert_ne!(Sid::of("DOM", "alice"), Sid::of("OTHER", "alice"));
        assert!(Sid::of("D", "u").as_str().starts_with("S-1-5-21-"));
    }

    #[test]
    fn masks() {
        let rw = AccessMask::READ.union(AccessMask::WRITE);
        assert!(rw.covers(AccessMask::READ));
        assert!(rw.covers(rw));
        assert!(!rw.covers(AccessMask::EXECUTE));
        assert!(rw.intersects(AccessMask::WRITE));
        assert!(!AccessMask::READ.intersects(AccessMask::WRITE));
        assert!(AccessMask::ALL.covers(rw));
    }

    #[test]
    fn allow_ace_grants() {
        let mut acl = Acl::new();
        let alice = Sid::of("D", "alice");
        acl.push(Ace {
            kind: AceKind::Allow,
            trustee: alice.clone(),
            mask: AccessMask::READ,
        });
        let token: BTreeSet<Sid> = [alice].into_iter().collect();
        assert!(acl.access_check(&token, AccessMask::READ));
        assert!(!acl.access_check(&token, AccessMask::WRITE));
        assert!(!acl.access_check(&token, AccessMask::READ.union(AccessMask::WRITE)));
    }

    #[test]
    fn deny_ace_wins() {
        let mut acl = Acl::new();
        let alice = Sid::of("D", "alice");
        acl.push(Ace {
            kind: AceKind::Deny,
            trustee: alice.clone(),
            mask: AccessMask::WRITE,
        });
        acl.push(Ace {
            kind: AceKind::Allow,
            trustee: alice.clone(),
            mask: AccessMask::ALL,
        });
        let token: BTreeSet<Sid> = [alice].into_iter().collect();
        assert!(acl.access_check(&token, AccessMask::READ));
        assert!(!acl.access_check(&token, AccessMask::WRITE));
    }

    #[test]
    fn canonicalize_moves_denies_first() {
        let mut acl = Acl::new();
        let s = Sid::of("D", "x");
        acl.push(Ace {
            kind: AceKind::Allow,
            trustee: s.clone(),
            mask: AccessMask::ALL,
        });
        acl.push(Ace {
            kind: AceKind::Deny,
            trustee: s.clone(),
            mask: AccessMask::WRITE,
        });
        // Before canonicalisation the allow matches first and grants all.
        let token: BTreeSet<Sid> = [s].into_iter().collect();
        assert!(acl.access_check(&token, AccessMask::WRITE));
        acl.canonicalize();
        assert!(!acl.access_check(&token, AccessMask::WRITE));
        assert_eq!(acl.len(), 2);
    }

    #[test]
    fn allow_bits_accumulate_across_aces() {
        let mut acl = Acl::new();
        let user = Sid::of("D", "u");
        let grp = Sid::of("D", "g");
        acl.push(Ace {
            kind: AceKind::Allow,
            trustee: user.clone(),
            mask: AccessMask::READ,
        });
        acl.push(Ace {
            kind: AceKind::Allow,
            trustee: grp.clone(),
            mask: AccessMask::WRITE,
        });
        let token: BTreeSet<Sid> = [user, grp].into_iter().collect();
        assert!(acl.access_check(&token, AccessMask::READ.union(AccessMask::WRITE)));
    }

    #[test]
    fn domain_membership_and_tokens() {
        let mut d = NtDomain::new("CORP");
        d.add_user("alice");
        d.add_group("Managers");
        d.add_member("Managers", "alice");
        assert!(d.has_user("alice"));
        assert_eq!(d.groups_of("alice"), vec!["Managers"]);
        let token = d.token("alice");
        assert!(token.contains(&Sid::of("CORP", "alice")));
        assert!(token.contains(&Sid::of("CORP", "Managers")));
        assert!(token.contains(&Sid::everyone()));
        // Unknown user gets an empty token.
        assert!(d.token("mallory").is_empty());
        assert!(d.remove_member("Managers", "alice"));
        assert!(!d.remove_member("Managers", "alice"));
        assert!(d.token("alice").len() == 2); // self + everyone
    }

    #[test]
    fn machine_access_checks() {
        let w = WindowsSecurity::new("CORP");
        w.with_domain(|d| {
            d.add_member("Payroll", "alice");
        });
        let payroll = Sid::of("CORP", "Payroll");
        w.add_ace(
            "SalariesDB",
            Ace {
                kind: AceKind::Allow,
                trustee: payroll,
                mask: AccessMask::READ.union(AccessMask::WRITE),
            },
        );
        assert!(w.access_check("alice", "SalariesDB", AccessMask::WRITE));
        assert!(!w.access_check("mallory", "SalariesDB", AccessMask::READ));
        assert!(!w.access_check("alice", "OtherDB", AccessMask::READ));
    }

    #[test]
    fn everyone_ace_reaches_all_known_users() {
        let w = WindowsSecurity::new("CORP");
        w.with_domain(|d| {
            d.add_user("alice");
            d.add_user("bob");
        });
        w.add_ace(
            "Bulletin",
            Ace {
                kind: AceKind::Allow,
                trustee: Sid::everyone(),
                mask: AccessMask::READ,
            },
        );
        assert!(w.access_check("alice", "Bulletin", AccessMask::READ));
        assert!(w.access_check("bob", "Bulletin", AccessMask::READ));
        // But not unknown accounts: no token, no access.
        assert!(!w.access_check("mallory", "Bulletin", AccessMask::READ));
    }
}
