//! Abstract reasoning over KeyNote condition expressions.
//!
//! The engine normalizes a comparison AST into disjunctive normal form
//! over per-attribute atoms and decides satisfiability with numeric
//! interval reasoning and string equality/inequality sets. Everything
//! it cannot model — dereferences, attribute-vs-attribute comparisons,
//! regex matches, arithmetic over attributes — becomes an opaque atom
//! that is assumed satisfiable, so the analyzer only ever claims
//! `unsatisfiable` or `tautological` when that is provable under
//! KeyNote's evaluation semantics (including its failure rule: a
//! numeric comparison over a non-numeric operand is *false*, which is
//! why numeric atoms are never classically negated).

use hetsec_keynote::ast::{CmpOp, Expr, Term};

/// Guard against DNF blowup; expressions bigger than this are treated
/// as unknown (satisfiable, not tautological).
const MAX_CONJUNCTS: usize = 512;

/// One literal an attribute is compared against.
#[derive(Clone, Debug)]
enum Lit {
    Num(f64),
    Str(String),
}

/// An atomic constraint in a conjunct.
#[derive(Clone, Debug)]
enum Atom {
    Const(bool),
    /// `attr op literal`, with the evaluator's numeric-mode flag.
    Cmp {
        attr: String,
        op: CmpOp,
        lit: Lit,
        numeric: bool,
    },
    /// Anything the engine cannot model.
    Opaque,
}

/// Three-valued verdict for one clause test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Provably never true.
    Unsat,
    /// Provably always true.
    Taut,
    /// Neither provable.
    Sat,
}

fn lit_of(t: &Term) -> Option<Lit> {
    match t {
        Term::Num(n) => Some(Lit::Num(*n)),
        Term::Str(s) => Some(Lit::Str(s.clone())),
        Term::Neg(inner) => match lit_of(inner)? {
            Lit::Num(n) => Some(Lit::Num(-n)),
            Lit::Str(_) => None,
        },
        _ => None,
    }
}

fn lit_num(l: &Lit) -> Option<f64> {
    match l {
        Lit::Num(n) => Some(*n),
        Lit::Str(s) => s.trim().parse::<f64>().ok(),
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Builds the atom for a comparison, constant-folding literal-only
/// comparisons the way the evaluator would run them.
fn cmp_atom(op: CmpOp, lhs: &Term, rhs: &Term) -> Atom {
    let numeric = lhs.is_numeric_syntax() || rhs.is_numeric_syntax();
    match (lit_of(lhs), lit_of(rhs)) {
        (Some(a), Some(b)) => {
            // Both sides literal: fold to a constant.
            let verdict = if numeric {
                match (lit_num(&a), lit_num(&b)) {
                    (Some(x), Some(y)) => cmp_values(op, x, y),
                    _ => false, // evaluation failure -> test is false
                }
            } else {
                let (Lit::Str(x), Lit::Str(y)) = (&a, &b) else {
                    return Atom::Opaque;
                };
                cmp_values(op, x.as_str(), y.as_str())
            };
            Atom::Const(verdict)
        }
        (None, Some(lit)) | (Some(lit), None) => {
            // One attribute side, one literal side. Normalize so the
            // attribute is on the left (flipping the operator when the
            // literal was on the left).
            let (attr_term, op) = if lit_of(lhs).is_none() {
                (lhs, op)
            } else {
                (rhs, flip(op))
            };
            match attr_term {
                Term::Attr(name) => Atom::Cmp {
                    attr: name.clone(),
                    op,
                    lit,
                    numeric,
                },
                _ => Atom::Opaque,
            }
        }
        (None, None) => Atom::Opaque,
    }
}

fn cmp_values<T: PartialOrd>(op: CmpOp, a: T, b: T) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Gt => a > b,
        CmpOp::Le => a <= b,
        CmpOp::Ge => a >= b,
    }
}

/// Negates one atom. Numeric comparisons are *not* total (a non-numeric
/// operand fails the test rather than satisfying its negation), so only
/// string equality/inequality — which is total — negates precisely;
/// everything else degrades to [`Atom::Opaque`].
fn negate_atom(a: &Atom) -> Atom {
    match a {
        Atom::Const(b) => Atom::Const(!b),
        Atom::Cmp {
            attr,
            op,
            lit,
            numeric: false,
        } if matches!(op, CmpOp::Eq | CmpOp::Ne) => Atom::Cmp {
            attr: attr.clone(),
            op: if *op == CmpOp::Eq { CmpOp::Ne } else { CmpOp::Eq },
            lit: lit.clone(),
            numeric: false,
        },
        _ => Atom::Opaque,
    }
}

/// DNF: a disjunction of conjunctions of atoms. `None` means "too big
/// to normalize" and is treated as unknown.
type Dnf = Vec<Vec<Atom>>;

fn to_dnf(e: &Expr, negated: bool) -> Option<Dnf> {
    let dnf = match (e, negated) {
        (Expr::True, false) | (Expr::False, true) => vec![vec![Atom::Const(true)]],
        (Expr::True, true) | (Expr::False, false) => vec![vec![Atom::Const(false)]],
        (Expr::Not(inner), _) => to_dnf(inner, !negated)?,
        (Expr::Or(a, b), false) | (Expr::And(a, b), true) => {
            let mut out = to_dnf(a, negated)?;
            out.extend(to_dnf(b, negated)?);
            out
        }
        (Expr::And(a, b), false) | (Expr::Or(a, b), true) => {
            let left = to_dnf(a, negated)?;
            let right = to_dnf(b, negated)?;
            if left.len().saturating_mul(right.len()) > MAX_CONJUNCTS {
                return None;
            }
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut c = l.clone();
                    c.extend(r.iter().cloned());
                    out.push(c);
                }
            }
            out
        }
        (Expr::Cmp { op, lhs, rhs }, false) => vec![vec![cmp_atom(*op, lhs, rhs)]],
        (Expr::Cmp { op, lhs, rhs }, true) => {
            vec![vec![negate_atom(&cmp_atom(*op, lhs, rhs))]]
        }
        (Expr::RegexMatch { .. }, _) => vec![vec![Atom::Opaque]],
    };
    if dnf.len() > MAX_CONJUNCTS {
        return None;
    }
    Some(dnf)
}

/// A numeric interval with open/closed bounds.
#[derive(Clone, Copy, Debug)]
pub struct Interval {
    pub lo: f64,
    pub lo_strict: bool,
    pub hi: f64,
    pub hi_strict: bool,
}

impl Interval {
    fn full() -> Interval {
        Interval {
            lo: f64::NEG_INFINITY,
            lo_strict: false,
            hi: f64::INFINITY,
            hi_strict: false,
        }
    }

    fn narrow(&mut self, op: CmpOp, v: f64) {
        match op {
            CmpOp::Eq => {
                self.narrow(CmpOp::Ge, v);
                self.narrow(CmpOp::Le, v);
            }
            CmpOp::Ne => {} // handled by the exclusion list
            CmpOp::Lt => {
                if v < self.hi || (v == self.hi && !self.hi_strict) {
                    self.hi = v;
                    self.hi_strict = true;
                }
            }
            CmpOp::Le => {
                if v < self.hi {
                    self.hi = v;
                    self.hi_strict = false;
                }
            }
            CmpOp::Gt => {
                if v > self.lo || (v == self.lo && !self.lo_strict) {
                    self.lo = v;
                    self.lo_strict = true;
                }
            }
            CmpOp::Ge => {
                if v > self.lo {
                    self.lo = v;
                    self.lo_strict = false;
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_strict || self.hi_strict))
    }

    fn contains(&self, v: f64) -> bool {
        let above = v > self.lo || (v == self.lo && !self.lo_strict);
        let below = v < self.hi || (v == self.hi && !self.hi_strict);
        above && below
    }
}

/// Per-attribute constraint state while deciding one conjunct.
#[derive(Default)]
struct AttrState {
    interval: Option<Interval>,
    ne_nums: Vec<f64>,
    eq_str: Option<String>,
    ne_strs: Vec<String>,
    has_numeric: bool,
}

impl AttrState {
    fn unsat(&self) -> bool {
        // String equality conflicts.
        if let Some(eq) = &self.eq_str {
            if self.ne_strs.iter().any(|n| n == eq) {
                return true;
            }
            if self.has_numeric {
                // The attribute is pinned to a string that must also
                // satisfy a numeric comparison: a non-numeric value
                // fails that comparison outright.
                let Some(v) = eq.trim().parse::<f64>().ok() else {
                    return true;
                };
                if let Some(iv) = &self.interval {
                    if !iv.contains(v) || self.ne_nums.contains(&v) {
                        return true;
                    }
                }
            }
        }
        if let Some(iv) = &self.interval {
            if iv.is_empty() {
                return true;
            }
            // A point interval excluded by a numeric !=.
            if iv.lo == iv.hi
                && !iv.lo_strict
                && !iv.hi_strict
                && self.ne_nums.contains(&iv.lo)
            {
                return true;
            }
        }
        false
    }
}

/// Decides one conjunct. Returns false (unsat) only when provable.
fn conjunct_sat(conjunct: &[Atom]) -> bool {
    use std::collections::HashMap;
    let mut states: HashMap<&str, AttrState> = HashMap::new();
    for atom in conjunct {
        match atom {
            Atom::Const(false) => return false,
            Atom::Const(true) | Atom::Opaque => {}
            Atom::Cmp {
                attr,
                op,
                lit,
                numeric,
            } => {
                let st = states.entry(attr.as_str()).or_default();
                if *numeric {
                    let Some(v) = lit_num(lit) else {
                        // Non-numeric literal in a numeric comparison:
                        // the test is false for every attribute value.
                        return false;
                    };
                    st.has_numeric = true;
                    if *op == CmpOp::Ne {
                        st.ne_nums.push(v);
                    } else {
                        st.interval.get_or_insert_with(Interval::full).narrow(*op, v);
                    }
                } else {
                    let Lit::Str(s) = lit else { continue };
                    match op {
                        CmpOp::Eq => {
                            if let Some(prev) = &st.eq_str {
                                if prev != s {
                                    return false;
                                }
                            } else {
                                st.eq_str = Some(s.clone());
                            }
                        }
                        CmpOp::Ne => st.ne_strs.push(s.clone()),
                        // String ordering comparisons: not modelled.
                        _ => {}
                    }
                }
            }
        }
    }
    states.values().all(|st| !st.unsat())
}

fn dnf_unsat(dnf: &Dnf) -> bool {
    dnf.iter().all(|c| !conjunct_sat(c))
}

/// Classifies one clause test.
pub fn status(e: &Expr) -> Status {
    if let Some(dnf) = to_dnf(e, false) {
        if dnf_unsat(&dnf) {
            return Status::Unsat;
        }
    }
    if let Some(neg) = to_dnf(e, true) {
        if dnf_unsat(&neg) {
            return Status::Taut;
        }
    }
    Status::Sat
}

/// Formats a witness number the way KeyNote renders numeric values:
/// integral values print without a fractional part.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Picks a concrete value inside `iv` avoiding the `ne` exclusions.
fn pick_in_interval(iv: &Interval, ne: &[f64]) -> Option<f64> {
    let mut candidates = Vec::new();
    if iv.lo.is_finite() {
        if !iv.lo_strict {
            candidates.push(iv.lo);
        }
        candidates.push(iv.lo + 1.0);
        candidates.push(iv.lo + 0.5);
    }
    if iv.hi.is_finite() {
        if !iv.hi_strict {
            candidates.push(iv.hi);
        }
        candidates.push(iv.hi - 1.0);
        candidates.push(iv.hi - 0.5);
    }
    if iv.lo.is_finite() && iv.hi.is_finite() {
        candidates.push((iv.lo + iv.hi) / 2.0);
    }
    if !iv.lo.is_finite() && !iv.hi.is_finite() {
        candidates.push(0.0);
        candidates.push(ne.iter().cloned().fold(0.0, f64::max) + 1.0);
    }
    candidates
        .into_iter()
        .find(|v| iv.contains(*v) && !ne.contains(v))
}

/// Harvests concrete satisfying assignments from the satisfiable DNF
/// conjuncts of `e`: one sorted `(attribute, value)` list per conjunct
/// the engine can solve. Opaque atoms are skipped (the assignment may
/// not satisfy them — callers validate candidate witnesses against the
/// real evaluator, so over-approximation only costs wasted probes).
pub(crate) fn witness_valuations(e: &Expr, out: &mut std::collections::BTreeSet<Vec<(String, String)>>) {
    use std::collections::BTreeMap;
    let Some(dnf) = to_dnf(e, false) else { return };
    'conjuncts: for conjunct in &dnf {
        if !conjunct_sat(conjunct) {
            continue;
        }
        // Re-derive the per-attribute state the sat check used.
        let mut states: BTreeMap<&str, AttrState> = BTreeMap::new();
        for atom in conjunct {
            let Atom::Cmp {
                attr,
                op,
                lit,
                numeric,
            } = atom
            else {
                continue;
            };
            let st = states.entry(attr.as_str()).or_default();
            if *numeric {
                let Some(v) = lit_num(lit) else {
                    continue 'conjuncts;
                };
                st.has_numeric = true;
                if *op == CmpOp::Ne {
                    st.ne_nums.push(v);
                } else {
                    st.interval.get_or_insert_with(Interval::full).narrow(*op, v);
                }
            } else if let Lit::Str(s) = lit {
                match op {
                    CmpOp::Eq => st.eq_str = Some(s.clone()),
                    CmpOp::Ne => st.ne_strs.push(s.clone()),
                    _ => {}
                }
            }
        }
        let mut valuation = Vec::new();
        for (attr, st) in &states {
            if let Some(eq) = &st.eq_str {
                valuation.push((attr.to_string(), eq.clone()));
            } else if st.has_numeric {
                let iv = st.interval.unwrap_or_else(Interval::full);
                match pick_in_interval(&iv, &st.ne_nums) {
                    Some(v) => valuation.push((attr.to_string(), fmt_num(v))),
                    None => continue 'conjuncts,
                }
            } else if !st.ne_strs.is_empty() {
                // An absent attribute reads as the empty string; only
                // materialize a value when "" is itself excluded.
                if st.ne_strs.iter().any(|s| s.is_empty()) {
                    let v = (0..)
                        .map(|i| format!("w{i}"))
                        .find(|c| !st.ne_strs.contains(c))
                        .expect("finite exclusion list");
                    valuation.push((attr.to_string(), v));
                }
            }
        }
        valuation.sort();
        out.insert(valuation);
    }
}

/// Collects every attribute name an expression reads directly
/// (dereference *targets* are dynamic and cannot be collected, but the
/// name-producing subterm's own attribute reads are).
pub fn referenced_attributes(e: &Expr, out: &mut Vec<String>) {
    fn term(t: &Term, out: &mut Vec<String>) {
        match t {
            Term::Attr(name) => out.push(name.clone()),
            Term::Deref(inner) | Term::Neg(inner) => term(inner, out),
            Term::Concat(a, b) => {
                term(a, out);
                term(b, out);
            }
            Term::Arith { lhs, rhs, .. } => {
                term(lhs, out);
                term(rhs, out);
            }
            Term::Str(_) | Term::Num(_) => {}
        }
    }
    match e {
        Expr::True | Expr::False => {}
        Expr::Or(a, b) | Expr::And(a, b) => {
            referenced_attributes(a, out);
            referenced_attributes(b, out);
        }
        Expr::Not(inner) => referenced_attributes(inner, out),
        Expr::Cmp { lhs, rhs, .. } => {
            term(lhs, out);
            term(rhs, out);
        }
        Expr::RegexMatch { lhs, pattern } => {
            term(lhs, out);
            term(pattern, out);
        }
    }
}

/// How a clause test constrains the conventional `now` attribute.
pub enum NowVerdict {
    /// The test does not mention `now`.
    Unconstrained,
    /// Some satisfiable conjunct admits `now = t`.
    LiveAt,
    /// No conjunct admits `now = t`; the payload says whether every
    /// window lies entirely before t (expired), entirely after
    /// (not yet valid), or mixed.
    DeadAt { expired: bool, future: bool },
}

/// Evaluates the validity of a test at time `t`, where validity windows
/// follow the `now` comparison convention.
pub fn now_verdict(e: &Expr, t: f64) -> NowVerdict {
    let mut names = Vec::new();
    referenced_attributes(e, &mut names);
    if !names.iter().any(|n| n == "now") {
        return NowVerdict::Unconstrained;
    }
    let Some(dnf) = to_dnf(e, false) else {
        return NowVerdict::LiveAt; // too big: assume live
    };
    let mut all_past = true;
    let mut all_future = true;
    let mut any_window = false;
    for conjunct in &dnf {
        if !conjunct_sat(conjunct) {
            continue;
        }
        // The interval `now` is constrained to in this conjunct.
        let mut iv = Interval::full();
        let mut mentions_now = false;
        for atom in conjunct {
            if let Atom::Cmp {
                attr,
                op,
                lit,
                numeric: true,
            } = atom
            {
                if attr == "now" {
                    if let Some(v) = lit_num(lit) {
                        mentions_now = true;
                        if *op != CmpOp::Ne {
                            iv.narrow(*op, v);
                        }
                    }
                }
            }
        }
        if !mentions_now {
            // A live conjunct without a now-constraint keeps the
            // assertion valid at any time.
            return NowVerdict::LiveAt;
        }
        if iv.is_empty() {
            continue;
        }
        any_window = true;
        if iv.contains(t) {
            return NowVerdict::LiveAt;
        }
        if !(iv.hi < t || (iv.hi == t && iv.hi_strict)) {
            all_past = false;
        }
        if !(iv.lo > t || (iv.lo == t && iv.lo_strict)) {
            all_future = false;
        }
    }
    if !any_window {
        // Every conjunct was unsatisfiable; HS005 reports that.
        return NowVerdict::LiveAt;
    }
    NowVerdict::DeadAt {
        expired: all_past,
        future: all_future,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_keynote::parser::parse_expression;

    fn st(src: &str) -> Status {
        status(&parse_expression(src).unwrap())
    }

    #[test]
    fn contradictory_intervals_are_unsat() {
        assert_eq!(st("level > 5 && level < 3"), Status::Unsat);
        assert_eq!(st("level >= 4 && level < 4"), Status::Unsat);
        assert_eq!(st("level == 2 && level > 7"), Status::Unsat);
    }

    #[test]
    fn contradictory_equalities_are_unsat() {
        assert_eq!(st("oper == \"read\" && oper == \"write\""), Status::Unsat);
        assert_eq!(st("oper == \"read\" && oper != \"read\""), Status::Unsat);
        assert_eq!(st("oper == \"read\" && level > 1 && oper == \"w\""), Status::Unsat);
    }

    #[test]
    fn string_pinned_to_non_number_fails_numeric_test() {
        assert_eq!(st("oper == \"read\" && oper > 3"), Status::Unsat);
        assert_eq!(st("oper == \"7\" && oper > 3"), Status::Sat);
    }

    #[test]
    fn satisfiable_stays_sat() {
        assert_eq!(st("level > 3 && level < 9"), Status::Sat);
        assert_eq!(st("oper == \"read\" || oper == \"write\""), Status::Sat);
        assert_eq!(st("oper ~= \"^r\" && level < 1"), Status::Sat);
    }

    #[test]
    fn string_tautology_detected() {
        assert_eq!(st("oper == \"x\" || oper != \"x\""), Status::Taut);
        assert_eq!(st("true"), Status::Taut);
    }

    #[test]
    fn numeric_disjunction_is_not_claimed_tautological() {
        // level = "" fails both arms at runtime; claiming Taut would be
        // wrong, and the engine knows not to negate numeric atoms.
        assert_eq!(st("level > 5 || level <= 5"), Status::Sat);
    }

    #[test]
    fn literal_folding() {
        assert_eq!(st("1 < 2"), Status::Taut);
        assert_eq!(st("\"a\" == \"b\""), Status::Unsat);
        assert_eq!(st("2 + 2 == 5"), Status::Sat); // arithmetic is opaque
    }

    #[test]
    fn now_windows() {
        let e = parse_expression("app_domain == \"WebCom\" && now < 100").unwrap();
        assert!(matches!(
            now_verdict(&e, 200.0),
            NowVerdict::DeadAt { expired: true, .. }
        ));
        assert!(matches!(now_verdict(&e, 50.0), NowVerdict::LiveAt));
        let e = parse_expression("now > 1000 && now < 2000").unwrap();
        assert!(matches!(
            now_verdict(&e, 200.0),
            NowVerdict::DeadAt { future: true, .. }
        ));
        let e = parse_expression("oper == \"read\"").unwrap();
        assert!(matches!(now_verdict(&e, 0.0), NowVerdict::Unconstrained));
        let e = parse_expression("now < 100 || oper == \"read\"").unwrap();
        assert!(matches!(now_verdict(&e, 200.0), NowVerdict::LiveAt));
    }
}
