//! The lint admission gate: static analysis as a pre-commit check on
//! policy propagation (closes the ROADMAP analyzer follow-on).
//!
//! [`LintAdmissionGate`] plugs the analyzer into `PolicyBus::apply`
//! via the `AdmissionGate` trait from `hetsec-translate`: each
//! candidate unified policy is encoded to its KeyNote credential form
//! (the same `encode_policy` the `hetsec encode` CLI uses) and linted;
//! findings the *candidate* trips that the *current* policy did not
//! are returned as objections, in the same `HS0xx`-code + severity
//! shape as `hetsec lint --format json`. The bus rejects on any new
//! `error`-severity finding. Pre-existing findings are grandfathered:
//! the gate only blocks regressions, so standing debt does not freeze
//! all maintenance.
//!
//! Two things make the gate scale with the *change*, not the store:
//!
//! * reviews run on a cached [`IncrementalAnalyzer`] — the candidate
//!   engine evolves from the current one by applying the fingerprint
//!   delta between the two encodings, so only the dirtied passes
//!   re-run;
//! * finding identity is `(code, assertion fingerprint)`, not message
//!   text, so renamed principals or reworded messages can neither mask
//!   a new objection nor resurrect a grandfathered one.
//!
//! On top of the syntactic diff, the gate runs the semantic verdict
//! diff ([`crate::semdiff`]) and attaches concrete witnesses: the
//! exact (principal, request) pairs whose verdict the change flips.
//! Flips that mirror the declared RBAC change are reported as `info`
//! notes (they are the intent); flips the RBAC relations do *not*
//! explain keep their native HS015 (error) / HS016 (warn) severity.

use crate::diag::Severity;
use crate::incremental::{IncrementalAnalyzer, StoreEdit};
use crate::semdiff::{self, Witness};
use crate::{AnalysisOptions, Finding, Report};
use hetsec_keynote::compiled::CompiledStore;
use hetsec_rbac::{Domain, ObjectType, Permission, RbacPolicy, Role};
use hetsec_translate::{
    encode_policy, AdmissionFinding, AdmissionGate, AdmissionWitness, PrincipalDirectory,
    SymbolicDirectory,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Most recently reviewed policies kept warm, as (policy hash, engine,
/// report) entries. Two covers the steady state (current + last
/// candidate, which becomes the next current on commit); four absorbs
/// rejected candidates without evicting the current policy.
const CACHE_CAPACITY: usize = 4;

struct GateCache {
    policy_hash: u64,
    engine: IncrementalAnalyzer,
    report: Report,
}

/// An [`AdmissionGate`] that lints the KeyNote encoding of each
/// candidate policy and objects to every *new* finding, with verdict
/// witnesses.
pub struct LintAdmissionGate {
    webcom_key: String,
    now: Option<f64>,
    revoked: BTreeSet<String>,
    known_attributes: BTreeSet<String>,
    cache: Mutex<Vec<GateCache>>,
}

impl Default for LintAdmissionGate {
    fn default() -> Self {
        let base = AnalysisOptions::default();
        LintAdmissionGate {
            webcom_key: base.webcom_key,
            now: base.now,
            revoked: base.revoked,
            known_attributes: base.known_attributes,
            cache: Mutex::new(Vec::new()),
        }
    }
}

fn policy_hash(policy: &RbacPolicy) -> u64 {
    let json = serde_json::to_string(policy).expect("policy serializes");
    let mut h = DefaultHasher::new();
    json.hash(&mut h);
    h.finish()
}

impl LintAdmissionGate {
    /// A gate with the default analyzer vocabulary and no revocations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the analysis time for validity-window checks.
    pub fn with_now(mut self, now: f64) -> Self {
        self.now = Some(now);
        self
    }

    /// Marks a key as revoked, exactly as at request time.
    pub fn revoke(mut self, key: impl Into<String>) -> Self {
        self.revoked.insert(key.into());
        self
    }

    fn options(&self, policy: &RbacPolicy) -> AnalysisOptions {
        AnalysisOptions {
            rbac: Some(policy.clone()),
            webcom_key: self.webcom_key.clone(),
            now: self.now,
            revoked: self.revoked.clone(),
            known_attributes: self.known_attributes.clone(),
        }
    }

    /// Returns the analyzed engine + report for `policy`, served from
    /// the gate cache when the policy was reviewed before, otherwise
    /// evolved incrementally from the closest cached engine (or built
    /// cold on first contact). The returned entry is moved to the
    /// cache front.
    fn analyzed(
        &self,
        policy: &RbacPolicy,
        directory: &SymbolicDirectory,
    ) -> (IncrementalAnalyzer, Report) {
        let hash = policy_hash(policy);
        let mut cache = self.cache.lock().expect("gate cache lock");
        if let Some(pos) = cache.iter().position(|e| e.policy_hash == hash) {
            let entry = cache.remove(pos);
            let out = (entry.engine.clone(), entry.report.clone());
            cache.insert(0, entry);
            return out;
        }

        let target = encode_policy(policy, &self.webcom_key, directory);
        let (mut engine, seeded) = match cache.first() {
            Some(nearest) => {
                // Evolve: apply the fingerprint delta between the cached
                // store and the target encoding, so unchanged assertions
                // keep their cached pass results.
                let mut engine = nearest.engine.clone();
                engine.set_rbac(Some(policy.clone()));
                let mut target_store = CompiledStore::default();
                for a in &target {
                    target_store.add(a);
                }
                let delta = engine.store().delta(&target_store);
                for &idx in delta.removed.iter().rev() {
                    engine.apply(StoreEdit::Remove(idx));
                }
                for &idx in &delta.added {
                    engine.apply(StoreEdit::Add(target[idx].clone()));
                }
                (engine, true)
            }
            None => (
                IncrementalAnalyzer::new(target, self.options(policy)),
                false,
            ),
        };
        let _ = seeded;
        let report = engine.analyze(directory);
        cache.insert(
            0,
            GateCache {
                policy_hash: hash,
                engine: engine.clone(),
                report: report.clone(),
            },
        );
        cache.truncate(CACHE_CAPACITY);
        (engine, report)
    }
}

/// Identity of a finding across two lint runs: its code plus the
/// *fingerprint* of the assertion it points at (hex), falling back to
/// the message for store-level findings (escalation, cycles) that name
/// no assertion. Assertion indices shift when rows are added or
/// removed, and messages change when principals are renamed — the
/// fingerprint tracks the credential itself.
fn finding_key(f: &Finding, fingerprints: &[[u8; 32]]) -> (String, String) {
    let anchor = match f.assertion.and_then(|idx| fingerprints.get(idx)) {
        Some(fp) => fp.iter().map(|b| format!("{b:02x}")).collect::<String>(),
        None => f.message.clone(),
    };
    (f.code.as_str().to_string(), anchor)
}

/// True when the RBAC relations themselves explain the flip: the
/// witness's (user, tuple) verdict moves in the same direction between
/// the two policies. Such flips are the declared intent of the change,
/// not drift.
fn change_explains(w: &Witness, current: &RbacPolicy, candidate: &RbacPolicy) -> bool {
    // Resolve the witness principal to an RBAC user by forward-mapping
    // the policies' own user sets (exact), rather than reversing the
    // key text (heuristic and dependent on what the directory has
    // issued so far).
    let directory = SymbolicDirectory::default();
    let mut users = current.users();
    users.extend(candidate.users());
    let Some(user) = users.into_iter().find(|u| directory.key_of(u) == w.principal) else {
        return false;
    };
    let attr = |name: &str| {
        w.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let (Some(d), Some(r), Some(t), Some(p)) = (
        attr("Domain"),
        attr("Role"),
        attr("ObjectType"),
        attr("Permission"),
    ) else {
        return false;
    };
    let verdict = |policy: &RbacPolicy| {
        policy.check_access_as(
            &user,
            &Domain::new(d),
            &Role::new(r),
            &ObjectType::new(t),
            &Permission::new(p),
        )
    };
    verdict(current) == w.before && verdict(candidate) == w.after
}

impl AdmissionGate for LintAdmissionGate {
    fn review(&self, current: &RbacPolicy, candidate: &RbacPolicy) -> Vec<AdmissionFinding> {
        let directory = SymbolicDirectory::default();
        let (current_engine, current_report) = self.analyzed(current, &directory);
        let (candidate_engine, candidate_report) = self.analyzed(candidate, &directory);

        let before: BTreeSet<(String, String)> = current_report
            .findings
            .iter()
            .map(|f| finding_key(f, current_engine.store().fingerprints()))
            .collect();
        let mut findings: Vec<AdmissionFinding> = candidate_report
            .findings
            .iter()
            .filter(|f| !before.contains(&finding_key(f, candidate_engine.store().fingerprints())))
            .map(|f| AdmissionFinding {
                code: f.code.as_str().to_string(),
                severity: f.severity().as_str().to_string(),
                message: f.message.clone(),
                witnesses: Vec::new(),
            })
            .collect();

        // Semantic verdict diff: which requests decide differently.
        let opts = self.options(candidate);
        let diff = semdiff::diff_verdicts(
            current_engine.assertions(),
            candidate_engine.assertions(),
            &opts,
        );
        for w in &diff.witnesses {
            let f = semdiff::witness_finding(w);
            let severity = if change_explains(w, current, candidate) {
                Severity::Info.as_str()
            } else {
                f.severity().as_str()
            };
            let verdict = |granted: bool| if granted { "GRANT" } else { "DENY" };
            findings.push(AdmissionFinding {
                code: f.code.as_str().to_string(),
                severity: severity.to_string(),
                message: f.message,
                witnesses: vec![AdmissionWitness {
                    principal: w.principal.clone(),
                    attributes: w.attributes_display(),
                    before: verdict(w.before).to_string(),
                    after: verdict(w.after).to_string(),
                }],
            });
        }

        // Satellite of the validity pass: without an analysis time the
        // HS010 window checks cannot run — say so instead of silently
        // passing expired credentials.
        if self.now.is_none() {
            findings.push(AdmissionFinding {
                code: "HS010".to_string(),
                severity: Severity::Warn.as_str().to_string(),
                message: "analysis time not set: validity-window checks (HS010) were \
                          skipped; construct the gate with with_now to enable them"
                    .to_string(),
                witnesses: Vec::new(),
            });
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_rbac::fixtures::salaries_policy;
    use hetsec_rbac::RoleAssignment;

    #[test]
    fn clean_change_raises_no_objection() {
        let gate = LintAdmissionGate::new().with_now(100.0);
        let current = salaries_policy();
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("carol", "Sales", "Manager"));
        let findings = gate.review(&current, &candidate);
        assert!(
            !findings.iter().any(AdmissionFinding::is_error),
            "{findings:?}"
        );
        // The widening the change *declares* is reported as an info
        // note with a concrete witness, not as a blocking objection.
        let widenings: Vec<_> = findings.iter().filter(|f| f.code == "HS015").collect();
        assert!(!widenings.is_empty(), "{findings:?}");
        assert!(widenings.iter().all(|f| f.severity == "info"), "{widenings:?}");
        assert!(
            widenings.iter().any(|f| {
                f.witnesses.iter().any(|w| {
                    w.principal == "Kcarol"
                        && w.before == "DENY"
                        && w.after == "GRANT"
                        && w.attributes.contains("Role=\"Manager\"")
                })
            }),
            "{widenings:?}"
        );
    }

    #[test]
    fn missing_analysis_time_is_called_out() {
        // Satellite: `now: None` silently skips HS010 — the gate must
        // say so with a warning-severity note.
        let gate = LintAdmissionGate::new();
        let current = salaries_policy();
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("carol", "CORP", "Manager"));
        let findings = gate.review(&current, &candidate);
        let note = findings
            .iter()
            .find(|f| f.code == "HS010" && f.severity == "warn")
            .expect("skip note present");
        assert!(note.message.contains("skipped"), "{note:?}");
        // And it never appears once a time is supplied.
        let gate = LintAdmissionGate::new().with_now(100.0);
        let findings = gate.review(&current, &candidate);
        assert!(
            !findings.iter().any(|f| f.code == "HS010"),
            "{findings:?}"
        );
    }

    #[test]
    fn granting_to_a_revoked_key_is_a_new_error() {
        let gate = LintAdmissionGate::new().with_now(100.0).revoke("Kmallory");
        let current = salaries_policy();
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("mallory", "CORP", "Manager"));
        let findings = gate.review(&current, &candidate);
        assert!(
            findings.iter().any(|f| f.code == "HS013" && f.is_error()),
            "{findings:?}"
        );
    }

    #[test]
    fn standing_debt_is_grandfathered() {
        // The revoked key is already licensed in the *current* policy:
        // re-linting must not object to unrelated changes.
        let gate = LintAdmissionGate::new().with_now(100.0).revoke("Kmallory");
        let mut current = salaries_policy();
        current.assign(RoleAssignment::new("mallory", "CORP", "Manager"));
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("carol", "CORP", "Manager"));
        let findings = gate.review(&current, &candidate);
        assert!(
            !findings.iter().any(AdmissionFinding::is_error),
            "{findings:?}"
        );
    }

    #[test]
    fn repeated_message_does_not_mask_a_new_finding() {
        // Satellite regression: the old gate keyed findings on
        // (code, severity, message). A second credential licensing the
        // same revoked key produces a byte-identical HS013 message, so
        // message keying grandfathers it away; fingerprint keying sees
        // a different assertion and objects.
        let gate = LintAdmissionGate::new().with_now(100.0).revoke("Kmallory");
        let mut current = salaries_policy();
        current.assign(RoleAssignment::new("mallory", "CORP", "Manager"));
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("mallory", "CORP", "Clerk"));
        let findings = gate.review(&current, &candidate);
        assert!(
            findings.iter().any(|f| f.code == "HS013"
                && f.is_error()
                && f.message.contains("Kmallory")),
            "fingerprint keying must surface the second revoked-licensee \
             credential: {findings:?}"
        );
    }

    #[test]
    fn review_is_served_incrementally_after_warmup() {
        let gate = LintAdmissionGate::new().with_now(100.0);
        let current = salaries_policy();
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("carol", "CORP", "Manager"));
        gate.review(&current, &candidate);
        // Second review of the same pair: both policies come from the
        // gate cache and no pass re-runs at all.
        gate.review(&current, &candidate);
        let cache = gate.cache.lock().unwrap();
        assert!(cache.len() >= 2, "both policies cached");
        for entry in cache.iter() {
            let s = entry.engine.stats();
            assert!(
                s.assertions_cached + s.assertions_relinted > 0,
                "engines analyzed at least once"
            );
        }
    }
}
