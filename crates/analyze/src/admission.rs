//! The lint admission gate: static analysis as a pre-commit check on
//! policy propagation (closes the ROADMAP analyzer follow-on).
//!
//! [`LintAdmissionGate`] plugs the four-pass analyzer into
//! `PolicyBus::apply` via the `AdmissionGate` trait from
//! `hetsec-translate`: each candidate unified policy is encoded to its
//! KeyNote credential form (the same `encode_policy` the `hetsec
//! encode` CLI uses) and linted; findings the *candidate* trips that
//! the *current* policy did not are returned as objections, in the
//! same `HS0xx`-code + severity shape as `hetsec lint --format json`.
//! The bus rejects on any new `error`-severity finding, so a change
//! that would grant authority to a revoked key — or otherwise
//! introduce an error-class defect into the credential store — never
//! commits and never reaches an endpoint. Pre-existing findings are
//! grandfathered: the gate only blocks regressions, so standing debt
//! does not freeze all maintenance.

use crate::{analyze_with_directory, AnalysisOptions, Report};
use hetsec_rbac::RbacPolicy;
use hetsec_translate::{
    encode_policy, AdmissionFinding, AdmissionGate, SymbolicDirectory,
};
use std::collections::BTreeSet;

/// An [`AdmissionGate`] that lints the KeyNote encoding of each
/// candidate policy and objects to every *new* finding.
pub struct LintAdmissionGate {
    webcom_key: String,
    now: Option<f64>,
    revoked: BTreeSet<String>,
    known_attributes: BTreeSet<String>,
}

impl Default for LintAdmissionGate {
    fn default() -> Self {
        let base = AnalysisOptions::default();
        LintAdmissionGate {
            webcom_key: base.webcom_key,
            now: base.now,
            revoked: base.revoked,
            known_attributes: base.known_attributes,
        }
    }
}

impl LintAdmissionGate {
    /// A gate with the default analyzer vocabulary and no revocations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the analysis time for validity-window checks.
    pub fn with_now(mut self, now: f64) -> Self {
        self.now = Some(now);
        self
    }

    /// Marks a key as revoked, exactly as at request time.
    pub fn revoke(mut self, key: impl Into<String>) -> Self {
        self.revoked.insert(key.into());
        self
    }

    /// Lints the KeyNote encoding of `policy` with this gate's options.
    /// The analysis shares the encoding directory, so every key the
    /// encoder issued resolves back to its exact user.
    fn lint(&self, policy: &RbacPolicy) -> Report {
        let directory = SymbolicDirectory::default();
        let assertions = encode_policy(policy, &self.webcom_key, &directory);
        let opts = AnalysisOptions {
            rbac: Some(policy.clone()),
            webcom_key: self.webcom_key.clone(),
            now: self.now,
            revoked: self.revoked.clone(),
            known_attributes: self.known_attributes.clone(),
        };
        analyze_with_directory(&assertions, &opts, &directory)
    }
}

/// Identity of a finding across two lint runs. Assertion indices shift
/// when rows are added or removed, so findings are keyed by what they
/// say, not where they point.
fn key(code: &str, severity: &str, message: &str) -> (String, String, String) {
    (code.to_string(), severity.to_string(), message.to_string())
}

impl AdmissionGate for LintAdmissionGate {
    fn review(&self, current: &RbacPolicy, candidate: &RbacPolicy) -> Vec<AdmissionFinding> {
        let before: BTreeSet<_> = self
            .lint(current)
            .findings
            .iter()
            .map(|f| key(f.code.as_str(), f.severity().as_str(), &f.message))
            .collect();
        self.lint(candidate)
            .findings
            .iter()
            .filter(|f| !before.contains(&key(f.code.as_str(), f.severity().as_str(), &f.message)))
            .map(|f| AdmissionFinding {
                code: f.code.as_str().to_string(),
                severity: f.severity().as_str().to_string(),
                message: f.message.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsec_rbac::fixtures::salaries_policy;
    use hetsec_rbac::RoleAssignment;

    #[test]
    fn clean_change_raises_no_objection() {
        let gate = LintAdmissionGate::new();
        let current = salaries_policy();
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("carol", "CORP", "Manager"));
        assert!(gate.review(&current, &candidate).is_empty());
    }

    #[test]
    fn granting_to_a_revoked_key_is_a_new_error() {
        let gate = LintAdmissionGate::new().revoke("Kmallory");
        let current = salaries_policy();
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("mallory", "CORP", "Manager"));
        let findings = gate.review(&current, &candidate);
        assert!(
            findings.iter().any(|f| f.code == "HS013" && f.is_error()),
            "{findings:?}"
        );
    }

    #[test]
    fn standing_debt_is_grandfathered() {
        // The revoked key is already licensed in the *current* policy:
        // re-linting must not object to unrelated changes.
        let gate = LintAdmissionGate::new().revoke("Kmallory");
        let mut current = salaries_policy();
        current.assign(RoleAssignment::new("mallory", "CORP", "Manager"));
        let mut candidate = current.clone();
        candidate.assign(RoleAssignment::new("carol", "CORP", "Manager"));
        let findings = gate.review(&current, &candidate);
        assert!(
            !findings.iter().any(AdmissionFinding::is_error),
            "{findings:?}"
        );
    }
}
