//! Delegation-graph analysis over the compiled store's interned
//! principal ids.
//!
//! The graph has one node per interned principal and one edge
//! `authorizer -> licensee` per (assertion, licensee) pair — the same
//! edges the compliance fixpoint propagates support along (in the
//! opposite direction). Three findings come out of it: cycles
//! (harmless to the monotone fixpoint but almost always a policy
//! mistake), credentials whose authorizer can never be reached from
//! `POLICY` (they can never contribute to a verdict), and licensees
//! never bound to any key, user, or authorizer (requests naming them
//! can never be granted anything).

use crate::diag::{Finding, LintCode};
use hetsec_keynote::compiled::{CompiledStore, PrincipalId};
use hetsec_translate::PrincipalDirectory;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Display text for an interned principal.
fn name(store: &CompiledStore, id: PrincipalId) -> String {
    if store.policy_id() == Some(id) {
        return "POLICY".to_string();
    }
    store
        .principals()
        .text(id)
        .unwrap_or("<unknown>")
        .to_string()
}

/// Tarjan's strongly-connected components, iteratively.
fn sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // (node, next child position)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                call.last_mut().expect("non-empty").1 += 1;
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    out
}

pub struct GraphAnalysis {
    pub findings: Vec<Finding>,
    /// Principals reachable from POLICY along delegation edges.
    pub reachable: Vec<bool>,
}

/// Weakly-connected components of the delegation graph, as lists of
/// *assertion indices*: two assertions are connected when they share a
/// principal (authorizer or licensee). Each component's member list is
/// ascending; components are ordered by smallest member. Assertions
/// whose principals overlap transitively land in one component, so
/// every graph finding is decidable within a single component.
pub(crate) fn weak_components(store: &CompiledStore) -> Vec<Vec<usize>> {
    let n = store.principals().len();
    // Union-find over principal ids.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (_, authorizer, licensees) in store.delegations() {
        let a = find(&mut parent, authorizer as usize);
        for &l in licensees {
            let b = find(&mut parent, l as usize);
            if a != b {
                parent[b] = a;
            }
        }
    }
    let mut by_root: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::new();
    for (idx, authorizer, _) in store.delegations() {
        let root = find(&mut parent, authorizer as usize);
        let members = by_root.entry(root).or_insert_with(|| {
            order.push(root);
            Vec::new()
        });
        members.push(idx);
    }
    order
        .into_iter()
        .map(|root| by_root.remove(&root).expect("component registered"))
        .collect()
}

/// Structured graph findings for one weak component, expressed without
/// assertion indices so the result can be cached across store edits:
/// member *positions* refer into the `members` slice the component was
/// analyzed with, and messages that embed indices are regenerated at
/// materialization time.
#[derive(Clone, Debug)]
pub(crate) struct ComponentFindings {
    /// Fully-formatted cycle messages (they name principals only).
    pub cycles: Vec<String>,
    /// `(member position, authorizer display name)` of every credential
    /// whose authorizer is unreachable from POLICY.
    pub unreachable: Vec<(usize, String)>,
    /// `(licensee display name, member positions mentioning it)` for
    /// every licensee never bound to a key; positions ascending.
    pub dangling: Vec<(String, Vec<usize>)>,
}

/// Runs the three graph checks on one weak component. The result
/// depends only on the member assertions' contents (plus the fixed
/// directory and admin key), never on where the members sit in the
/// store — the contract the incremental engine's component cache
/// relies on.
pub(crate) fn component_findings(
    store: &CompiledStore,
    directory: &dyn PrincipalDirectory,
    webcom_key: &str,
    members: &[usize],
) -> ComponentFindings {
    // Local principal universe, in deterministic (id) order.
    let mut ids: BTreeSet<PrincipalId> = BTreeSet::new();
    for &m in members {
        if let Some(a) = store.authorizer_of(m) {
            ids.insert(a);
        }
        for &l in store.licensees_of(m).unwrap_or(&[]) {
            ids.insert(l);
        }
    }
    let locals: Vec<PrincipalId> = ids.iter().copied().collect();
    let local_of: BTreeMap<PrincipalId, usize> = locals
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let n = locals.len();

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    let mut authors = vec![false; n];
    for &m in members {
        let a = local_of[&store.authorizer_of(m).expect("member exists")];
        authors[a] = true;
        for &l in store.licensees_of(m).unwrap_or(&[]) {
            let b = local_of[&l];
            adj[a].push(b);
            if a == b {
                self_loop[b] = true;
            }
        }
    }

    // Cycles: SCCs with more than one node, or an explicit self-loop.
    let mut cycles = Vec::new();
    for comp in sccs(n, &adj) {
        let cyclic = comp.len() > 1 || (comp.len() == 1 && self_loop[comp[0]]);
        if !cyclic {
            continue;
        }
        let mut names: Vec<String> = comp.iter().map(|&v| name(store, locals[v])).collect();
        names.sort();
        cycles.push(format!(
            "delegation cycle among {{{}}}: these principals only re-license each other",
            names.join(", ")
        ));
    }
    cycles.sort();

    // Reachability from POLICY: POLICY licenses its licensees, who
    // license theirs. A credential whose authorizer is outside this
    // set can never raise the POLICY verdict. Directed reachability
    // never leaves the weak component, so the BFS is local.
    let mut reachable = vec![false; n];
    if let Some(policy) = store.policy_id() {
        if let Some(&p) = local_of.get(&policy) {
            let mut queue = VecDeque::new();
            reachable[p] = true;
            queue.push_back(p);
            while let Some(v) = queue.pop_front() {
                for &w in &adj[v] {
                    if !reachable[w] {
                        reachable[w] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
    }
    let mut unreachable = Vec::new();
    for (pos, &m) in members.iter().enumerate() {
        let authorizer = store.authorizer_of(m).expect("member exists");
        if store.policy_id() == Some(authorizer) {
            continue;
        }
        if !reachable[local_of[&authorizer]] {
            unreachable.push((pos, name(store, authorizer)));
        }
    }

    // Dangling licensees: mentioned in some licensees formula, but the
    // text is not key material, not a directory-resolvable principal,
    // and never authors an assertion — no request can ever present it.
    let mut dangling_map: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (pos, &m) in members.iter().enumerate() {
        for &l in store.licensees_of(m).unwrap_or(&[]) {
            let lv = local_of[&l];
            if authors[lv] || store.policy_id() == Some(l) {
                continue;
            }
            let text = store.principals().text(l).unwrap_or("");
            let is_key_material = text.starts_with("rsa-sim:");
            if is_key_material || text == webcom_key || directory.user_of(text).is_some() {
                continue;
            }
            dangling_map.entry(lv).or_default().insert(pos);
        }
    }
    let mut dangling: Vec<(String, Vec<usize>)> = dangling_map
        .into_iter()
        .map(|(lv, positions)| {
            (
                name(store, locals[lv]),
                positions.into_iter().collect::<Vec<_>>(),
            )
        })
        .collect();
    dangling.sort();

    ComponentFindings {
        cycles,
        unreachable,
        dangling,
    }
}

/// Expands one component's structured findings into [`Finding`]s, with
/// member positions resolved against the (possibly shifted) current
/// assertion indices in `members`.
pub(crate) fn materialize_component(cf: &ComponentFindings, members: &[usize]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for message in &cf.cycles {
        findings.push(Finding {
            code: LintCode::DelegationCycle,
            assertion: None,
            line_start: None,
            line_end: None,
            message: message.clone(),
            hint: "break the cycle by removing one delegation, or anchor one member under POLICY"
                .to_string(),
        });
    }
    for (pos, authorizer_name) in &cf.unreachable {
        findings.push(Finding {
            code: LintCode::UnreachableCredential,
            assertion: Some(members[*pos]),
            line_start: None,
            line_end: None,
            message: format!(
                "credential authorizer {authorizer_name:?} is unreachable from POLICY, so the \
                 credential can never contribute to a verdict"
            ),
            hint: "add a delegation chain from POLICY to this authorizer, or delete \
                   the credential"
                .to_string(),
        });
    }
    for (licensee_name, positions) in &cf.dangling {
        let mut indices: Vec<usize> = positions.iter().map(|&p| members[p]).collect();
        indices.sort_unstable();
        findings.push(Finding {
            code: LintCode::DanglingLicensee,
            assertion: indices.first().copied(),
            line_start: None,
            line_end: None,
            message: format!(
                "licensee {licensee_name:?} is never bound to a key: it is not key material, \
                 not a directory-resolvable user, and authors no assertion (mentioned by {})",
                indices
                    .iter()
                    .map(|i| format!("#{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            hint: "fix the licensee spelling or register the principal in the directory"
                .to_string(),
        });
    }
    findings
}

/// Runs the delegation-graph pass: analyzes every weak component and
/// assembles the findings (component order does not matter — the
/// report's `finish()` sort canonicalizes it).
pub fn analyze_graph(
    store: &CompiledStore,
    directory: &dyn PrincipalDirectory,
    webcom_key: &str,
) -> GraphAnalysis {
    let mut findings = Vec::new();
    for members in weak_components(store) {
        let cf = component_findings(store, directory, webcom_key, &members);
        findings.extend(materialize_component(&cf, &members));
    }

    // Global POLICY reachability, kept for callers inspecting the
    // delegation frontier directly.
    let n = store.principals().len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (_, authorizer, licensees) in store.delegations() {
        for &l in licensees {
            adj[authorizer as usize].push(l as usize);
        }
    }
    let mut reachable = vec![false; n];
    if let Some(policy) = store.policy_id() {
        let mut queue = VecDeque::new();
        reachable[policy as usize] = true;
        queue.push_back(policy as usize);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                if !reachable[w] {
                    reachable[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }

    GraphAnalysis {
        findings,
        reachable,
    }
}
