//! Delegation-graph analysis over the compiled store's interned
//! principal ids.
//!
//! The graph has one node per interned principal and one edge
//! `authorizer -> licensee` per (assertion, licensee) pair — the same
//! edges the compliance fixpoint propagates support along (in the
//! opposite direction). Three findings come out of it: cycles
//! (harmless to the monotone fixpoint but almost always a policy
//! mistake), credentials whose authorizer can never be reached from
//! `POLICY` (they can never contribute to a verdict), and licensees
//! never bound to any key, user, or authorizer (requests naming them
//! can never be granted anything).

use crate::diag::{Finding, LintCode};
use hetsec_keynote::compiled::{CompiledStore, PrincipalId};
use hetsec_translate::PrincipalDirectory;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Display text for an interned principal.
fn name(store: &CompiledStore, id: PrincipalId) -> String {
    if store.policy_id() == Some(id) {
        return "POLICY".to_string();
    }
    store
        .principals()
        .text(id)
        .unwrap_or("<unknown>")
        .to_string()
}

/// Tarjan's strongly-connected components, iteratively.
fn sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // (node, next child position)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                call.last_mut().expect("non-empty").1 += 1;
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    out
}

pub struct GraphAnalysis {
    pub findings: Vec<Finding>,
    /// Principals reachable from POLICY along delegation edges.
    pub reachable: Vec<bool>,
}

/// Runs the delegation-graph pass.
pub fn analyze_graph(
    store: &CompiledStore,
    directory: &dyn PrincipalDirectory,
    webcom_key: &str,
) -> GraphAnalysis {
    let n = store.principals().len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    let mut authors: Vec<bool> = vec![false; n];
    for (_, authorizer, licensees) in store.delegations() {
        authors[authorizer as usize] = true;
        for &l in licensees {
            adj[authorizer as usize].push(l as usize);
            if l == authorizer {
                self_loop[l as usize] = true;
            }
        }
    }

    let mut findings = Vec::new();

    // Cycles: SCCs with more than one node, or an explicit self-loop.
    for comp in sccs(n, &adj) {
        let cyclic = comp.len() > 1 || (comp.len() == 1 && self_loop[comp[0]]);
        if !cyclic {
            continue;
        }
        let mut names: Vec<String> = comp
            .iter()
            .map(|&v| name(store, v as PrincipalId))
            .collect();
        names.sort();
        findings.push(Finding {
            code: LintCode::DelegationCycle,
            assertion: None,
            line_start: None,
            line_end: None,
            message: format!(
                "delegation cycle among {{{}}}: these principals only re-license each other",
                names.join(", ")
            ),
            hint: "break the cycle by removing one delegation, or anchor one member under POLICY"
                .to_string(),
        });
    }

    // Reachability from POLICY: POLICY licenses its licensees, who
    // license theirs. A credential whose authorizer is outside this
    // set can never raise the POLICY verdict.
    let mut reachable = vec![false; n];
    if let Some(policy) = store.policy_id() {
        let mut queue = VecDeque::new();
        reachable[policy as usize] = true;
        queue.push_back(policy as usize);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                if !reachable[w] {
                    reachable[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    for (idx, authorizer, _) in store.delegations() {
        if store.policy_id() == Some(authorizer) {
            continue;
        }
        if !reachable[authorizer as usize] {
            findings.push(Finding {
                code: LintCode::UnreachableCredential,
                assertion: Some(idx),
                line_start: None,
                line_end: None,
                message: format!(
                    "credential authorizer {:?} is unreachable from POLICY, so the \
                     credential can never contribute to a verdict",
                    name(store, authorizer)
                ),
                hint: "add a delegation chain from POLICY to this authorizer, or delete \
                       the credential"
                    .to_string(),
            });
        }
    }

    // Dangling licensees: mentioned in some licensees formula, but the
    // text is not key material, not a directory-resolvable principal,
    // and never authors an assertion — no request can ever present it.
    let mut dangling: BTreeMap<PrincipalId, BTreeSet<usize>> = BTreeMap::new();
    for (idx, _, licensees) in store.delegations() {
        for &l in licensees {
            if authors[l as usize] || store.policy_id() == Some(l) {
                continue;
            }
            let text = store.principals().text(l).unwrap_or("");
            let is_key_material = text.starts_with("rsa-sim:");
            if is_key_material || text == webcom_key || directory.user_of(text).is_some() {
                continue;
            }
            dangling.entry(l).or_default().insert(idx);
        }
    }
    for (id, assertions) in dangling {
        let first = assertions.iter().next().copied();
        findings.push(Finding {
            code: LintCode::DanglingLicensee,
            assertion: first,
            line_start: None,
            line_end: None,
            message: format!(
                "licensee {:?} is never bound to a key: it is not key material, not a \
                 directory-resolvable user, and authors no assertion (mentioned by {})",
                name(store, id),
                assertions
                    .iter()
                    .map(|i| format!("#{i}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            hint: "fix the licensee spelling or register the principal in the directory"
                .to_string(),
        });
    }

    GraphAnalysis {
        findings,
        reachable,
    }
}
