//! Semantic verdict diff between two stores, with concrete witnesses.
//!
//! Syntactic findings say *a credential changed*; operators need to
//! know *which requests now decide differently*. This pass compares a
//! current and a candidate store by actually evaluating both: it
//! harvests candidate requests — (principal, action-attribute
//! valuation) tuples — from the satisfiable DNF conjuncts of the
//! assertions near the change, runs each request through both stores'
//! compliance fixpoints, and reports every verdict flip as a witness.
//! A request the candidate grants but the current denies is grant
//! widening (`HS015`, error); the reverse is grant narrowing (`HS016`,
//! warning).
//!
//! The probe frontier is delta-directed: only principals downstream
//! (in delegation direction) of the changed assertions can flip, so
//! the pass scales with the blast radius of the edit, not the store.
//! Witness harvesting is sound but deliberately incomplete — every
//! reported flip really happens (both fixpoints ran), but a flip whose
//! witness valuation is not expressible as a single harvested conjunct
//! can be missed. For stores shaped like `encode_policy` output (each
//! credential carries its full tuple conjunct) the harvest covers all
//! reachable verdict points.

use crate::conditions;
use crate::diag::{Finding, LintCode, Report};
use crate::AnalysisOptions;
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::compiled::{CompiledStore, QueryView, ViewQuery};
use hetsec_keynote::eval::ActionAttributes;
use hetsec_keynote::values::ComplianceValues;
use std::collections::{BTreeMap, BTreeSet};

/// One verdict flip: a concrete request the two stores decide
/// differently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// The requesting principal (key text).
    pub principal: String,
    /// The action-attribute valuation of the request, sorted by name.
    pub attributes: Vec<(String, String)>,
    /// The current store's verdict for the request.
    pub before: bool,
    /// The candidate store's verdict for the request.
    pub after: bool,
}

impl Witness {
    /// `Attr="value", ...` rendering of the valuation (empty valuations
    /// render as an empty string — the bare-request probe).
    pub fn attributes_display(&self) -> String {
        self.attributes
            .iter()
            .map(|(k, v)| format!("{k}={v:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The result of a verdict diff: findings (capped) plus the full
/// witness list.
#[derive(Debug, Default)]
pub struct VerdictDiff {
    /// HS015/HS016 findings, ready for a report or the admission gate.
    pub report: Report,
    /// Every verdict flip found, widening and narrowing, in
    /// (principal, valuation) order.
    pub witnesses: Vec<Witness>,
}

/// Most valuations probed per diff; harvesting stops beyond this.
const MAX_VALUATIONS: usize = 512;
/// Most principals probed per diff.
const MAX_PRINCIPALS: usize = 2048;
/// Most witnesses reported as findings, per direction.
const MAX_REPORTED: usize = 64;
/// Most witnesses collected in total.
const MAX_WITNESSES: usize = 10_000;

/// Live principal texts of a store (authorizer or licensee of some
/// assertion), excluding the POLICY sentinel.
fn live_principals(store: &CompiledStore, out: &mut BTreeSet<String>) {
    for (_, authorizer, licensees) in store.delegations() {
        for id in std::iter::once(authorizer).chain(licensees.iter().copied()) {
            if store.policy_id() == Some(id) {
                continue;
            }
            if let Some(t) = store.principals().text(id) {
                out.insert(t.to_string());
            }
        }
    }
}

/// Delegation edges of a store in text space: authorizer -> licensees.
fn text_edges(store: &CompiledStore, adj: &mut BTreeMap<String, BTreeSet<String>>) {
    for (_, authorizer, licensees) in store.delegations() {
        let Some(a) = store.principals().text(authorizer) else {
            continue;
        };
        let entry = adj.entry(a.to_string()).or_default();
        for &l in licensees {
            if let Some(t) = store.principals().text(l) {
                entry.insert(t.to_string());
            }
        }
    }
}

/// Principals of one assertion, as texts.
fn assertion_principals(store: &CompiledStore, idx: usize, out: &mut BTreeSet<String>) {
    if let Some(a) = store.authorizer_of(idx) {
        if let Some(t) = store.principals().text(a) {
            out.insert(t.to_string());
        }
    }
    for &l in store.licensees_of(idx).unwrap_or(&[]) {
        if let Some(t) = store.principals().text(l) {
            out.insert(t.to_string());
        }
    }
}

/// Harvests witness valuations from one assertion's condition program.
fn harvest(a: &Assertion, out: &mut BTreeSet<Vec<(String, String)>>) {
    let Some(program) = &a.conditions else {
        return;
    };
    let mut programs = Vec::new();
    crate::each_program(program, &mut programs);
    for tests in &programs {
        for test in tests {
            conditions::witness_valuations(test, out);
        }
    }
}

/// Diffs the verdicts of `current` vs `candidate`. `opts` supplies the
/// evaluation environment (revocations and, when set, the `now`
/// timestamp folded into every probe that does not bind `now` itself).
pub fn diff_verdicts(
    current: &[Assertion],
    candidate: &[Assertion],
    opts: &AnalysisOptions,
) -> VerdictDiff {
    let mut old_store = CompiledStore::default();
    for a in current {
        old_store.add(a);
    }
    let mut new_store = CompiledStore::default();
    for a in candidate {
        new_store.add(a);
    }

    let delta = old_store.delta(&new_store);
    if delta.is_empty() {
        return VerdictDiff::default();
    }

    // Affected frontier: principals of the changed assertions plus
    // every principal whose licensee-edge multiset moved, closed
    // downstream along the delegation edges of both stores (support
    // flows authorizer -> licensee, so only downstream verdicts can
    // change).
    let mut seeds: BTreeSet<String> = delta.touched_principals.clone();
    for &idx in &delta.removed {
        assertion_principals(&old_store, idx, &mut seeds);
    }
    for &idx in &delta.added {
        assertion_principals(&new_store, idx, &mut seeds);
    }
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    text_edges(&old_store, &mut adj);
    text_edges(&new_store, &mut adj);
    let mut affected: BTreeSet<String> = BTreeSet::new();
    let mut queue: Vec<String> = seeds.into_iter().collect();
    while let Some(p) = queue.pop() {
        if !affected.insert(p.clone()) {
            continue;
        }
        if let Some(next) = adj.get(&p) {
            queue.extend(next.iter().cloned());
        }
    }

    let mut live: BTreeSet<String> = BTreeSet::new();
    live_principals(&old_store, &mut live);
    live_principals(&new_store, &mut live);
    let principals: Vec<String> = live
        .intersection(&affected)
        .take(MAX_PRINCIPALS)
        .cloned()
        .collect();

    // Witness valuations: the changed assertions' conjuncts plus the
    // conjuncts of every assertion touching an affected principal —
    // the conditions a flipped chain must pass through.
    let mut vals: BTreeSet<Vec<(String, String)>> = BTreeSet::new();
    vals.insert(Vec::new());
    for &idx in &delta.removed {
        harvest(&current[idx], &mut vals);
    }
    for &idx in &delta.added {
        harvest(&candidate[idx], &mut vals);
    }
    for (assertions, store) in [(current, &old_store), (candidate, &new_store)] {
        for (idx, a) in assertions.iter().enumerate() {
            if vals.len() >= MAX_VALUATIONS {
                break;
            }
            let mut ps = BTreeSet::new();
            assertion_principals(store, idx, &mut ps);
            if ps.iter().any(|p| affected.contains(p)) {
                harvest(a, &mut vals);
            }
        }
    }

    // Fold the analysis time into every valuation that does not bind
    // `now` itself, then re-deduplicate.
    let vals: BTreeSet<Vec<(String, String)>> = vals
        .into_iter()
        .take(MAX_VALUATIONS)
        .map(|mut v| {
            if let Some(t) = opts.now {
                if !v.iter().any(|(k, _)| k == "now") {
                    let rendered = if t.fract() == 0.0 && t.abs() < 1e15 {
                        format!("{}", t as i64)
                    } else {
                        format!("{t}")
                    };
                    v.push(("now".to_string(), rendered));
                    v.sort();
                }
            }
            v
        })
        .collect();
    let vals: Vec<Vec<(String, String)>> = vals.into_iter().collect();

    // Probe both stores. One batch per principal sweeps all valuations
    // through a single fixpoint-scratch allocation.
    let values = ComplianceValues::binary();
    let mut view_old = QueryView::new(&old_store, &values, &opts.revoked);
    let mut view_new = QueryView::new(&new_store, &values, &opts.revoked);
    let attr_sets: Vec<ActionAttributes> = vals
        .iter()
        .map(|v| v.iter().map(|(k, val)| (k.as_str(), val.as_str())).collect())
        .collect();
    let mut witnesses = Vec::new();
    'principals: for p in &principals {
        let authorizers = [p.as_str()];
        let probes: Vec<ViewQuery<'_>> = attr_sets
            .iter()
            .map(|attrs| ViewQuery {
                authorizers: &authorizers,
                attributes: attrs,
                extra: &[],
            })
            .collect();
        let before = view_old.query_batch(&probes);
        let after = view_new.query_batch(&probes);
        for ((v, b), a) in vals.iter().zip(before).zip(after) {
            let (b, a) = (b.is_authorized(), a.is_authorized());
            if b != a {
                witnesses.push(Witness {
                    principal: p.clone(),
                    attributes: v.clone(),
                    before: b,
                    after: a,
                });
                if witnesses.len() >= MAX_WITNESSES {
                    break 'principals;
                }
            }
        }
    }

    let mut findings = Vec::new();
    let mut widened = 0usize;
    let mut narrowed = 0usize;
    for w in &witnesses {
        let counter = if w.after { &mut widened } else { &mut narrowed };
        *counter += 1;
        if *counter > MAX_REPORTED {
            continue;
        }
        findings.push(witness_finding(w));
    }

    VerdictDiff {
        report: Report { findings }.finish(),
        witnesses,
    }
}

/// The canonical HS015/HS016 finding for one witness — shared by the
/// diff report and the admission gate so both surfaces render a flip
/// identically.
pub fn witness_finding(w: &Witness) -> Finding {
    let (code, verb, flip, hint) = if w.after {
        (
            LintCode::GrantWidening,
            "widens",
            "DENY -> GRANT",
            "confirm the added authority is intended; the candidate store authorizes \
             a request the current store denies",
        )
    } else {
        (
            LintCode::GrantNarrowing,
            "narrows",
            "GRANT -> DENY",
            "confirm the removed authority is intended; requests relying on it will \
             start failing",
        )
    };
    Finding {
        code,
        assertion: None,
        line_start: None,
        line_end: None,
        message: format!(
            "grant {verb} for principal {:?}: request {{{}}} flips {flip} in the \
             candidate store",
            w.principal,
            w.attributes_display()
        ),
        hint: hint.to_string(),
    }
}
