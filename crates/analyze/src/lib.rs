//! `hetsec-analyze` — static analysis over a KeyNote assertion store
//! plus an optional source RBAC policy, without evaluating any request.
//!
//! The paper treats middleware RBAC and KeyNote credentials as two
//! encodings of one authorization state (§4); nothing in the runtime
//! stack checks a credential store *before* deployment, so a bad
//! delegation or decompile drift only surfaces at query time. This
//! crate is that missing audit layer. Four passes:
//!
//! 1. **Delegation graph** ([`graph`]) — cycles, credentials
//!    unreachable from `POLICY`, dangling licensees, over the compiled
//!    store's interned principal ids;
//! 2. **Escalation** ([`escalation`]) — the maximal verdict each
//!    principal can reach, diffed against the RBAC
//!    `HasPermission`/`UserRole` relations;
//! 3. **Condition lints** ([`conditions`]) — unsatisfiable or
//!    tautological tests (interval/equality reasoning), shadowed
//!    clauses, unknown action attributes, malformed regex literals;
//! 4. **Credential hygiene** — validity windows (`now` convention),
//!    revoked/unknown authorizers, duplicate assertions.
//!
//! Diagnostics carry a severity, a stable `HS0xx` code, the offending
//! assertion's index/span, and a one-line fix hint; [`Report`] renders
//! human text (`Display`) and JSON ([`Report::to_json`]).

pub mod admission;
pub mod conditions;
pub mod diag;
pub mod escalation;
pub mod graph;
pub mod incremental;
pub mod semdiff;

pub use admission::LintAdmissionGate;
pub use diag::{Finding, JsonFinding, JsonReport, LintCode, Report, Severity};
pub use incremental::{IncrementalAnalyzer, IncrementalStats, StoreEdit};
pub use semdiff::{diff_verdicts, VerdictDiff, Witness};

use hetsec_keynote::ast::{Assertion, Clause, ConditionsProgram, Expr, Principal, Term};
use hetsec_keynote::compiled::CompiledStore;
use hetsec_keynote::parser::{parse_assertion, ParseError};
use hetsec_keynote::print::{print_assertion, print_expr};
use hetsec_keynote::regex::Regex;
use hetsec_translate::{PrincipalDirectory, SymbolicDirectory};
use std::collections::{BTreeSet, HashMap};

/// Attributes the bundled adapters are known to set on action
/// environments (the WebCom scheduler's vocabulary plus the `now`
/// validity convention). [`AnalysisOptions::default`] starts from this
/// list; callers with custom adapters extend it.
pub const DEFAULT_KNOWN_ATTRIBUTES: &[&str] = &[
    "app_domain",
    "Domain",
    "Role",
    "ObjectType",
    "Permission",
    "component",
    "middleware",
    "oper",
    "now",
];

/// Analyzer configuration.
#[derive(Clone)]
pub struct AnalysisOptions {
    /// The source RBAC policy; enables the escalation pass.
    pub rbac: Option<hetsec_rbac::RbacPolicy>,
    /// The administration key the RBAC policy is encoded under.
    pub webcom_key: String,
    /// Analysis time for validity-window checks (`now` convention);
    /// `None` skips the check.
    pub now: Option<f64>,
    /// Keys to treat as revoked, exactly as at request time.
    pub revoked: BTreeSet<String>,
    /// Action attributes some adapter sets; references outside this
    /// set are reported as `HS008`.
    pub known_attributes: BTreeSet<String>,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            rbac: None,
            webcom_key: "KWebCom".to_string(),
            now: None,
            revoked: BTreeSet::new(),
            known_attributes: DEFAULT_KNOWN_ATTRIBUTES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// Analyzes parsed assertions with the paper's symbolic key directory.
pub fn analyze(assertions: &[Assertion], opts: &AnalysisOptions) -> Report {
    analyze_with_directory(assertions, opts, &SymbolicDirectory::default())
}

/// Analyzes parsed assertions against an explicit principal directory.
pub fn analyze_with_directory(
    assertions: &[Assertion],
    opts: &AnalysisOptions,
    directory: &dyn PrincipalDirectory,
) -> Report {
    let mut store = CompiledStore::default();
    for a in assertions {
        store.add(a);
    }

    let mut findings = Vec::new();

    // Pass 1: delegation graph.
    findings.extend(graph::analyze_graph(&store, directory, &opts.webcom_key).findings);

    // Pass 2: escalation vs the RBAC relations.
    if let Some(rbac) = &opts.rbac {
        findings.extend(escalation::analyze_escalation(
            assertions,
            &store,
            rbac,
            &opts.webcom_key,
            directory,
            &opts.revoked,
        ));
    }

    // Passes 3 & 4 work per assertion.
    let mut seen_texts: HashMap<String, usize> = HashMap::new();
    for (idx, a) in assertions.iter().enumerate() {
        for mut f in per_assertion_findings(a, opts, directory) {
            f.assertion = Some(idx);
            findings.push(f);
        }

        let text = print_assertion(a);
        match seen_texts.get(&text) {
            Some(&first) => findings.push(Finding {
                code: LintCode::DuplicateAssertion,
                assertion: Some(idx),
                line_start: None,
                line_end: None,
                message: format!("assertion is byte-identical to assertion #{first}"),
                hint: "delete the duplicate; it cannot change any verdict".to_string(),
            }),
            None => {
                seen_texts.insert(text, idx);
            }
        }
    }

    Report { findings }.finish()
}

/// Analyzes a multi-assertion text, attaching 1-based line spans to
/// per-assertion findings.
pub fn analyze_text(text: &str, opts: &AnalysisOptions) -> Result<Report, ParseError> {
    // Mirror `parse_assertions`' blank-line chunking, but remember
    // where each chunk started and ended.
    let mut assertions = Vec::new();
    let mut spans = Vec::new();
    let mut chunk = String::new();
    let mut chunk_start = 0usize;
    let mut chunk_end = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            if !chunk.trim().is_empty() {
                assertions.push(parse_assertion(&chunk)?);
                spans.push((chunk_start + 1, chunk_end + 1));
            }
            chunk.clear();
        } else {
            if chunk.is_empty() {
                chunk_start = lineno;
            }
            chunk_end = lineno;
            chunk.push_str(line);
            chunk.push('\n');
        }
    }
    if !chunk.trim().is_empty() {
        assertions.push(parse_assertion(&chunk)?);
        spans.push((chunk_start + 1, chunk_end + 1));
    }

    let mut report = analyze(&assertions, opts);
    for f in &mut report.findings {
        if let Some(idx) = f.assertion {
            if let Some(&(start, end)) = spans.get(idx) {
                f.line_start = Some(start);
                f.line_end = Some(end);
            }
        }
    }
    Ok(report)
}

/// Runs the per-assertion passes (conditions, hygiene, validity) for
/// one assertion in isolation. The returned findings carry a
/// placeholder `assertion` index — callers set the real one — and no
/// message embeds the assertion's own store index, which is what makes
/// the result cacheable by content fingerprint across store edits.
pub(crate) fn per_assertion_findings(
    a: &Assertion,
    opts: &AnalysisOptions,
    directory: &dyn PrincipalDirectory,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    condition_lints(0, a, opts, &mut findings);
    hygiene_lints(0, a, opts, directory, &mut findings);
    validity_lints(0, a, opts, &mut findings);
    findings
}

fn origin(a: &Assertion) -> String {
    match &a.authorizer {
        Principal::Policy => "POLICY".to_string(),
        Principal::Key(k) => format!("{k:?}"),
    }
}

/// Flattened view of a conditions program: each test with its nesting
/// depth, grouped per program so shadowing stays within one program.
pub(crate) fn each_program(p: &ConditionsProgram, out: &mut Vec<Vec<Expr>>) {
    let mut tests = Vec::new();
    for c in &p.clauses {
        let (Clause::Bare(t) | Clause::Arrow(t, _) | Clause::Nested(t, _)) = c;
        tests.push(t.clone());
        if let Clause::Nested(_, inner) = c {
            each_program(inner, out);
        }
    }
    out.push(tests);
}

fn condition_lints(
    idx: usize,
    a: &Assertion,
    opts: &AnalysisOptions,
    findings: &mut Vec<Finding>,
) {
    let Some(program) = &a.conditions else { return };
    let who = origin(a);

    let mut programs = Vec::new();
    each_program(program, &mut programs);
    for tests in &programs {
        for (ci, test) in tests.iter().enumerate() {
            match conditions::status(test) {
                conditions::Status::Unsat => findings.push(Finding {
                    code: LintCode::UnsatisfiableCondition,
                    assertion: Some(idx),
                    line_start: None,
                    line_end: None,
                    message: format!(
                        "clause {ci} of the assertion by {who} can never be true: `{}`",
                        print_expr(test)
                    ),
                    hint: "the clause grants nothing; fix the contradictory bounds or delete it"
                        .to_string(),
                }),
                conditions::Status::Taut => findings.push(Finding {
                    code: LintCode::TautologicalCondition,
                    assertion: Some(idx),
                    line_start: None,
                    line_end: None,
                    message: format!(
                        "clause {ci} of the assertion by {who} is always true: `{}`",
                        print_expr(test)
                    ),
                    hint: "an unconditional grant is clearer without a vacuous test".to_string(),
                }),
                conditions::Status::Sat => {}
            }
            for earlier in &tests[..ci] {
                if earlier == test {
                    findings.push(Finding {
                        code: LintCode::ShadowedClause,
                        assertion: Some(idx),
                        line_start: None,
                        line_end: None,
                        message: format!(
                            "clause {ci} of the assertion by {who} repeats an earlier \
                             clause's test: `{}`",
                            print_expr(test)
                        ),
                        hint: "merge the clauses; under max-semantics only the strongest \
                               value survives"
                            .to_string(),
                    });
                    break;
                }
            }
        }
    }

    // Unknown attributes (HS008) and bad regex literals (HS009).
    let locals: BTreeSet<&str> = a.local_constants.iter().map(|(n, _)| n.as_str()).collect();
    let mut names = Vec::new();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for tests in &programs {
        for test in tests {
            conditions::referenced_attributes(test, &mut names);
            bad_regex_lints(idx, test, &who, findings);
        }
    }
    for name in names {
        if name.starts_with('_') || locals.contains(name.as_str()) {
            continue; // reserved names and local constants
        }
        if opts.known_attributes.contains(&name) || !reported.insert(name.clone()) {
            continue;
        }
        findings.push(Finding {
            code: LintCode::UnknownAttribute,
            assertion: Some(idx),
            line_start: None,
            line_end: None,
            message: format!(
                "the assertion by {who} tests action attribute {name:?}, which no \
                 adapter ever sets (the test sees the empty string)"
            ),
            hint: "fix the attribute spelling or register it in the adapter vocabulary"
                .to_string(),
        });
    }
}

fn bad_regex_lints(idx: usize, e: &Expr, who: &str, findings: &mut Vec<Finding>) {
    match e {
        Expr::Or(a, b) | Expr::And(a, b) => {
            bad_regex_lints(idx, a, who, findings);
            bad_regex_lints(idx, b, who, findings);
        }
        Expr::Not(inner) => bad_regex_lints(idx, inner, who, findings),
        Expr::RegexMatch {
            pattern: Term::Str(pat),
            ..
        } => {
            if let Err(err) = Regex::new(pat) {
                findings.push(Finding {
                    code: LintCode::BadRegex,
                    assertion: Some(idx),
                    line_start: None,
                    line_end: None,
                    message: format!(
                        "the assertion by {who} matches against malformed regex literal \
                         {pat:?} ({err:?}); the enclosing test always evaluates to false"
                    ),
                    hint: "fix the pattern; as written the clause can never grant".to_string(),
                });
            }
        }
        _ => {}
    }
}

fn validity_lints(
    idx: usize,
    a: &Assertion,
    opts: &AnalysisOptions,
    findings: &mut Vec<Finding>,
) {
    let Some(t) = opts.now else {
        return;
    };
    // Explicit per-credential validity fields take precedence over the
    // blanket `now` convention: an assertion declaring `@not-before` /
    // `@not-after` in Local-Constants states its window outright, so
    // the analyzer need not reverse-engineer it from the conditions.
    let not_before = local_constant_num(a, "@not-before");
    let not_after = local_constant_num(a, "@not-after");
    if not_before.is_some() || not_after.is_some() {
        let expired = not_after.is_some_and(|end| t > end);
        let future = not_before.is_some_and(|start| t < start);
        if expired || future {
            let what = if expired {
                "has expired"
            } else {
                "is not yet valid"
            };
            findings.push(Finding {
                code: LintCode::OutsideValidity,
                assertion: Some(idx),
                line_start: None,
                line_end: None,
                message: format!(
                    "the assertion by {} {what} at analysis time now={t}",
                    origin(a)
                ),
                hint: "re-issue the credential with a current validity window, or retire it"
                    .to_string(),
            });
        }
        return;
    }
    let Some(program) = &a.conditions else {
        return;
    };
    let mut saw_window = false;
    let mut all_expired = true;
    let mut all_future = true;
    for c in &program.clauses {
        let (Clause::Bare(test) | Clause::Arrow(test, _) | Clause::Nested(test, _)) = c;
        match conditions::now_verdict(test, t) {
            conditions::NowVerdict::Unconstrained | conditions::NowVerdict::LiveAt => return,
            conditions::NowVerdict::DeadAt { expired, future } => {
                saw_window = true;
                all_expired &= expired;
                all_future &= future;
            }
        }
    }
    if !saw_window {
        return;
    }
    let what = if all_expired {
        "has expired"
    } else if all_future {
        "is not yet valid"
    } else {
        "is outside its validity window"
    };
    findings.push(Finding {
        code: LintCode::OutsideValidity,
        assertion: Some(idx),
        line_start: None,
        line_end: None,
        message: format!(
            "the assertion by {} {what} at analysis time now={t}",
            origin(a)
        ),
        hint: "re-issue the credential with a current validity window, or retire it"
            .to_string(),
    });
}

/// Reads a numeric `Local-Constants` entry (e.g. the `@not-before` /
/// `@not-after` validity fields). Non-numeric values are ignored — the
/// evaluator treats them as opaque strings, so the analyzer must not
/// guess a window from them.
fn local_constant_num(a: &Assertion, name: &str) -> Option<f64> {
    a.local_constants
        .iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, v)| v.trim().parse::<f64>().ok())
}

fn hygiene_lints(
    idx: usize,
    a: &Assertion,
    opts: &AnalysisOptions,
    directory: &dyn PrincipalDirectory,
    findings: &mut Vec<Finding>,
) {
    if let Principal::Key(k) = &a.authorizer {
        let known = k == &opts.webcom_key
            || k.starts_with("rsa-sim:")
            || directory.user_of(k).is_some();
        if !known {
            findings.push(Finding {
                code: LintCode::UnknownAuthorizer,
                assertion: Some(idx),
                line_start: None,
                line_end: None,
                message: format!(
                    "authorizer {k:?} is neither POLICY, key material, nor a \
                     directory-resolvable principal"
                ),
                hint: "register the key in the principal directory or fix the authorizer"
                    .to_string(),
            });
        }
        if opts.revoked.contains(k) {
            findings.push(Finding {
                code: LintCode::RevokedPrincipal,
                assertion: Some(idx),
                line_start: None,
                line_end: None,
                message: format!(
                    "authorizer {k:?} is revoked; the assertion conveys nothing until \
                     the key is reinstated"
                ),
                hint: "remove the credential or reinstate the key".to_string(),
            });
        }
    }
    // Revoked licensees: granting *to* a dead key is as suspect as
    // granting *from* one — the credential is a standing escalation the
    // moment the key is reinstated by mistake.
    if let Some(licensees) = &a.licensees {
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for k in licensees.principals() {
            if opts.revoked.contains(k) && reported.insert(k) {
                findings.push(Finding {
                    code: LintCode::RevokedPrincipal,
                    assertion: Some(idx),
                    line_start: None,
                    line_end: None,
                    message: format!(
                        "licensee {k:?} is revoked; the assertion grants authority to a \
                         key the operator has withdrawn"
                    ),
                    hint: "remove the credential or reinstate the key".to_string(),
                });
            }
        }
    }
}
