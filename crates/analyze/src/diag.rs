//! Diagnostics: lint codes, severities, findings, and the report.
//!
//! Every finding carries a stable `HS0xx` code so CI gates and golden
//! files can match on it, a severity, the index (and, when the store
//! was analyzed from text, the line span) of the offending assertion,
//! and a one-line fix hint.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Finding severity, ordered `Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    /// Lowercase label used in both human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Stable lint codes. The numeric suffix never changes meaning once
/// released; retired codes are not reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// Delegation-graph cycle among principals.
    DelegationCycle,
    /// Credential whose authorizer is unreachable from `POLICY`.
    UnreachableCredential,
    /// Licensee never bound to a key, a directory user, or an authorizer.
    DanglingLicensee,
    /// Principal can reach a verdict the RBAC policy never granted.
    Escalation,
    /// Condition clause that can never evaluate to true.
    UnsatisfiableCondition,
    /// Condition clause that always evaluates to true.
    TautologicalCondition,
    /// Clause whose test duplicates an earlier clause in the program.
    ShadowedClause,
    /// Reference to an action attribute no adapter ever sets.
    UnknownAttribute,
    /// Malformed regex literal (evaluation-total false at runtime).
    BadRegex,
    /// Assertion expired or not yet valid at the analysis time.
    OutsideValidity,
    /// Authorizer key that is neither `POLICY`, key material, nor a
    /// directory-resolvable principal.
    UnknownAuthorizer,
    /// Byte-identical assertion stored more than once.
    DuplicateAssertion,
    /// Assertion involving a revoked principal.
    RevokedPrincipal,
    /// RBAC grant the credential store does not honour (decode drift).
    MissingGrant,
    /// Semantic diff: the candidate store authorizes a request the
    /// current store denies (witness-backed grant widening).
    GrantWidening,
    /// Semantic diff: the candidate store denies a request the current
    /// store authorizes (witness-backed grant narrowing).
    GrantNarrowing,
}

impl LintCode {
    /// All codes, in code order. The last two ([`LintCode::is_diff`])
    /// only arise from the two-store verdict diff, never from linting a
    /// single store.
    pub const ALL: [LintCode; 16] = [
        LintCode::DelegationCycle,
        LintCode::UnreachableCredential,
        LintCode::DanglingLicensee,
        LintCode::Escalation,
        LintCode::UnsatisfiableCondition,
        LintCode::TautologicalCondition,
        LintCode::ShadowedClause,
        LintCode::UnknownAttribute,
        LintCode::BadRegex,
        LintCode::OutsideValidity,
        LintCode::UnknownAuthorizer,
        LintCode::DuplicateAssertion,
        LintCode::RevokedPrincipal,
        LintCode::MissingGrant,
        LintCode::GrantWidening,
        LintCode::GrantNarrowing,
    ];

    /// True for the verdict-diff codes, which compare two stores and
    /// can never be tripped by analyzing one store in isolation.
    pub fn is_diff(self) -> bool {
        matches!(self, LintCode::GrantWidening | LintCode::GrantNarrowing)
    }

    /// The stable code string (`HS001` ...).
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DelegationCycle => "HS001",
            LintCode::UnreachableCredential => "HS002",
            LintCode::DanglingLicensee => "HS003",
            LintCode::Escalation => "HS004",
            LintCode::UnsatisfiableCondition => "HS005",
            LintCode::TautologicalCondition => "HS006",
            LintCode::ShadowedClause => "HS007",
            LintCode::UnknownAttribute => "HS008",
            LintCode::BadRegex => "HS009",
            LintCode::OutsideValidity => "HS010",
            LintCode::UnknownAuthorizer => "HS011",
            LintCode::DuplicateAssertion => "HS012",
            LintCode::RevokedPrincipal => "HS013",
            LintCode::MissingGrant => "HS014",
            LintCode::GrantWidening => "HS015",
            LintCode::GrantNarrowing => "HS016",
        }
    }

    /// The severity every finding with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::DelegationCycle
            | LintCode::UnreachableCredential
            | LintCode::DanglingLicensee
            | LintCode::ShadowedClause
            | LintCode::UnknownAttribute
            | LintCode::DuplicateAssertion
            | LintCode::MissingGrant
            | LintCode::GrantNarrowing => Severity::Warn,
            LintCode::TautologicalCondition => Severity::Info,
            LintCode::Escalation
            | LintCode::UnsatisfiableCondition
            | LintCode::BadRegex
            | LintCode::OutsideValidity
            | LintCode::UnknownAuthorizer
            | LintCode::RevokedPrincipal
            | LintCode::GrantWidening => Severity::Error,
        }
    }

    /// Short description for the lint-code table.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::DelegationCycle => "delegation-graph cycle",
            LintCode::UnreachableCredential => "credential unreachable from POLICY",
            LintCode::DanglingLicensee => "licensee never bound to a key",
            LintCode::Escalation => "authority beyond the RBAC policy",
            LintCode::UnsatisfiableCondition => "unsatisfiable condition clause",
            LintCode::TautologicalCondition => "tautological condition clause",
            LintCode::ShadowedClause => "clause shadowed by an earlier clause",
            LintCode::UnknownAttribute => "attribute no adapter sets",
            LintCode::BadRegex => "malformed regex literal",
            LintCode::OutsideValidity => "outside its validity window",
            LintCode::UnknownAuthorizer => "unknown authorizer key",
            LintCode::DuplicateAssertion => "duplicate assertion",
            LintCode::RevokedPrincipal => "revoked principal",
            LintCode::MissingGrant => "RBAC grant the store does not honour",
            LintCode::GrantWidening => "candidate store grants a request the current denies",
            LintCode::GrantNarrowing => "candidate store denies a request the current grants",
        }
    }
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    pub code: LintCode,
    /// Index of the offending assertion in the analyzed store, when the
    /// finding is about one assertion (escalation findings are about
    /// the store as a whole).
    pub assertion: Option<usize>,
    /// 1-based line span in the source text, when analyzed from text.
    pub line_start: Option<usize>,
    pub line_end: Option<usize>,
    pub message: String,
    pub hint: String,
}

impl Finding {
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

/// Serialized form of a finding — field order is the JSON golden-file
/// contract.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JsonFinding {
    pub code: String,
    pub severity: String,
    pub assertion: Option<usize>,
    pub line_start: Option<usize>,
    pub line_end: Option<usize>,
    pub message: String,
    pub hint: String,
}

/// Serialized report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JsonReport {
    pub findings: Vec<JsonFinding>,
    pub errors: usize,
    pub warnings: usize,
}

/// The full analysis result.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts findings into the stable output order: severity
    /// (errors first), then code, then assertion index, then message.
    pub(crate) fn finish(mut self) -> Report {
        self.findings.sort_by(|a, b| {
            b.severity()
                .cmp(&a.severity())
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.assertion.cmp(&b.assertion))
                .then_with(|| a.message.cmp(&b.message))
        });
        self
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity() == Severity::Error)
    }

    /// The distinct codes tripped, as `HS0xx` strings.
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.findings.iter().map(|f| f.code.as_str()).collect()
    }

    fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity() == sev).count()
    }

    /// Pretty JSON for `--format json` and golden files.
    pub fn to_json(&self) -> String {
        let json = JsonReport {
            findings: self
                .findings
                .iter()
                .map(|f| JsonFinding {
                    code: f.code.as_str().to_string(),
                    severity: f.severity().as_str().to_string(),
                    assertion: f.assertion,
                    line_start: f.line_start,
                    line_end: f.line_end,
                    message: f.message.clone(),
                    hint: f.hint.clone(),
                })
                .collect(),
            errors: self.count(Severity::Error),
            warnings: self.count(Severity::Warn),
        };
        serde_json::to_string_pretty(&json).expect("report serializes")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "clean: no findings");
        }
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{}[{}]",
                finding.severity().as_str(),
                finding.code.as_str()
            )?;
            if let Some(idx) = finding.assertion {
                write!(f, " assertion #{idx}")?;
                if let (Some(a), Some(b)) = (finding.line_start, finding.line_end) {
                    write!(f, " (lines {a}-{b})")?;
                }
            }
            write!(f, ": {}", finding.message)?;
            if !finding.hint.is_empty() {
                write!(f, "\n  hint: {}", finding.hint)?;
            }
        }
        write!(
            f,
            "\n{} finding(s): {} error(s), {} warning(s)",
            self.findings.len(),
            self.count(Severity::Error),
            self.count(Severity::Warn)
        )
    }
}
