//! Escalation detection: diff the authority the credential store
//! actually conveys against the RBAC relations it is supposed to
//! encode.
//!
//! For every candidate principal and every (Domain, Role, ObjectType,
//! Permission) tuple in the combined universe, the pass runs the
//! compiled compliance fixpoint — the very checker the middleware
//! consults at request time — and compares the verdict with
//! `RbacPolicy::check_access_as`. A verdict the RBAC policy never
//! granted is an escalation (`HS004`); an RBAC grant the store does
//! not honour is decode drift (`HS014`). On a faithful
//! `encode_policy` round-trip both directions are empty, which is the
//! analyzer's own differential oracle.
//!
//! The pass is factored into `user_universe` / `tuple_universe` /
//! `probe_user` / `materialize` so the incremental engine can re-probe
//! only the users whose delegation neighbourhood changed while reusing
//! cached sweeps for everyone else, and still assemble findings that
//! are byte-identical to this cold path.

use crate::diag::{Finding, LintCode};
use hetsec_keynote::ast::{Assertion, Clause};
use hetsec_keynote::compiled::{CompiledStore, QueryView, ViewQuery};
use hetsec_keynote::eval::ActionAttributes;
use hetsec_keynote::values::ComplianceValues;
use hetsec_rbac::{Domain, ObjectType, Permission, RbacPolicy, Role, User};
use hetsec_translate::{decode_policy, PrincipalDirectory, APP_DOMAIN};
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) type Tuple = (String, String, String, String);

/// Harvests candidate (Domain, Role, ObjectType, Permission) tuples
/// from the equality conjuncts of the store's condition programs, so
/// drifted stores granting tuples the RBAC policy never listed are
/// still probed.
fn tuples_from_conditions(assertions: &[Assertion], out: &mut BTreeSet<Tuple>) {
    fn conjuncts(e: &hetsec_keynote::ast::Expr) -> Vec<BTreeMap<String, String>> {
        use hetsec_keynote::ast::{CmpOp, Expr, Term};
        match e {
            Expr::Or(a, b) => {
                let mut out = conjuncts(a);
                out.extend(conjuncts(b));
                out
            }
            Expr::And(a, b) => {
                let left = conjuncts(a);
                let right = conjuncts(b);
                let mut out = Vec::new();
                for l in &left {
                    for r in &right {
                        let mut c = l.clone();
                        c.extend(r.iter().map(|(k, v)| (k.clone(), v.clone())));
                        out.push(c);
                    }
                }
                out
            }
            Expr::Cmp {
                op: CmpOp::Eq,
                lhs: Term::Attr(name),
                rhs: Term::Str(value),
            } => vec![[(name.clone(), value.clone())].into_iter().collect()],
            _ => vec![BTreeMap::new()],
        }
    }
    for a in assertions {
        let Some(program) = &a.conditions else { continue };
        for clause in &program.clauses {
            let (Clause::Bare(test) | Clause::Arrow(test, _) | Clause::Nested(test, _)) = clause;
            for c in conjuncts(test) {
                if let (Some(d), Some(r), Some(t), Some(p)) = (
                    c.get("Domain"),
                    c.get("Role"),
                    c.get("ObjectType"),
                    c.get("Permission"),
                ) {
                    out.insert((d.clone(), r.clone(), t.clone(), p.clone()));
                }
            }
        }
    }
}

/// Candidate users: everyone the RBAC policy mentions, everyone a
/// decode of the store recovers, and every *live* store principal the
/// directory can resolve (catching credentials for users the RBAC side
/// has never heard of — the classic escalation). Live means the
/// principal is the authorizer or a licensee of some stored assertion:
/// after incremental removals the interner may still hold retired
/// names, and those must not widen the probe matrix beyond what a cold
/// compile of the same assertions would produce.
pub(crate) fn user_universe(
    assertions: &[Assertion],
    store: &CompiledStore,
    rbac: &RbacPolicy,
    webcom_key: &str,
    directory: &dyn PrincipalDirectory,
) -> BTreeSet<User> {
    let mut users: BTreeSet<User> = rbac.users();
    users.extend(decode_policy(assertions, webcom_key, directory).policy.users());
    let mut live: BTreeSet<u32> = BTreeSet::new();
    for (_, authorizer, licensees) in store.delegations() {
        live.insert(authorizer);
        live.extend(licensees.iter().copied());
    }
    for id in live {
        let Some(text) = store.principals().text(id) else {
            continue;
        };
        if text == webcom_key {
            continue;
        }
        if let Some(u) = directory.user_of(text) {
            users.insert(u);
        }
    }
    if let Some(admin) = directory.user_of(webcom_key) {
        users.remove(&admin);
    }
    users
}

/// Tuple universe: RBAC grants plus tuples harvested from the store.
pub(crate) fn tuple_universe(assertions: &[Assertion], rbac: &RbacPolicy) -> BTreeSet<Tuple> {
    let mut tuples: BTreeSet<Tuple> = rbac
        .grants()
        .map(|g| {
            (
                g.domain.as_str().to_string(),
                g.role.as_str().to_string(),
                g.object_type.as_str().to_string(),
                g.permission.as_str().to_string(),
            )
        })
        .collect();
    tuples_from_conditions(assertions, &mut tuples);
    tuples
}

/// Sweeps one user across the whole tuple universe through a single
/// `query_batch` call (paying for worklist scratch once per user) and
/// returns the escalated and missing probe points, each formatted as
/// `"{d}/{r}: {p} on {t}"` in tuple order.
pub(crate) fn probe_user(
    store: &CompiledStore,
    rbac: &RbacPolicy,
    directory: &dyn PrincipalDirectory,
    revoked: &BTreeSet<String>,
    values: &ComplianceValues,
    tuples: &BTreeSet<Tuple>,
    user: &User,
) -> (Vec<String>, Vec<String>) {
    let key = directory.key_of(user);
    let authorizers = [key.as_str()];
    let attr_sets: Vec<ActionAttributes> = tuples
        .iter()
        .map(|(d, r, t, p)| {
            [
                ("app_domain", APP_DOMAIN),
                ("Domain", d.as_str()),
                ("Role", r.as_str()),
                ("ObjectType", t.as_str()),
                ("Permission", p.as_str()),
            ]
            .into_iter()
            .collect()
        })
        .collect();
    let probes: Vec<ViewQuery<'_>> = attr_sets
        .iter()
        .map(|attrs| ViewQuery {
            authorizers: &authorizers,
            attributes: attrs,
            extra: &[],
        })
        .collect();
    let mut view = QueryView::new(store, values, revoked);
    let results = view.query_batch(&probes);
    let mut esc = Vec::new();
    let mut miss = Vec::new();
    for ((d, r, t, p), result) in tuples.iter().zip(results) {
        let keynote = result.is_authorized();
        let rbac_ok = rbac.check_access_as(
            user,
            &Domain::new(d.as_str()),
            &Role::new(r.as_str()),
            &ObjectType::new(t.as_str()),
            &Permission::new(p.as_str()),
        );
        let point = format!("{d}/{r}: {p} on {t}");
        if keynote && !rbac_ok {
            esc.push(point);
        } else if !keynote && rbac_ok {
            miss.push(point);
        }
    }
    (esc, miss)
}

/// Expands per-user probe results into findings, in user order.
pub(crate) fn materialize(
    escalations: &BTreeMap<User, Vec<String>>,
    missing: &BTreeMap<User, Vec<String>>,
    directory: &dyn PrincipalDirectory,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (user, points) in escalations {
        let key = directory.key_of(user);
        findings.push(Finding {
            code: LintCode::Escalation,
            assertion: None,
            line_start: None,
            line_end: None,
            message: format!(
                "principal {key:?} (user {user}) can reach verdicts the RBAC policy \
                 never granted: {}",
                points.join("; ")
            ),
            hint: "revoke or narrow the credential chain, or add the matching RBAC rows"
                .to_string(),
        });
    }
    for (user, points) in missing {
        let key = directory.key_of(user);
        findings.push(Finding {
            code: LintCode::MissingGrant,
            assertion: None,
            line_start: None,
            line_end: None,
            message: format!(
                "RBAC grants for user {user} (key {key:?}) that the credential store \
                 does not honour: {}",
                points.join("; ")
            ),
            hint: "re-encode the policy or issue the missing membership credential".to_string(),
        });
    }
    findings
}

/// Runs the escalation diff cold. `revoked` keys are honoured exactly
/// as at request time.
pub fn analyze_escalation(
    assertions: &[Assertion],
    store: &CompiledStore,
    rbac: &RbacPolicy,
    webcom_key: &str,
    directory: &dyn PrincipalDirectory,
    revoked: &BTreeSet<String>,
) -> Vec<Finding> {
    let users = user_universe(assertions, store, rbac, webcom_key, directory);
    let tuples = tuple_universe(assertions, rbac);

    // The user × tuple probe matrix is embarrassingly parallel across
    // users, so fan the outer loop out with rayon. Per-user results
    // come back in `users` (BTreeSet) order — `map().collect()`
    // preserves input order under rayon's work-stealing — so findings
    // are deterministic regardless of how the sweep is scheduled.
    let values = ComplianceValues::binary();
    let users_list: Vec<&User> = users.iter().collect();
    let per_user: Vec<(Vec<String>, Vec<String>)> = users_list
        .par_iter()
        .map(|user| probe_user(store, rbac, directory, revoked, &values, &tuples, user))
        .collect();

    let mut escalations: BTreeMap<User, Vec<String>> = BTreeMap::new();
    let mut missing: BTreeMap<User, Vec<String>> = BTreeMap::new();
    for (user, (esc, miss)) in users_list.iter().zip(per_user) {
        if !esc.is_empty() {
            escalations.insert((*user).clone(), esc);
        }
        if !miss.is_empty() {
            missing.insert((*user).clone(), miss);
        }
    }
    materialize(&escalations, &missing, directory)
}
