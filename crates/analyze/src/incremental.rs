//! Incremental analysis: re-run only the passes whose inputs a store
//! edit actually touched, and prove the result equals a cold run.
//!
//! The engine keys every cache on *content*, never on position:
//!
//! * per-assertion lints (HS005–HS013) cache under the assertion's
//!   SHA-256 fingerprint — the findings embed no store index, so a
//!   cached vector re-labels to whatever index the assertion occupies
//!   after the edit;
//! * graph findings (HS001–HS003) cache per weakly-connected component
//!   under a hash of the member fingerprints (delegation reachability,
//!   cycles, and dangling licensees never cross a weak component, so a
//!   component whose members are byte-identical re-materializes without
//!   re-running Tarjan or the POLICY BFS);
//! * escalation sweeps (HS004/HS014) cache per user under a hash of
//!   (the user's weak component, the tuple universe, the RBAC policy) —
//!   the compliance fixpoint only propagates support along delegation
//!   edges, so a user whose component is untouched keeps its verdict
//!   sweep.
//!
//! Equivalence to [`crate::analyze_with_directory`] holds because every
//! cache key captures the complete input of the pass it guards, the
//! few messages that embed assertion indices (duplicates, dangling
//! mentions) are regenerated at assembly time, and `Report::finish`
//! canonicalizes ordering. The property test in
//! `tests/analyzer_incremental.rs` checks byte-identical JSON after
//! every step of randomized edit sequences.

use crate::diag::{Finding, LintCode, Report};
use crate::graph::{self, ComponentFindings};
use crate::{escalation, per_assertion_findings, AnalysisOptions};
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::compiled::CompiledStore;
use hetsec_keynote::values::ComplianceValues;
use hetsec_rbac::{RbacPolicy, User};
use hetsec_translate::PrincipalDirectory;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// One store edit, in the shape `PolicyBus` propagations arrive:
/// something was granted (add), retired (remove), or re-issued with
/// different conditions (modify).
#[derive(Clone, Debug)]
pub enum StoreEdit {
    /// Append an assertion at the end of the store.
    Add(Assertion),
    /// Remove the assertion at the index, shifting later ones down.
    Remove(usize),
    /// Replace the assertion at the index in place.
    Modify(usize, Assertion),
}

/// What the last [`IncrementalAnalyzer::analyze`] call actually did —
/// the observable evidence that caching worked.
#[derive(Clone, Copy, Debug, Default)]
pub struct IncrementalStats {
    /// Assertions whose per-assertion lints were recomputed.
    pub assertions_relinted: usize,
    /// Assertions served from the fingerprint lint cache.
    pub assertions_cached: usize,
    /// Weak components whose graph pass was recomputed.
    pub components_recomputed: usize,
    /// Weak components served from the component cache.
    pub components_cached: usize,
    /// Users whose escalation sweep was re-probed.
    pub users_probed: usize,
    /// Users served from the escalation cache.
    pub users_cached: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn hash_rbac(rbac: &RbacPolicy) -> u64 {
    let json = serde_json::to_string(rbac).expect("rbac serializes");
    fnv1a(json.as_bytes(), FNV_OFFSET)
}

/// One cached escalation probe: the (escalations, missing-grants)
/// point lists `escalation::probe_user` returned for a user.
type ProbeResult = Arc<(Vec<String>, Vec<String>)>;

/// The incremental analyzer: a store plus content-keyed caches for
/// every pass. `analyze` after [`IncrementalAnalyzer::apply`] re-runs
/// only what the edit dirtied; the report is byte-identical to a cold
/// [`crate::analyze_with_directory`] over the same assertions.
///
/// The caches assume the *environment* is fixed: the same directory,
/// `now`, revocation set, and attribute vocabulary on every call.
/// Changing those requires a fresh engine (the RBAC policy is the one
/// exception — [`IncrementalAnalyzer::set_rbac`] participates in the
/// escalation cache key).
#[derive(Clone)]
pub struct IncrementalAnalyzer {
    opts: AnalysisOptions,
    rbac_hash: u64,
    assertions: Vec<Assertion>,
    store: CompiledStore,
    lint_cache: HashMap<[u8; 32], Arc<Vec<Finding>>>,
    graph_cache: HashMap<u64, Arc<ComponentFindings>>,
    esc_cache: HashMap<User, (u64, ProbeResult)>,
    stats: IncrementalStats,
}

impl IncrementalAnalyzer {
    /// Builds an engine over the initial assertion list. No pass runs
    /// until the first `analyze` call.
    pub fn new(assertions: Vec<Assertion>, opts: AnalysisOptions) -> Self {
        let mut store = CompiledStore::default();
        for a in &assertions {
            store.add(a);
        }
        let rbac_hash = opts.rbac.as_ref().map(hash_rbac).unwrap_or(0);
        IncrementalAnalyzer {
            opts,
            rbac_hash,
            assertions,
            store,
            lint_cache: HashMap::new(),
            graph_cache: HashMap::new(),
            esc_cache: HashMap::new(),
            stats: IncrementalStats::default(),
        }
    }

    /// The current assertion list, in store order.
    pub fn assertions(&self) -> &[Assertion] {
        &self.assertions
    }

    /// The maintained compiled store.
    pub fn store(&self) -> &CompiledStore {
        &self.store
    }

    /// The analysis options the engine was built with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.opts
    }

    /// Cache effectiveness counters for the last `analyze` call.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Swaps the RBAC policy the escalation pass diffs against. Cached
    /// escalation sweeps key on the policy content, so this invalidates
    /// exactly the sweeps a policy change can move.
    pub fn set_rbac(&mut self, rbac: Option<RbacPolicy>) {
        self.rbac_hash = rbac.as_ref().map(hash_rbac).unwrap_or(0);
        self.opts.rbac = rbac;
    }

    /// Applies one edit to the maintained store. Cheap: one assertion
    /// compiles (add/modify) or one slot shifts out (remove); nothing is
    /// analyzed until the next `analyze` call.
    pub fn apply(&mut self, edit: StoreEdit) {
        match edit {
            StoreEdit::Add(a) => {
                self.store.add(&a);
                self.assertions.push(a);
            }
            StoreEdit::Remove(idx) => {
                self.store.remove(idx);
                self.assertions.remove(idx);
            }
            StoreEdit::Modify(idx, a) => {
                self.store.replace(idx, &a);
                self.assertions[idx] = a;
            }
        }
    }

    /// Analyzes the current store, reusing every cache the last edits
    /// did not invalidate. The returned report is byte-identical (via
    /// `to_json` / `Display`) to a cold run over `self.assertions()`.
    pub fn analyze(&mut self, directory: &dyn PrincipalDirectory) -> Report {
        let mut findings = Vec::new();
        let mut stats = IncrementalStats::default();

        // Pass 1: delegation graph, one weak component at a time.
        // Members are probed in (fingerprint, index) order so a cached
        // component's positional results line up with the same member
        // permutation regardless of where the assertions now sit.
        let mut comp_key_of: HashMap<String, u64> = HashMap::new();
        let mut live_graph_keys: HashSet<u64> = HashSet::new();
        for members in graph::weak_components(&self.store) {
            let mut sorted = members;
            sorted.sort_by(|&x, &y| {
                self.store
                    .fingerprint(x)
                    .cmp(&self.store.fingerprint(y))
                    .then(x.cmp(&y))
            });
            let mut key = FNV_OFFSET;
            for &m in &sorted {
                key = fnv1a(self.store.fingerprint(m).expect("member fingerprint"), key);
            }
            live_graph_keys.insert(key);
            let cf = match self.graph_cache.get(&key) {
                Some(c) => {
                    stats.components_cached += 1;
                    Arc::clone(c)
                }
                None => {
                    stats.components_recomputed += 1;
                    let c = Arc::new(graph::component_findings(
                        &self.store,
                        directory,
                        &self.opts.webcom_key,
                        &sorted,
                    ));
                    self.graph_cache.insert(key, Arc::clone(&c));
                    c
                }
            };
            findings.extend(graph::materialize_component(&cf, &sorted));
            for &m in &sorted {
                let mut register = |id| {
                    if let Some(t) = self.store.principals().text(id) {
                        comp_key_of.insert(t.to_string(), key);
                    }
                };
                if let Some(a) = self.store.authorizer_of(m) {
                    register(a);
                }
                for &l in self.store.licensees_of(m).unwrap_or(&[]) {
                    register(l);
                }
            }
        }

        // Pass 2: escalation, re-probing only users whose dependency
        // hash (their weak component + the tuple universe + the RBAC
        // policy) moved since their cached sweep.
        if let Some(rbac) = &self.opts.rbac {
            let users = escalation::user_universe(
                &self.assertions,
                &self.store,
                rbac,
                &self.opts.webcom_key,
                directory,
            );
            let tuples = escalation::tuple_universe(&self.assertions, rbac);
            let mut tuple_hash = FNV_OFFSET;
            for (d, r, t, p) in &tuples {
                for s in [d, r, t, p] {
                    tuple_hash = fnv1a(s.as_bytes(), tuple_hash);
                    tuple_hash = fnv1a(&[0xff], tuple_hash);
                }
            }

            let mut dep_of: BTreeMap<&User, u64> = BTreeMap::new();
            let mut dirty: Vec<&User> = Vec::new();
            for user in &users {
                let key_text = directory.key_of(user);
                let ck = comp_key_of.get(&key_text).copied().unwrap_or(0);
                let mut dep = fnv1a(&ck.to_le_bytes(), FNV_OFFSET);
                dep = fnv1a(&tuple_hash.to_le_bytes(), dep);
                dep = fnv1a(&self.rbac_hash.to_le_bytes(), dep);
                dep_of.insert(user, dep);
                match self.esc_cache.get(user) {
                    Some((cached_dep, _)) if *cached_dep == dep => stats.users_cached += 1,
                    _ => dirty.push(user),
                }
            }
            stats.users_probed = dirty.len();

            let values = ComplianceValues::binary();
            let store = &self.store;
            let revoked = &self.opts.revoked;
            let probed: Vec<(Vec<String>, Vec<String>)> = dirty
                .par_iter()
                .map(|user| {
                    escalation::probe_user(store, rbac, directory, revoked, &values, &tuples, user)
                })
                .collect();
            for (user, res) in dirty.iter().zip(probed) {
                self.esc_cache
                    .insert((*user).clone(), (dep_of[*user], Arc::new(res)));
            }

            let mut escalations: BTreeMap<User, Vec<String>> = BTreeMap::new();
            let mut missing: BTreeMap<User, Vec<String>> = BTreeMap::new();
            for user in &users {
                let (_, res) = self.esc_cache.get(user).expect("swept above");
                if !res.0.is_empty() {
                    escalations.insert(user.clone(), res.0.clone());
                }
                if !res.1.is_empty() {
                    missing.insert(user.clone(), res.1.clone());
                }
            }
            findings.extend(escalation::materialize(&escalations, &missing, directory));
            self.esc_cache.retain(|u, _| users.contains(u));
        }

        // Passes 3 & 4: per-assertion lints from the fingerprint cache,
        // plus duplicate detection (recomputed — first-index semantics
        // shift with every edit, but the scan is a hash lookup per
        // assertion).
        let mut seen: HashMap<[u8; 32], usize> = HashMap::new();
        for (idx, a) in self.assertions.iter().enumerate() {
            let fp = *self.store.fingerprint(idx).expect("assertion fingerprint");
            let cached = match self.lint_cache.get(&fp) {
                Some(c) => {
                    stats.assertions_cached += 1;
                    Arc::clone(c)
                }
                None => {
                    stats.assertions_relinted += 1;
                    let c = Arc::new(per_assertion_findings(a, &self.opts, directory));
                    self.lint_cache.insert(fp, Arc::clone(&c));
                    c
                }
            };
            for f in cached.iter() {
                let mut f = f.clone();
                f.assertion = Some(idx);
                findings.push(f);
            }
            match seen.get(&fp) {
                Some(&first) => findings.push(Finding {
                    code: LintCode::DuplicateAssertion,
                    assertion: Some(idx),
                    line_start: None,
                    line_end: None,
                    message: format!("assertion is byte-identical to assertion #{first}"),
                    hint: "delete the duplicate; it cannot change any verdict".to_string(),
                }),
                None => {
                    seen.insert(fp, idx);
                }
            }
        }

        // Bound the caches: drop entries no current assertion can hit
        // once they outnumber the live set by 2x (the slack keeps the
        // common edit-and-revert pattern warm).
        if self.lint_cache.len() > 2 * self.assertions.len() + 64 {
            self.lint_cache.retain(|fp, _| seen.contains_key(fp));
        }
        if self.graph_cache.len() > 2 * live_graph_keys.len() + 64 {
            self.graph_cache.retain(|k, _| live_graph_keys.contains(k));
        }

        self.stats = stats;
        Report { findings }.finish()
    }
}

/// Convenience used by tests and the CLI's `--incremental-check`:
/// replays `edits` on top of `initial`, analyzing after every step, and
/// returns the final report plus the final assertion list (so callers
/// can cold-analyze it for comparison).
pub fn replay(
    initial: Vec<Assertion>,
    edits: Vec<StoreEdit>,
    opts: &AnalysisOptions,
    directory: &dyn PrincipalDirectory,
) -> (Report, Vec<Assertion>) {
    let mut engine = IncrementalAnalyzer::new(initial, opts.clone());
    let mut report = engine.analyze(directory);
    for edit in edits {
        engine.apply(edit);
        report = engine.analyze(directory);
    }
    let assertions = engine.assertions().to_vec();
    (report, assertions)
}
