//! The sharded multi-master fabric and the pipelined mux transport
//! (PR 8): out-of-order reply correlation, interleaved bursts, reader
//! death mid-window, cross-shard forwarding, and the hop guard.

use hetsec_graphs::Value;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_rbac::User;
use hetsec_webcom::wire::{read_frame, write_frame};
use hetsec_webcom::{
    principal_key, serve_tcp_with, synthetic_stack, ArithComponentExecutor, BurstOp, ClientConfig,
    ClientEngine, ClientTransport, ComponentExecutor, ExecError, ExecOutcome, LocalPeerLink,
    MuxTransport, PeerLink, ScheduleReply, ScheduleRequest, ScheduledAction, ServeOptions,
    ShardInfo, ShardRing, ShardRouter, TcpClientServer, TransportError, TrustManager,
    WebComMaster, WireRequest, WireResponse, MAX_FORWARD_HOPS,
};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn trust(keys: &[&str]) -> Arc<TrustManager> {
    let tm = TrustManager::permissive();
    for k in keys {
        tm.add_policy(&format!(
            "Authorizer: POLICY\nLicensees: \"{k}\"\nConditions: app_domain==\"WebCom\";\n"
        ))
        .expect("test policy parses");
    }
    Arc::new(tm)
}

fn add_component() -> ComponentRef {
    ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add")
}

fn op(principal: String, args: Vec<i64>) -> BurstOp {
    BurstOp {
        action: ScheduledAction::new(add_component(), "Dom", "Worker"),
        user: "worker".into(),
        principal,
        args: args.into_iter().map(Value::Int).collect(),
    }
}

/// Sleeps `args[1]` milliseconds, then delegates to the arithmetic
/// executor; records `args[0]` in completion order so tests can see
/// which op the server finished first.
struct VariableSleepExecutor {
    completions: Arc<Mutex<Vec<i64>>>,
}

impl ComponentExecutor for VariableSleepExecutor {
    fn invoke(
        &self,
        user: &User,
        component: &ComponentRef,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        if let Some(Value::Int(ms)) = args.get(1) {
            std::thread::sleep(Duration::from_millis(*ms as u64));
        }
        let result = ArithComponentExecutor.invoke(user, component, args);
        if let Some(Value::Int(tag)) = args.first() {
            self.completions.lock().unwrap().push(*tag);
        }
        result
    }
}

/// One master + one TCP serving client on a pipelined connection,
/// reached over the mux transport.
fn mux_fabric(
    window: usize,
    parallelism: usize,
    executor: Arc<dyn ComponentExecutor>,
) -> (Arc<WebComMaster>, TcpClientServer) {
    let stack = synthetic_stack(4);
    let engine = Arc::new(ClientEngine::new(ClientConfig {
        name: "c1".to_string(),
        key_text: "Kc1".to_string(),
        master_trust: trust(&["Km"]),
        stack,
        executor,
    }));
    let server = serve_tcp_with(
        engine,
        vec!["Dom".into()],
        "127.0.0.1:0",
        ServeOptions { pipeline: 8 },
    )
    .expect("serve mux test client");
    let master = WebComMaster::new("Km".to_string(), trust(&["Kc1"]))
        .with_op_timeout(Duration::from_secs(10))
        .with_burst_parallelism(parallelism);
    let transport: Arc<dyn ClientTransport> =
        Arc::new(MuxTransport::new(server.local_addr()).with_window(window));
    master.register_transport("c1", "Kc1", transport, vec!["Dom".into()]);
    (Arc::new(master), server)
}

#[test]
fn mux_correlates_out_of_order_replies() {
    let completions = Arc::new(Mutex::new(Vec::new()));
    let (master, server) = mux_fabric(
        8,
        2,
        Arc::new(VariableSleepExecutor {
            completions: Arc::clone(&completions),
        }),
    );
    // Op 0 is slow (300 ms), op 1 fast (10 ms): with both pipelined
    // down one socket, op 1's reply arrives first and must still land
    // with op 1's caller.
    let outcomes = master.schedule_burst(vec![
        op(principal_key(0), vec![1000, 300]),
        op(principal_key(1), vec![2000, 10]),
    ]);
    assert_eq!(
        outcomes,
        vec![
            ExecOutcome::Ok(Value::Int(1300)),
            ExecOutcome::Ok(Value::Int(2010)),
        ]
    );
    let order = completions.lock().unwrap().clone();
    assert_eq!(
        order,
        vec![2000, 1000],
        "fast op should complete before the slow one (replies out of order)"
    );
    server.stop();
}

#[test]
fn interleaved_bursts_from_two_callers_stay_correlated() {
    let completions = Arc::new(Mutex::new(Vec::new()));
    let (master, server) = mux_fabric(
        4,
        4,
        Arc::new(VariableSleepExecutor {
            completions: Arc::clone(&completions),
        }),
    );
    let a = Arc::clone(&master);
    let b = Arc::clone(&master);
    let (outs_a, outs_b) = std::thread::scope(|s| {
        let ha = s.spawn(move || {
            a.schedule_burst((0..10).map(|i| op(principal_key(0), vec![1000 + i, 1])).collect())
        });
        let hb = s.spawn(move || {
            b.schedule_burst((0..10).map(|i| op(principal_key(1), vec![2000 + i, 1])).collect())
        });
        (ha.join().unwrap(), hb.join().unwrap())
    });
    for (i, out) in outs_a.iter().enumerate() {
        assert_eq!(*out, ExecOutcome::Ok(Value::Int(1000 + i as i64 + 1)), "caller A op {i}");
    }
    for (i, out) in outs_b.iter().enumerate() {
        assert_eq!(*out, ExecOutcome::Ok(Value::Int(2000 + i as i64 + 1)), "caller B op {i}");
    }
    assert_eq!(completions.lock().unwrap().len(), 20);
    server.stop();
}

fn raw_request(op_id: u64) -> ScheduleRequest {
    ScheduleRequest {
        op_id,
        action: ScheduledAction::new(add_component(), "Dom", "Worker"),
        user: "worker".into(),
        principal: principal_key(0),
        master_key: "Km".to_string(),
        credentials: vec![],
        stamps: vec![],
        args: vec![Value::Int(1), Value::Int(2)],
    }
}

/// Accepts one connection, reads `swallow` frames without ever
/// replying, then severs the connection.
fn swallowing_server(listener: TcpListener, swallow: usize) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept mux victim");
        for _ in 0..swallow {
            let _ = read_frame::<WireRequest, _>(&mut stream);
        }
        // Dropping the stream EOFs the mux reader mid-window.
    })
}

/// Accepts connections and answers every Schedule frame correctly.
fn echoing_server(listener: TcpListener) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        // One connection is all the test needs.
        if let Ok((mut stream, _)) = listener.accept() {
            while let Ok(frame) = read_frame::<WireRequest, _>(&mut stream) {
                if let WireRequest::Schedule(req) = frame {
                    let reply = WireResponse::Reply(ScheduleReply {
                        op_id: req.op_id,
                        client: "echo".to_string(),
                        outcome: ExecOutcome::Ok(Value::Int(42)),
                        replayed: false,
                    });
                    if write_frame(&mut stream, &reply).is_err() {
                        break;
                    }
                }
            }
        }
    })
}

#[test]
fn reader_death_fails_pending_ops_retryably_and_drains_the_window() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind victim listener");
    let addr: SocketAddr = listener.local_addr().unwrap();
    let victim = swallowing_server(listener, 2);

    let transport = Arc::new(MuxTransport::new(addr).with_window(2));
    // Fill the whole window with ops the server will never answer.
    let failures: Vec<TransportError> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..=2u64)
            .map(|id| {
                let t = Arc::clone(&transport);
                s.spawn(move || t.call(&raw_request(id), Duration::from_secs(10)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap().expect_err("op should fail when the reader dies"))
            .collect()
    });
    victim.join().unwrap();
    for err in &failures {
        assert!(
            matches!(err, TransportError::Closed(_)),
            "pending ops must fail retryably (Closed), got {err:?}"
        );
    }

    // The window drained and the transport reconnects: a fresh server
    // on the same address serves the full window again.
    let listener = TcpListener::bind(addr).expect("rebind as echo server");
    let echo = echoing_server(listener);
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (3..=4u64)
            .map(|id| {
                let t = Arc::clone(&transport);
                s.spawn(move || t.call(&raw_request(id), Duration::from_secs(10)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, out) in outcomes.iter().enumerate() {
        let reply = out.as_ref().expect("reconnected call succeeds");
        assert_eq!(reply.op_id, 3 + i as u64);
        assert_eq!(reply.outcome, ExecOutcome::Ok(Value::Int(42)));
    }
    drop(transport); // severs the connection; the echo server exits
    echo.join().unwrap();
}

/// Records which shard executed which op tag (`args[0]`).
struct ShardTaggingExecutor {
    shard: usize,
    log: Arc<Mutex<Vec<(usize, i64)>>>,
}

impl ComponentExecutor for ShardTaggingExecutor {
    fn invoke(
        &self,
        user: &User,
        component: &ComponentRef,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        if let Some(Value::Int(tag)) = args.first() {
            self.log.lock().unwrap().push((self.shard, *tag));
        }
        ArithComponentExecutor.invoke(user, component, args)
    }
}

/// Per-(shard, op-tag) execution log shared with every [`ShardTaggingExecutor`].
type ShardLog = Arc<Mutex<Vec<(usize, i64)>>>;

/// An in-process 3-shard fabric whose executors tag every execution
/// with their shard id.
fn tagging_fabric(shards: usize) -> (ShardRouter, ShardLog, Vec<hetsec_webcom::ClientHandle>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let stack = synthetic_stack(50);
    let master_keys: Vec<String> = (0..shards).map(|s| format!("Km{s}")).collect();
    let master_key_refs: Vec<&str> = master_keys.iter().map(String::as_str).collect();
    let mut masters = Vec::new();
    let mut handles = Vec::new();
    for (s, master_key) in master_keys.iter().enumerate() {
        let client_key = format!("Kc{s}");
        let handle = hetsec_webcom::spawn_client(ClientConfig {
            name: format!("c{s}"),
            key_text: client_key.clone(),
            // Forwarded requests carry the *origin* master's key, so
            // every client trusts the whole master fleet.
            master_trust: trust(&master_key_refs),
            stack: Arc::clone(&stack),
            executor: Arc::new(ShardTaggingExecutor {
                shard: s,
                log: Arc::clone(&log),
            }),
        });
        let master = WebComMaster::new(master_key.clone(), trust(&[client_key.as_str()]))
            .with_op_timeout(Duration::from_secs(10));
        master.register_client(&handle, vec!["Dom".into()]);
        masters.push(Arc::new(master));
        handles.push(handle);
    }
    (ShardRouter::local(masters), log, handles)
}

/// Property test (deterministic seeded cases, like `tests/properties.rs`
/// — the vendored proptest is a placeholder): driving every op through
/// shard 0's master, regardless of which shard owns its principal, must
/// land each op on its home shard exactly once via peer forwarding.
#[test]
fn every_op_lands_on_its_home_shard_exactly_once() {
    let mut state = 0x5EED_FAB5u64;
    let mut rand = move |n: usize| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % n as u64) as usize
    };
    for case in 0..8 {
        let ranks: Vec<usize> = (0..1 + rand(23)).map(|_| rand(50)).collect();
        let (router, log, handles) = tagging_fabric(3);
        let ops: Vec<BurstOp> = ranks
            .iter()
            .enumerate()
            .map(|(i, &rank)| op(principal_key(rank), vec![i as i64, 1]))
            .collect();
        let outcomes = router.masters()[0].schedule_burst(ops);
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(
                *out,
                ExecOutcome::Ok(Value::Int(i as i64 + 1)),
                "case {case}: op {i} failed (ranks {ranks:?})"
            );
        }
        let executed = log.lock().unwrap().clone();
        assert_eq!(
            executed.len(),
            ranks.len(),
            "case {case}: each op executes exactly once (ranks {ranks:?})"
        );
        let by_tag: HashMap<i64, usize> = executed.iter().map(|&(s, t)| (t, s)).collect();
        assert_eq!(by_tag.len(), ranks.len(), "case {case}: no op executed twice");
        for (i, &rank) in ranks.iter().enumerate() {
            let home = router.ring().owner_of(&principal_key(rank));
            assert_eq!(
                by_tag[&(i as i64)],
                home,
                "case {case}: op {i} (principal rank {rank}) executed off its home shard"
            );
        }
        // Off-shard ops really did go through the forward path.
        let off_shard = ranks
            .iter()
            .filter(|&&r| router.ring().owner_of(&principal_key(r)) != 0)
            .count();
        assert_eq!(router.masters()[0].stats().forwarded, off_shard, "case {case}");
        for h in handles {
            h.shutdown();
        }
    }
}

#[test]
fn hop_guard_trips_on_ring_disagreement() {
    // Two masters that BOTH claim shard 1 of a two-shard ring: an op
    // owned by shard 0 bounces between them until the hop guard trips.
    let ring = Arc::new(ShardRing::new(2));
    let principal = (0..1000)
        .map(principal_key)
        .find(|p| ring.owner_of(p) == 0)
        .expect("some principal hashes to shard 0");
    let a = Arc::new(
        WebComMaster::new("Ka".to_string(), trust(&[])).with_op_timeout(Duration::from_secs(5)),
    );
    let b = Arc::new(
        WebComMaster::new("Kb".to_string(), trust(&[])).with_op_timeout(Duration::from_secs(5)),
    );
    let link = |m: &Arc<WebComMaster>, name: &str| -> HashMap<usize, Arc<dyn PeerLink>> {
        let mut peers: HashMap<usize, Arc<dyn PeerLink>> = HashMap::new();
        peers.insert(0, Arc::new(LocalPeerLink::new(m, name.to_string())));
        peers
    };
    a.set_shard(Arc::new(ShardInfo {
        ring: Arc::clone(&ring),
        shard_id: 1,
        peers: link(&b, "b"),
    }));
    b.set_shard(Arc::new(ShardInfo {
        ring: Arc::clone(&ring),
        shard_id: 1,
        peers: link(&a, "a"),
    }));
    let outcomes = a.schedule_burst(vec![op(principal, vec![1, 2])]);
    assert_eq!(outcomes.len(), 1);
    match &outcomes[0] {
        ExecOutcome::Failed(e) => assert!(
            e.detail.contains("hop limit"),
            "expected a hop-limit error, got {e:?}"
        ),
        other => panic!("expected the hop guard to fail the op, got {other:?}"),
    }
    let rejected = a.stats().forward_rejected + b.stats().forward_rejected;
    assert_eq!(rejected, 1, "exactly one master rejects at the hop limit");
    // The guard really is the configured constant, not an accident of
    // the bounce count.
    assert_eq!(MAX_FORWARD_HOPS, 3);
}

#[test]
fn peer_endpoint_answers_identify_with_a_typed_error() {
    // A master's Forward endpoint is not a serving client. A transport
    // pointed at it by mistake must get a protocol error naming the
    // mismatch — not a fabricated identity that would register the
    // master's own port as a schedulable client.
    let master = Arc::new(
        WebComMaster::new("Km".to_string(), trust(&[])).with_op_timeout(Duration::from_secs(5)),
    );
    let server = hetsec_webcom::serve_master(Arc::clone(&master), "127.0.0.1:0")
        .expect("bind master peer endpoint");
    let transport = hetsec_webcom::TcpTransport::new(server.local_addr());
    match transport.identify(Duration::from_secs(5)) {
        Err(TransportError::Protocol(detail)) => assert!(
            detail.contains("master-to-master"),
            "error should name the endpoint mismatch, got {detail:?}"
        ),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    server.stop();
}

/// Count completions across an atomic so the slow path (lockstep) and
/// the mux path are compared on the same fabric shape.
#[test]
fn mux_keeps_the_window_full_under_load() {
    let served = Arc::new(AtomicUsize::new(0));
    struct Counting {
        served: Arc<AtomicUsize>,
    }
    impl ComponentExecutor for Counting {
        fn invoke(
            &self,
            user: &User,
            component: &ComponentRef,
            args: &[Value],
        ) -> Result<Value, ExecError> {
            std::thread::sleep(Duration::from_millis(2));
            self.served.fetch_add(1, Ordering::SeqCst);
            ArithComponentExecutor.invoke(user, component, args)
        }
    }
    let (master, server) = mux_fabric(
        8,
        8,
        Arc::new(Counting {
            served: Arc::clone(&served),
        }),
    );
    let ops: Vec<BurstOp> = (0..32).map(|i| op(principal_key(0), vec![i, 1])).collect();
    let started = std::time::Instant::now();
    let outcomes = master.schedule_burst(ops);
    let elapsed = started.elapsed();
    assert!(outcomes.iter().all(|o| matches!(o, ExecOutcome::Ok(_))));
    assert_eq!(served.load(Ordering::SeqCst), 32);
    // 32 ops × 2 ms service, lockstep, would take ≥ 64 ms; a window of
    // 8 on a pipelined server should overlap most of it.
    assert!(
        elapsed < Duration::from_millis(64),
        "mux should overlap service time, took {elapsed:?}"
    );
    server.stop();
}
