//! Integration tests for the incremental analysis engine and the
//! semantic verdict diff: the incremental engine must be
//! *indistinguishable* from a cold `analyze` run after any edit
//! sequence, and `diff_verdicts` must witness exactly the verdict
//! flips an edit causes.
//!
//! The random tests use the same deterministic splitmix64 harness as
//! `tests/properties.rs` (the vendored `proptest` crate is an offline
//! placeholder), so every failure reproduces from the seed.

use hetsec_analyze::{
    analyze_with_directory, diff_verdicts, AnalysisOptions, IncrementalAnalyzer, StoreEdit,
};
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::parser::parse_assertions;
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::RbacPolicy;
use hetsec_translate::{encode_policy, SymbolicDirectory};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rbac_fixture(name: &str) -> RbacPolicy {
    serde_json::from_str(&fixture(name)).expect("fixture policy parses")
}

/// The CLI's defect-lint options, minus the line spans (the engine
/// analyzes parsed assertions, so both sides run span-free).
fn defect_options() -> AnalysisOptions {
    let mut opts = AnalysisOptions {
        rbac: Some(rbac_fixture("defects.rbac.json")),
        now: Some(200.0),
        ..Default::default()
    };
    opts.revoked.insert("Kdave".to_string());
    opts.known_attributes
        .extend(hetsec_webcom::ADAPTER_ATTRIBUTES.iter().map(|s| s.to_string()));
    opts
}

// ---- deterministic splitmix64 harness (same as tests/properties.rs) ----

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A pool of credential-shaped assertions to draw random edits from:
/// memberships, delegations, oddballs (tautologies, unknown
/// attributes, expired windows) — enough variety to drive every
/// analysis pass.
fn assertion_pool() -> Vec<Assertion> {
    let mut text = String::new();
    for d in 0..3 {
        for r in 0..2 {
            text.push_str(&format!(
                "KeyNote-Version: 2\nAuthorizer: \"KWebCom\"\nLicensees: \"Kpool{d}{r}\"\n\
                 Conditions: (app_domain == \"WebCom\" && (Domain == \"D{d}\" && Role == \"R{r}\"));\n\n"
            ));
        }
    }
    text.push_str(
        "KeyNote-Version: 2\nAuthorizer: \"Kpool00\"\nLicensees: \"Ksub\"\n\
         Conditions: app_domain == \"WebCom\";\n\n\
         KeyNote-Version: 2\nAuthorizer: \"Ksub\"\nLicensees: \"Kpool00\"\n\
         Conditions: app_domain == \"WebCom\";\n\n\
         KeyNote-Version: 2\nAuthorizer: \"KWebCom\"\nLicensees: \"Kodd1\"\n\
         Conditions: (app_domain == \"WebCom\" || app_domain != \"WebCom\");\n\n\
         KeyNote-Version: 2\nAuthorizer: \"KWebCom\"\nLicensees: \"Kodd2\"\n\
         Conditions: (clearance == \"high\");\n\n\
         KeyNote-Version: 2\nAuthorizer: \"KWebCom\"\nLicensees: \"Kodd3\"\n\
         Conditions: (app_domain == \"WebCom\" && now < 100);\n\n\
         KeyNote-Version: 2\nAuthorizer: \"Korphan\"\nLicensees: \"Kpool01\"\n\
         Conditions: app_domain == \"WebCom\";\n\n\
         KeyNote-Version: 2\nAuthorizer: \"KWebCom\"\nLicensees: \"ghost\"\n\
         Conditions: app_domain == \"WebCom\";\n",
    );
    parse_assertions(&text).expect("pool parses")
}

/// The core equivalence property: after EVERY step of a random edit
/// sequence, the warm incremental engine's report is byte-identical to
/// a cold `analyze` of the same assertion list.
#[test]
fn random_edit_sequences_match_cold_analysis_exactly() {
    let dir = SymbolicDirectory::default();
    let pool = assertion_pool();
    for seed in 0..6u64 {
        let mut rng = Rng(0x5eed_1ac0 ^ seed);
        // Start from the encoded salaries policy -- a store every pass
        // has opinions about once we mutate it.
        let policy = salaries_policy();
        let mut assertions = encode_policy(&policy, "KWebCom", &dir);
        let opts = AnalysisOptions {
            rbac: Some(policy),
            now: Some(200.0),
            ..Default::default()
        };
        let mut engine = IncrementalAnalyzer::new(assertions.clone(), opts.clone());
        let (mut total_relinted, mut total_cached) = (0usize, 0usize);
        for step in 0..24 {
            let edit = match rng.below(3) {
                0 => StoreEdit::Add(pool[rng.below(pool.len())].clone()),
                1 if !assertions.is_empty() => StoreEdit::Remove(rng.below(assertions.len())),
                _ if !assertions.is_empty() => StoreEdit::Modify(
                    rng.below(assertions.len()),
                    pool[rng.below(pool.len())].clone(),
                ),
                _ => StoreEdit::Add(pool[rng.below(pool.len())].clone()),
            };
            // Mirror the edit on the plain assertion list.
            match &edit {
                StoreEdit::Add(a) => assertions.push(a.clone()),
                StoreEdit::Remove(i) => {
                    assertions.remove(*i);
                }
                StoreEdit::Modify(i, a) => assertions[*i] = a.clone(),
            }
            engine.apply(edit);
            let warm = engine.analyze(&dir).to_json();
            let cold = analyze_with_directory(&assertions, &opts, &dir).to_json();
            assert_eq!(
                warm, cold,
                "seed {seed} step {step}: incremental report diverged from cold analysis"
            );
            total_relinted += engine.stats().assertions_relinted;
            total_cached += engine.stats().assertions_cached;
        }
        // The engine must actually be serving from its caches, not
        // re-deriving the world each step: across the whole sequence,
        // cache hits must dominate re-lints.
        assert!(
            total_cached > total_relinted,
            "seed {seed}: cache never took over: {total_cached} hits vs {total_relinted} relints"
        );
    }
}

#[test]
fn incremental_defect_fixture_matches_cold_run() {
    let dir = SymbolicDirectory::default();
    let assertions = parse_assertions(&fixture("defects.kn")).expect("fixture parses");
    let opts = defect_options();
    let cold = analyze_with_directory(&assertions, &opts, &dir).to_json();
    let mut engine = IncrementalAnalyzer::new(assertions, opts);
    assert_eq!(engine.analyze(&dir).to_json(), cold);
    // A second run with no edits is a pure cache replay.
    assert_eq!(engine.analyze(&dir).to_json(), cold);
    let stats = engine.stats();
    assert_eq!(stats.assertions_relinted, 0, "no edit, no relint: {stats:?}");
    assert_eq!(stats.components_recomputed, 0, "no edit, no graph work: {stats:?}");
}

// ---- semantic verdict diff ----

#[test]
fn semdiff_golden_fixture_reproduces() {
    let old = parse_assertions(&fixture("defects.kn")).expect("fixture parses");
    let new = parse_assertions(&fixture("defects_v2.kn")).expect("fixture parses");
    let mut opts = AnalysisOptions {
        now: Some(200.0),
        ..Default::default()
    };
    opts.revoked.insert("Kdave".to_string());
    opts.known_attributes
        .extend(hetsec_webcom::ADAPTER_ATTRIBUTES.iter().map(|s| s.to_string()));
    let diff = diff_verdicts(&old, &new, &opts);
    assert_eq!(
        diff.report.to_json().trim(),
        fixture("semdiff.golden.json").trim(),
        "semantic diff drifted from fixtures/semdiff.golden.json; regenerate it if intentional"
    );
    // The fixture edit grants Trent Sales/Manager: a widening witness
    // with a concrete flipped request must come back.
    assert!(diff
        .witnesses
        .iter()
        .any(|w| w.principal == "Ktrent" && !w.before && w.after));
}

#[test]
fn every_witness_is_a_real_verdict_flip() {
    // Soundness: re-evaluate each reported witness through both
    // fixpoints independently and require the claimed flip.
    use hetsec_keynote::compiled::{query_compiled, CompiledStore};
    use hetsec_keynote::Query;
    let old = parse_assertions(&fixture("defects.kn")).expect("fixture parses");
    let new = parse_assertions(&fixture("defects_v2.kn")).expect("fixture parses");
    let mut opts = AnalysisOptions {
        now: Some(200.0),
        ..Default::default()
    };
    opts.revoked.insert("Kdave".to_string());
    let diff = diff_verdicts(&old, &new, &opts);
    assert!(!diff.witnesses.is_empty());
    let mut old_store = CompiledStore::default();
    old.iter().for_each(|a| {
        old_store.add(a);
    });
    let mut new_store = CompiledStore::default();
    new.iter().for_each(|a| {
        new_store.add(a);
    });
    for w in &diff.witnesses {
        let attrs = w
            .attributes
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut query = Query::new(vec![w.principal.clone()], attrs);
        // Revocations are part of the diff environment; mirror them.
        query.revoked = opts.revoked.clone();
        let before = query_compiled(&old_store, &[], &query).is_authorized();
        let after = query_compiled(&new_store, &[], &query).is_authorized();
        assert_eq!(
            (before, after),
            (w.before, w.after),
            "witness {w:?} does not reproduce"
        );
    }
}

#[test]
fn identical_stores_diff_clean() {
    let a = parse_assertions(&fixture("defects.kn")).expect("fixture parses");
    let diff = diff_verdicts(&a, &a, &AnalysisOptions::default());
    assert!(diff.witnesses.is_empty());
    assert!(diff.report.is_clean());
}
