//! The full cryptographic path: real (simulated-PKI) keys, signed
//! credentials, strict verification — no symbolic shortcuts.

use hetsec_crypto::KeyPair;
use hetsec_keynote::ast::{Assertion, LicenseeExpr, Principal};
use hetsec_keynote::session::{ActionQuery, KeyNoteSession, SessionError};
use hetsec_keynote::signing::sign_assertion;
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::User;
use hetsec_translate::batch::sign_owned;
use hetsec_translate::{encode_policy, KeyStoreDirectory, PrincipalDirectory, APP_DOMAIN};
use hetsec_webcom::{AuthzRequest, ScheduledAction, TrustManager};

fn attrs(d: &str, r: &str, t: &str, p: &str) -> hetsec_keynote::ActionAttributes {
    [
        ("app_domain", APP_DOMAIN),
        ("Domain", d),
        ("Role", r),
        ("ObjectType", t),
        ("Permission", p),
    ]
    .into_iter()
    .collect()
}

#[test]
fn strict_end_to_end_with_signed_figure_1() {
    let dir = KeyStoreDirectory::new();
    let webcom_key = dir.key_of(&User::new("WebCom"));
    let mut assertions = encode_policy(&salaries_policy(), &webcom_key, &dir);
    let signed = sign_owned(&mut assertions, &dir);
    assert_eq!(signed, 5);
    let mut session = KeyNoteSession::new(); // strict
    for a in assertions {
        session.add_policy_assertion(a).unwrap();
    }
    let claire = dir.key_of(&User::new("Claire"));
    assert!(session
        .evaluate(&ActionQuery::principals(&[claire.as_str()]).attributes(&attrs("Sales", "Manager", "SalariesDB", "read")))
        .is_authorized());
    assert!(!session
        .evaluate(&ActionQuery::principals(&[claire.as_str()]).attributes(&attrs("Sales", "Manager", "SalariesDB", "write")))
        .is_authorized());
}

#[test]
fn strict_delegation_chain_with_real_signatures() {
    let dir = KeyStoreDirectory::new();
    let webcom_key = dir.key_of(&User::new("WebCom"));
    let claire_key = dir.key_of(&User::new("Claire"));
    let fred_key = dir.key_of(&User::new("Fred"));

    let mut assertions = encode_policy(&salaries_policy(), &webcom_key, &dir);
    // Claire signs a Figure 7 delegation to Fred with her real key.
    let mut delegation = Assertion::new(
        Principal::key(&claire_key),
        LicenseeExpr::Principal(fred_key.clone()),
    );
    delegation.conditions = Some(
        hetsec_keynote::parser::parse_conditions(&format!(
            "app_domain==\"{APP_DOMAIN}\" && Domain==\"Sales\" && Role==\"Manager\";"
        ))
        .unwrap(),
    );
    sign_assertion(&mut delegation, &dir.store().keypair("Claire")).unwrap();
    assertions.push(delegation);
    let n = sign_owned(&mut assertions, &dir);
    assert_eq!(n, 5); // the five membership credentials; delegation already signed

    let tm = TrustManager::strict();
    for a in assertions {
        tm.add_policy_assertion_or_credential(a);
    }
    let action = ScheduledAction::new(
        hetsec_middleware::component::ComponentRef::new(
            hetsec_middleware::naming::MiddlewareKind::Ejb,
            "Sales",
            "SalariesDB",
            "read",
        ),
        "Sales",
        "Manager",
    );
    assert!(tm.decide(&AuthzRequest::principal(&fred_key).action(&action)));
    // Tampered chains fail closed: a forged delegation is rejected.
    let mut forged = Assertion::new(
        Principal::key(&claire_key),
        LicenseeExpr::Principal(dir.key_of(&User::new("Mallory"))),
    );
    forged.signature = Some("sig-rsa-sha256:12345".to_string());
    assert!(tm.add_credential(forged).is_err());
}

#[test]
fn wrong_signer_rejected() {
    let kp_real = KeyPair::from_label("real-authorizer");
    let kp_other = KeyPair::from_label("someone-else");
    let mut a = Assertion::new(
        Principal::key(kp_real.public().to_text()),
        LicenseeExpr::Principal("Kx".to_string()),
    );
    // Signing with the wrong key is rejected at signing time...
    assert!(sign_assertion(&mut a, &kp_other).is_err());
    // ...and a signature transplanted from another assertion fails
    // verification.
    let mut b = Assertion::new(
        Principal::key(kp_other.public().to_text()),
        LicenseeExpr::Principal("Kx".to_string()),
    );
    sign_assertion(&mut b, &kp_other).unwrap();
    a.signature = b.signature.clone();
    let mut strict = KeyNoteSession::new();
    let err = strict.add_credential_parsed(a).unwrap_err();
    assert!(matches!(err, SessionError::BadSignature { .. }));
}

#[test]
fn credential_text_roundtrip_preserves_signature_validity() {
    use hetsec_keynote::parser::parse_assertion;
    use hetsec_keynote::print::print_assertion;
    let dir = KeyStoreDirectory::new();
    let webcom_key = dir.key_of(&User::new("WebCom"));
    let mut assertions = encode_policy(&salaries_policy(), &webcom_key, &dir);
    sign_owned(&mut assertions, &dir);
    for a in assertions.iter().filter(|a| a.signature.is_some()) {
        let text = print_assertion(a);
        let back = parse_assertion(&text).unwrap();
        assert_eq!(
            hetsec_keynote::signing::verify_assertion(&back),
            hetsec_keynote::signing::SignatureStatus::Valid,
            "signature survives text round-trip"
        );
    }
}

/// Helper used above: route policy assertions and credentials to the
/// right TrustManager entry points.
trait AddEither {
    fn add_policy_assertion_or_credential(&self, a: Assertion);
}

impl AddEither for TrustManager {
    fn add_policy_assertion_or_credential(&self, a: Assertion) {
        if a.is_policy() {
            self.add_policy_assertion(a).unwrap();
        } else {
            self.add_credential(a).unwrap();
        }
    }
}
