//! Signed verdict stamps end to end: tamper resistance of the stamp
//! envelope, cluster-wide verification amortisation (a credential's
//! RSA verify happens once at its home master, every other node admits
//! the stamped verdict), and the revocation guarantee — a perfectly
//! valid stamp never bypasses compliance-time refusal of a revoked
//! authorizer.

use hetsec_crypto::KeyPair;
use hetsec_keynote::{
    credential_fingerprint, sign_assertion, Assertion, LicenseeExpr, Principal, SignatureStatus,
    VerdictStamp, VerifyCache,
};
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_webcom::stack::TrustLayer;
use hetsec_webcom::{
    ArithComponentExecutor, AuthzRequest, AuthzStack, ClientConfig, ClientEngine, ExecOutcome,
    ScheduleRequest, ScheduledAction, StampIssuer, StampVerifier, TrustManager,
};
use std::sync::Arc;

/// splitmix64 — the same deterministic test-harness generator the
/// property suite uses.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn delegation(delegator: &KeyPair, licensee: &str) -> Assertion {
    let mut a = Assertion::new(
        Principal::key(delegator.public().to_text()),
        LicenseeExpr::Principal(licensee.to_string()),
    );
    sign_assertion(&mut a, delegator).expect("delegation signs");
    a
}

/// A strict trust manager whose only root is POLICY licensing the
/// delegator key — principals are reachable solely through signed
/// delegations, so every decision exercises credential verification.
fn strict_tm(delegator_key: &str) -> Arc<TrustManager> {
    let tm = TrustManager::strict();
    tm.add_policy(&format!(
        "Authorizer: POLICY\nLicensees: \"{delegator_key}\"\nConditions: app_domain==\"WebCom\";\n"
    ))
    .expect("policy parses");
    Arc::new(tm)
}

fn add_action() -> ScheduledAction {
    ScheduledAction::new(
        ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
        "Dom",
        "Worker",
    )
}

/// Flips one character of a hex string to a different hex digit.
fn flip_hex(s: &mut String, idx: usize) {
    let flipped: String = s
        .chars()
        .enumerate()
        .map(|(i, c)| {
            if i == idx {
                if c == '0' {
                    '1'
                } else {
                    '0'
                }
            } else {
                c
            }
        })
        .collect();
    *s = flipped;
}

#[test]
fn tampering_any_stamp_field_defeats_admission() {
    let mut rng = Rng(0xD1CE_5EED_0BAD_CAFE);
    let issuer_a = KeyPair::from_label("vs-prop-issuer-a");
    let issuer_b = KeyPair::from_label("vs-prop-issuer-b");
    for case in 0..48u64 {
        let delegator = KeyPair::from_label(&format!("vs-prop-delegator-{case}"));
        let cred = delegation(&delegator, &format!("Kuser{}", rng.below(1000)));
        let fp = credential_fingerprint(&cred).expect("signed credential has a fingerprint");
        let stamp = VerdictStamp::issue(
            &issuer_a,
            fp,
            &SignatureStatus::Valid,
            rng.below(1 << 40),
            rng.below(1 << 40),
        );
        let mut forged = stamp.clone();
        let field = rng.below(6);
        match field {
            0 => {
                let idx = rng.below(forged.fingerprint.len() as u64) as usize;
                flip_hex(&mut forged.fingerprint, idx);
            }
            1 => forged.status = ((forged.status as u64 + 1 + rng.below(3)) % 4) as u8,
            2 => forged.epoch ^= 1 + rng.below(u32::MAX as u64),
            3 => forged.issued_at ^= 1 + rng.below(u32::MAX as u64),
            // A fleet key that did not sign this stamp.
            4 => forged.issuer = issuer_b.public().to_text(),
            _ => {
                let idx = rng.below(forged.signature.len() as u64 - 1) as usize + 1;
                flip_hex(&mut forged.signature, idx);
            }
        }
        assert_ne!(forged, stamp, "case {case}: tamper must change a field");
        let verifier = StampVerifier::new(Arc::new(VerifyCache::new()))
            .trust_issuer(&issuer_a.public().to_text())
            .trust_issuer(&issuer_b.public().to_text());
        let delta = verifier.admit(std::slice::from_ref(&forged));
        assert_eq!(
            (delta.admitted, delta.rejected),
            (0, 1),
            "case {case}: tampered field {field} must be rejected, not admitted"
        );
        assert_eq!(verifier.cache().stats().entries, 0, "case {case}");
        // Control: the untampered stamp admits on the same verifier.
        let delta = verifier.admit(std::slice::from_ref(&stamp));
        assert_eq!(delta.admitted, 1, "case {case}: genuine stamp admits");
    }
}

#[test]
fn revoked_authorizer_is_refused_despite_a_valid_stamp() {
    let delegator = KeyPair::from_label("vs-revoke-delegator");
    let dkey = delegator.public().to_text();
    let cred = delegation(&delegator, "Kuser1");
    let master = KeyPair::from_label("vs-revoke-master");
    let fp = credential_fingerprint(&cred).unwrap();
    let stamp = VerdictStamp::issue(&master, fp, &SignatureStatus::Valid, 0, 0);

    let tm = strict_tm(&dkey);
    let verifier =
        StampVerifier::new(tm.verify_cache()).trust_issuer(&master.public().to_text());
    assert_eq!(verifier.admit(std::slice::from_ref(&stamp)).admitted, 1);

    let action = add_action();
    let request = AuthzRequest::principal("Kuser1")
        .action(&action)
        .credentials(std::slice::from_ref(&cred));
    assert!(tm.decide(&request), "stamped credential authorises Kuser1");
    let stats = tm.verify_cache_stats();
    assert_eq!(
        (stats.misses, stats.stamped),
        (0, 1),
        "the verdict came from the stamp, not a local verify"
    );

    // Revoke the delegator. The stamp is still perfectly valid — it
    // attests a true fact about the signature — but compliance now
    // refuses the revoked authorizer. Stamps amortise verification,
    // never authorisation.
    tm.revoke_key(dkey.clone());
    assert!(
        !tm.decide(&request),
        "revoked authorizer must be refused at compliance time"
    );
    assert_eq!(
        tm.verify_cache_stats().misses,
        0,
        "refusal is compliance-time: no re-verification happened"
    );
    // Reinstating restores the stamped authority without any new RSA.
    assert!(tm.reinstate_key(&dkey));
    assert!(tm.decide(&request));
    assert_eq!(tm.verify_cache_stats().misses, 0);
}

#[test]
fn second_node_re_presentation_pays_zero_per_credential_verifies() {
    let delegator = KeyPair::from_label("vs-fleet-delegator");
    let dkey = delegator.public().to_text();
    let creds: Vec<Assertion> = (0..6)
        .map(|i| delegation(&delegator, &format!("Kuser{i}")))
        .collect();
    let issuer = StampIssuer::new(KeyPair::from_label("vs-fleet-master"));
    // The home master pays the per-credential verifies exactly once,
    // at issuance.
    let stamps = issuer.stamps_for(0, &creds);
    assert_eq!(stamps.len(), creds.len());

    // Every node the credentials are re-presented to — first or fifth,
    // order does not matter — admits the stamped verdicts and decides
    // without a single per-credential RSA verify of its own.
    let action = add_action();
    for node in ["node-a", "node-b"] {
        let tm = strict_tm(&dkey);
        let verifier = StampVerifier::new(tm.verify_cache()).trust_issuer(issuer.key_text());
        let delta = verifier.admit(&stamps);
        assert_eq!(delta.admitted, creds.len() as u64, "{node}");
        for i in 0..creds.len() {
            let principal = format!("Kuser{i}");
            let request = AuthzRequest::principal(&principal)
                .action(&action)
                .credentials(&creds);
            assert!(tm.decide(&request), "{node}: Kuser{i}");
        }
        let stats = tm.verify_cache_stats();
        assert_eq!(stats.misses, 0, "{node}: zero per-credential verifies");
        assert_eq!(stats.stamped, creds.len() as u64, "{node}");
        assert!(stats.hits >= creds.len() as u64, "{node}");
    }

    // Control: a node outside the fleet (no stamps) pays one real
    // verify per credential — the cost the stamps amortise away.
    let cold = strict_tm(&dkey);
    let request = AuthzRequest::principal("Kuser0")
        .action(&action)
        .credentials(&creds);
    assert!(cold.decide(&request));
    assert_eq!(cold.verify_cache_stats().misses, creds.len() as u64);
}

#[test]
fn client_engine_admits_stamps_riding_the_request() {
    let delegator = KeyPair::from_label("vs-engine-delegator");
    let dkey = delegator.public().to_text();
    let creds: Vec<Assertion> = (0..3)
        .map(|i| delegation(&delegator, &format!("Kuser{i}")))
        .collect();
    let issuer = StampIssuer::new(KeyPair::from_label("vs-engine-master"));
    let stamps = issuer.stamps_for(0, &creds);

    let master_trust = {
        let tm = TrustManager::permissive();
        tm.add_policy(
            "Authorizer: POLICY\nLicensees: \"Km\"\nConditions: app_domain==\"WebCom\";\n",
        )
        .unwrap();
        Arc::new(tm)
    };
    let user_tm = strict_tm(&dkey);
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(Arc::clone(&user_tm))));
    let engine = ClientEngine::new(ClientConfig {
        name: "c1".to_string(),
        key_text: "Kc1".to_string(),
        master_trust,
        stack: Arc::new(stack),
        executor: Arc::new(ArithComponentExecutor),
    })
    .with_stamp_verifier(Arc::new(
        StampVerifier::new(user_tm.verify_cache()).trust_issuer(issuer.key_text()),
    ));

    let req = ScheduleRequest {
        op_id: 1,
        action: add_action(),
        user: "worker".into(),
        principal: "Kuser0".to_string(),
        master_key: "Km".to_string(),
        credentials: creds.clone(),
        stamps: stamps.as_ref().clone(),
        args: vec![
            hetsec_graphs::Value::Int(20),
            hetsec_graphs::Value::Int(22),
        ],
    };
    let reply = engine.handle(&req);
    assert_eq!(reply.outcome, ExecOutcome::Ok(hetsec_graphs::Value::Int(42)));
    let stats = engine.stats();
    assert_eq!(stats.executed, 1);
    assert_eq!(stats.stamps.admitted, creds.len() as u64);
    let vstats = user_tm.verify_cache_stats();
    assert_eq!(
        vstats.misses, 0,
        "the serving client verified nothing locally"
    );
}
