//! Cross-middleware migration fidelity (paper §4.3, Figure 9's Z→EJB
//! path) across all six directed pairs of the three middleware families.

use hetsec_com::ComMiddleware;
use hetsec_corba::CorbaMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::naming::{CorbaDomain, EjbDomain};
use hetsec_middleware::security::{MiddlewareSecurity, MiddlewareSecurityExt};
use hetsec_rbac::{PermissionGrant, RoleAssignment};
use hetsec_translate::{migrate, transform_policy, MigrationSpec};
use hetsec_middleware::MiddlewareKind;

fn ejb(name: &str) -> (EjbMiddleware, String) {
    let d = EjbDomain::new("host", "srv", name);
    (EjbMiddleware::new(d.clone()), d.to_string())
}

fn corba(name: &str) -> (CorbaMiddleware, String) {
    let d = CorbaDomain::new("zeus", name);
    (CorbaMiddleware::new(d.clone()), d.to_string())
}

/// Seeds a middleware with one method-level grant + assignment (or the
/// COM analogue).
fn seed(mw: &dyn MiddlewareSecurity, domain: &str) {
    let perm = if mw.kind() == MiddlewareKind::ComPlus {
        "Access"
    } else {
        "invoke"
    };
    mw.grant(&PermissionGrant::new(domain, "Operator", "Widget", perm))
        .unwrap();
    mw.assign(&RoleAssignment::new("olga", domain, "Operator"))
        .unwrap();
}

#[test]
fn all_directed_pairs_preserve_the_access_decision() {
    // For each ordered pair (source kind, target kind): seed source,
    // migrate, and check olga can still act on Widget in the target.
    for (src_idx, dst_idx) in [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)] {
        let com_src = ComMiddleware::new("SRC");
        let (ejb_src, ejb_src_d) = ejb("Src");
        let (corba_src, corba_src_d) = corba("src");
        let sources: [(&dyn MiddlewareSecurity, &str); 3] = [
            (&com_src, "SRC"),
            (&ejb_src, ejb_src_d.as_str()),
            (&corba_src, corba_src_d.as_str()),
        ];
        let com_dst = ComMiddleware::new("DST");
        let (ejb_dst, ejb_dst_d) = ejb("Dst");
        let (corba_dst, corba_dst_d) = corba("dst");
        let targets: [(&dyn MiddlewareSecurity, &str); 3] = [
            (&com_dst, "DST"),
            (&ejb_dst, ejb_dst_d.as_str()),
            (&corba_dst, corba_dst_d.as_str()),
        ];
        let (src, src_domain) = sources[src_idx];
        let (dst, dst_domain) = targets[dst_idx];
        seed(src, src_domain);
        let spec = MigrationSpec::domain(src_domain, dst_domain);
        let report = migrate(src, dst, &spec);
        assert!(
            report.import.skipped.is_empty(),
            "{}->{} skipped {:?}",
            src.instance_name(),
            dst.instance_name(),
            report.import.skipped
        );
        let expected_perm = if dst.kind() == MiddlewareKind::ComPlus {
            "Access"
        } else {
            "invoke"
        };
        assert!(
            dst.allows(
                &"olga".into(),
                &dst_domain.into(),
                &"Widget".into(),
                &expected_perm.into()
            ),
            "{}->{}",
            src.instance_name(),
            dst.instance_name()
        );
    }
}

#[test]
fn migration_is_idempotent() {
    let (src, src_d) = ejb("A");
    seed(&src, &src_d);
    let (dst, dst_d) = ejb("B");
    let spec = MigrationSpec::domain(src_d.clone(), dst_d.clone());
    let first = migrate(&src, &dst, &spec);
    let before = dst.export_policy();
    let second = migrate(&src, &dst, &spec);
    assert_eq!(dst.export_policy(), before);
    assert_eq!(first.transformed, second.transformed);
}

#[test]
fn transform_handles_multi_domain_policies() {
    let mut policy = hetsec_rbac::RbacPolicy::new();
    policy.grant(PermissionGrant::new("D1", "R", "T", "read"));
    policy.grant(PermissionGrant::new("D2", "R", "T", "read"));
    policy.assign(RoleAssignment::new("u", "D1", "R"));
    let mut spec = MigrationSpec::domain("D1", "E1");
    spec.domain_map.insert("D2".to_string(), "E2".to_string());
    let (out, renames) =
        transform_policy(&policy, MiddlewareKind::Ejb, MiddlewareKind::Ejb, &spec);
    assert!(renames.is_empty());
    let domains: Vec<String> = out.domains().iter().map(|d| d.to_string()).collect();
    assert_eq!(domains, vec!["E1".to_string(), "E2".to_string()]);
}

#[test]
fn lossy_com_migration_reports_unmappable_rows() {
    // COM Launch/RunAs have no method-level analogue; when migrated to
    // EJB they pass through verbatim and *work* (EJB permissions are
    // free-form method names), but a COM -> CORBA -> COM chain keeps
    // them intact too. Verify nothing is silently dropped anywhere.
    let com = ComMiddleware::new("SRC");
    com.grant(&PermissionGrant::new("SRC", "Op", "App", "Launch")).unwrap();
    com.grant(&PermissionGrant::new("SRC", "Op", "App", "RunAs")).unwrap();
    com.assign(&RoleAssignment::new("u", "SRC", "Op")).unwrap();
    let (dst, dst_d) = ejb("L");
    let report = migrate(&com, &dst, &MigrationSpec::domain("SRC", dst_d.clone()));
    assert!(report.import.skipped.is_empty());
    let back = ComMiddleware::new("SRC");
    let report2 = migrate(&dst, &back, &MigrationSpec::domain(dst_d, "SRC"));
    assert!(report2.import.skipped.is_empty());
    assert!(back.allows(&"u".into(), &"SRC".into(), &"App".into(), &"Launch".into()));
    assert!(back.allows(&"u".into(), &"SRC".into(), &"App".into(), &"RunAs".into()));
}

#[test]
fn similarity_migration_merges_drifted_vocabularies() {
    let (src, src_d) = ejb("Drift");
    src.grant(&PermissionGrant::new(src_d.as_str(), "SalesManagers", "Orders", "approve"))
        .unwrap();
    src.grant(&PermissionGrant::new(src_d.as_str(), "Clerks", "Orders", "enter"))
        .unwrap();
    src.assign(&RoleAssignment::new("carol", src_d.as_str(), "SalesManagers"))
        .unwrap();
    src.assign(&RoleAssignment::new("carl", src_d.as_str(), "Clerks"))
        .unwrap();
    let (dst, dst_d) = ejb("Canon");
    let spec = MigrationSpec::domain(src_d, dst_d.clone()).with_target_roles(vec![
        "SalesManager".to_string(),
        "Clerk".to_string(),
        "Auditor".to_string(),
    ]);
    let report = migrate(&src, &dst, &spec);
    assert_eq!(report.role_renames.len(), 2);
    assert!(dst.allows(&"carol".into(), &dst_d.as_str().into(), &"Orders".into(), &"approve".into()));
    assert!(dst.allows(&"carl".into(), &dst_d.as_str().into(), &"Orders".into(), &"enter".into()));
    // Renames went to the intended canonical names.
    let renamed: Vec<&str> = report.role_renames.iter().map(|(_, to, _)| to.as_str()).collect();
    assert!(renamed.contains(&"SalesManager"));
    assert!(renamed.contains(&"Clerk"));
}
