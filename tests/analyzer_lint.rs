//! Integration tests for the `hetsec-analyze` static analyzer: the
//! committed fixtures (clean stores stay clean, the seeded-defect store
//! trips every lint code and matches its golden JSON), the
//! encode/decode escalation oracle over the RBAC fixture workloads, and
//! property-style tests over random delegation DAGs.
//!
//! The random tests use the same deterministic splitmix64 harness as
//! `tests/properties.rs` (the vendored `proptest` crate is an offline
//! placeholder), so every failure reproduces from the seed.

use hetsec_analyze::{analyze_text, analyze_with_directory, AnalysisOptions, LintCode};
use hetsec_keynote::compiled::{query_compiled, CompiledStore};
use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::Query;
use hetsec_rbac::fixtures::{salaries_policy, synthetic_policy};
use hetsec_rbac::RbacPolicy;
use hetsec_translate::{decode_policy, encode_policy, SymbolicDirectory, APP_DOMAIN};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rbac_fixture(name: &str) -> RbacPolicy {
    serde_json::from_str(&fixture(name)).expect("fixture policy parses")
}

/// The CLI's lint options for the defect fixture run, mirrored exactly
/// (the golden file was produced through the CLI).
fn defect_options() -> AnalysisOptions {
    let mut opts = AnalysisOptions {
        rbac: Some(rbac_fixture("defects.rbac.json")),
        now: Some(200.0),
        ..Default::default()
    };
    opts.revoked.insert("Kdave".to_string());
    opts.known_attributes
        .extend(hetsec_webcom::ADAPTER_ATTRIBUTES.iter().map(|s| s.to_string()));
    opts
}

#[test]
fn clean_figure_fixture_is_lint_clean() {
    let opts = AnalysisOptions {
        rbac: Some(rbac_fixture("figures_clean.rbac.json")),
        ..Default::default()
    };
    let report = analyze_text(&fixture("figures_clean.kn"), &opts).expect("fixture parses");
    assert!(report.is_clean(), "expected clean, got:\n{report}");
}

#[test]
fn defect_fixture_trips_every_lint_code() {
    let report = analyze_text(&fixture("defects.kn"), &defect_options()).expect("fixture parses");
    // HS015/HS016 are verdict-diff codes: they compare two stores, so a
    // single-store lint can never produce them (see analyzer_incremental).
    let expected: BTreeSet<&str> = LintCode::ALL
        .iter()
        .filter(|c| !c.is_diff())
        .map(|c| c.as_str())
        .collect();
    assert_eq!(
        report.codes(),
        expected,
        "defect fixture must trip exactly the full single-store code set:\n{report}"
    );
}

#[test]
fn defect_fixture_matches_committed_golden_json() {
    let report = analyze_text(&fixture("defects.kn"), &defect_options()).expect("fixture parses");
    let golden = fixture("defects.golden.json");
    assert_eq!(
        report.to_json().trim(),
        golden.trim(),
        "lint output drifted from fixtures/defects.golden.json; regenerate it if intentional"
    );
}

#[test]
fn analyzer_default_vocabulary_covers_webcom_adapters() {
    // The analyzer must not flag attributes the shipped adapters set;
    // keeping this a test (rather than a webcom dependency in analyze)
    // lets third-party adapters extend the vocabulary at the CLI level.
    let defaults: BTreeSet<&str> = hetsec_analyze::DEFAULT_KNOWN_ATTRIBUTES.iter().copied().collect();
    for attr in hetsec_webcom::ADAPTER_ATTRIBUTES {
        assert!(defaults.contains(attr), "analyzer default vocabulary misses {attr:?}");
    }
}

// ---- encode/decode escalation oracle ----

fn rbac_workloads() -> Vec<RbacPolicy> {
    vec![
        salaries_policy(),
        synthetic_policy(2, 2, 2, 1),
        synthetic_policy(3, 2, 1, 2),
        synthetic_policy(1, 4, 3, 2),
    ]
}

#[test]
fn encoded_workloads_have_zero_escalation_diff() {
    for (i, policy) in rbac_workloads().into_iter().enumerate() {
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&policy, "KWebCom", &dir);
        let opts = AnalysisOptions {
            rbac: Some(policy),
            ..Default::default()
        };
        let report = analyze_with_directory(&assertions, &opts, &dir);
        assert!(
            report.is_clean(),
            "workload {i}: faithful encoding must analyze clean, got:\n{report}"
        );
    }
}

#[test]
fn decode_report_roundtrips_through_the_analyzer() {
    // encode -> decode -> analyze with the *decoded* policy as the RBAC
    // side: the decoded view must agree with the store it came from.
    for (i, policy) in rbac_workloads().into_iter().enumerate() {
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&policy, "KWebCom", &dir);
        let decoded = decode_policy(&assertions, "KWebCom", &dir);
        assert!(decoded.skipped.is_empty(), "workload {i}: {:?}", decoded.skipped);
        let opts = AnalysisOptions {
            rbac: Some(decoded.policy),
            ..Default::default()
        };
        let report = analyze_with_directory(&assertions, &opts, &dir);
        let escalation_codes: Vec<_> = report
            .findings
            .iter()
            .filter(|f| matches!(f.code, LintCode::Escalation | LintCode::MissingGrant))
            .collect();
        assert!(
            escalation_codes.is_empty(),
            "workload {i}: decode drifted from the store:\n{report}"
        );
    }
}

#[test]
fn escalation_findings_are_deterministic_across_runs() {
    // The escalation pass fans the user × tuple sweep out with rayon;
    // findings must come back in the same order on every run regardless
    // of scheduling. Run the full defect lint repeatedly and require
    // byte-identical reports.
    let text = fixture("defects.kn");
    let opts = defect_options();
    let baseline = format!("{}", analyze_text(&text, &opts).expect("fixture parses"));
    assert!(baseline.contains("HS004"), "sweep must produce escalation findings");
    for run in 1..4 {
        let report = format!("{}", analyze_text(&text, &opts).expect("fixture parses"));
        assert_eq!(baseline, report, "run {run} reordered findings");
    }
}

// ---- random delegation DAGs (deterministic splitmix64 harness) ----

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn key(i: usize) -> String {
    format!("Knode{i}")
}

fn assertion(authorizer: &str, licensee: &str) -> String {
    format!(
        "Authorizer: {authorizer}\nLicensees: \"{licensee}\"\nConditions: app_domain == \"WebCom\";\n",
    )
}

/// A random delegation DAG: POLICY licenses node 0; every later node
/// gets one edge from a uniformly-chosen earlier node (its "parent")
/// plus a few extra forward edges. Returns (assertion text, parent of
/// each node).
fn random_dag(rng: &mut Rng, nodes: usize) -> (String, Vec<usize>) {
    let mut text = assertion("POLICY", &key(0));
    let mut parents = vec![0usize];
    for i in 1..nodes {
        let parent = rng.below(i);
        parents.push(parent);
        text.push('\n');
        text.push_str(&assertion(&format!("\"{}\"", key(parent)), &key(i)));
        if rng.below(3) == 0 {
            let extra = rng.below(i);
            text.push('\n');
            text.push_str(&assertion(&format!("\"{}\"", key(extra)), &key(i)));
        }
    }
    (text, parents)
}

fn leaf_is_authorized(text: &str, leaf: usize) -> bool {
    let assertions = parse_assertions(text).expect("generated store parses");
    let mut store = CompiledStore::default();
    for a in &assertions {
        store.add(a);
    }
    let attrs = [("app_domain", APP_DOMAIN)].into_iter().collect();
    let query = Query::new(vec![key(leaf)], attrs);
    query_compiled(&store, &[], &query).is_authorized()
}

#[test]
fn cycle_free_random_chains_are_accepted_by_the_fixpoint() {
    let mut rng = Rng(0x5eed_0001);
    for case in 0..40 {
        let nodes = 2 + rng.below(10);
        let (text, _) = random_dag(&mut rng, nodes);
        let report = analyze_text(&text, &AnalysisOptions::default()).expect("parses");
        assert!(
            !report.codes().contains("HS001"),
            "case {case}: generated DAG is acyclic but analyzer saw a cycle:\n{text}"
        );
        assert!(
            !report.codes().contains("HS002"),
            "case {case}: every authorizer is chained to POLICY:\n{text}"
        );
        // The analyzer's cycle-free, fully-reachable verdict implies the
        // runtime fixpoint grants the leaf.
        assert!(
            leaf_is_authorized(&text, nodes - 1),
            "case {case}: fixpoint rejected a store the analyzer called well-formed:\n{text}"
        );
    }
}

#[test]
fn seeded_back_edges_are_reported_as_cycles() {
    let mut rng = Rng(0x5eed_0002);
    for case in 0..40 {
        let nodes = 3 + rng.below(8);
        let (mut text, parents) = random_dag(&mut rng, nodes);
        // Walk the parent chain of the last node and close a loop back
        // into it: ancestor -> ... -> node -> ancestor.
        let node = nodes - 1;
        let mut ancestor = parents[node];
        for _ in 0..rng.below(3) {
            if ancestor == 0 {
                break;
            }
            ancestor = parents[ancestor];
        }
        text.push('\n');
        text.push_str(&assertion(&format!("\"{}\"", key(node)), &key(ancestor)));
        let report = analyze_text(&text, &AnalysisOptions::default()).expect("parses");
        assert!(
            report.codes().contains("HS001"),
            "case {case}: seeded back-edge {node}->{ancestor} not reported:\n{text}"
        );
    }
}
