//! Integration tests for the networked scheduling fabric: the
//! length-prefixed wire protocol, the TCP master/client pair, and the
//! master's retry/timeout/failover dispatch loop under injected faults.

use hetsec_webcom::stack::TrustLayer;
use hetsec_webcom::{
    decode_frame, encode_frame, serve_tcp, ArithComponentExecutor, AuthzStack, Binding,
    ClientConfig, ClientEngine, ClientTransport, ExecOutcome, FaultyTransport, ScheduleRequest,
    ScheduledAction, TcpClientServer, TcpTransport, TrustManager, WebComMaster, WireError,
    WireRequest, WireResponse,
};
use hetsec_graphs::Value;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use std::sync::Arc;
use std::time::Duration;

fn tm(policy: &str) -> Arc<TrustManager> {
    let t = TrustManager::permissive();
    t.add_policy(policy).unwrap();
    Arc::new(t)
}

fn engine(name: &str, key: &str) -> Arc<ClientEngine> {
    let master_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let user_tm = tm(
        "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(user_tm)));
    Arc::new(ClientEngine::new(ClientConfig {
        name: name.to_string(),
        key_text: key.to_string(),
        master_trust,
        stack: Arc::new(stack),
        executor: Arc::new(ArithComponentExecutor),
    }))
}

fn serve(name: &str, key: &str) -> TcpClientServer {
    serve_tcp(engine(name, key), vec!["Dom".into()], "127.0.0.1:0").unwrap()
}

fn master_trusting(keys: &[&str]) -> WebComMaster {
    let mut policy = String::new();
    for k in keys {
        policy.push_str(&format!(
            "Authorizer: POLICY\nLicensees: \"{k}\"\nConditions: app_domain==\"WebCom\";\n\n"
        ));
    }
    let master = WebComMaster::new("Kmaster", tm(&policy))
        .with_op_timeout(Duration::from_secs(2));
    master.bind(
        "add",
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: "Kworker".to_string(),
        },
    );
    master
}

// ---- The acceptance scenario: a multi-op workload over TCP with an
// injected client death completes 100% via failover. ----

#[test]
fn tcp_burst_survives_client_death_mid_burst() {
    let c1 = serve("c1", "Kc1");
    let c2 = serve("c2", "Kc2");
    let master = master_trusting(&["Kc1", "Kc2"]);
    master.register_tcp(c1.local_addr()).unwrap();
    master.register_tcp(c2.local_addr()).unwrap();
    assert_eq!(master.client_names(), vec!["c1", "c2"]);

    let total = 30usize;
    let mut first = Some(c1);
    let mut completed = 0usize;
    for i in 0..total {
        if i == 10 {
            // Crash the client currently doing all the work.
            first.take().unwrap().kill();
        }
        let out = master.schedule_primitive("add", vec![Value::Int(i as i64), Value::Int(1)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(i as i64 + 1)), "op {i}");
        completed += 1;
    }
    assert_eq!(completed, total, "every operation must complete");
    let stats = master.stats();
    assert_eq!(stats.scheduled, total);
    assert!(stats.failovers > 0, "stats: {stats:?}");
    assert!(stats.rescheduled > 0, "stats: {stats:?}");
    assert_eq!(stats.unschedulable, 0, "stats: {stats:?}");
    assert_eq!(stats.in_flight, 0, "gauge must return to zero");
    // The survivor picked up everything scheduled after the crash.
    assert!(c2.served() >= total - 10, "survivor served {}", c2.served());
    c2.stop();
}

#[test]
fn concurrent_masters_share_one_tcp_client() {
    let server = serve("c1", "Kc1");
    let master = Arc::new({
        let m = master_trusting(&["Kc1"]);
        m.register_tcp(server.local_addr()).unwrap();
        m
    });
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let master = Arc::clone(&master);
            std::thread::spawn(move || {
                for i in 0..10 {
                    let v = (t * 100 + i) as i64;
                    let out =
                        master.schedule_primitive("add", vec![Value::Int(v), Value::Int(1)]);
                    assert_eq!(out, ExecOutcome::Ok(Value::Int(v + 1)));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = master.stats();
    assert_eq!(stats.scheduled, 40);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(server.served(), 40);
    server.stop();
}

#[test]
fn delayed_transport_times_out_and_fails_over() {
    // c1 is reachable but slow (every call delayed past the deadline);
    // c2 is healthy. The master must count the timeout and reschedule.
    let c2 = serve("c2", "Kc2");
    let master = WebComMaster::new("Kmaster", tm(
        "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n\n\
         Authorizer: POLICY\nLicensees: \"Kc2\"\nConditions: app_domain==\"WebCom\";\n",
    ))
    .with_op_timeout(Duration::from_millis(50));
    // The injected delay exceeds the deadline, so the wrapped transport
    // is never consulted — any peer address will do.
    let slow = FaultyTransport::new(TcpTransport::new(c2.local_addr()));
    slow.set_delay(Duration::from_millis(80));
    master.register_transport("slow", "Kc1", Arc::new(slow), vec!["Dom".into()]);
    master.register_tcp(c2.local_addr()).unwrap();
    master.bind(
        "add",
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: "Kworker".to_string(),
        },
    );
    let out = master.schedule_primitive("add", vec![Value::Int(2), Value::Int(3)]);
    assert_eq!(out, ExecOutcome::Ok(Value::Int(5)));
    let stats = master.stats();
    assert!(stats.timeouts >= 1, "stats: {stats:?}");
    assert_eq!(stats.failovers, 1, "stats: {stats:?}");
    assert_eq!(stats.rescheduled, 1, "stats: {stats:?}");
    c2.stop();
}

#[test]
fn master_rejects_wrong_client_identity_politely() {
    // A master whose policy does not license the serving client's key
    // still completes the handshake, then never selects the client.
    let c1 = serve("c1", "Kc1");
    let master = master_trusting(&["Ksomeoneelse"]);
    master.register_tcp(c1.local_addr()).unwrap();
    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
    assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("no authorised client")));
    c1.stop();
}

#[test]
fn register_tcp_against_dead_port_errors() {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);
    let master = master_trusting(&["Kc1"]);
    let err = master.register_tcp(addr).unwrap_err();
    assert!(err.retryable, "transport-level failure: {err:?}");
}

// ---- Wire-protocol robustness: truncation, oversize, garbage. ----

#[test]
fn wire_roundtrip_of_every_message_shape() {
    let request = WireRequest::Schedule(Box::new(ScheduleRequest {
        op_id: 7,
        action: ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Corba, "Dom", "Stats", "read"),
            "Dom",
            "Worker",
        ),
        user: "worker".into(),
        principal: "Kworker".to_string(),
        master_key: "Kmaster".to_string(),
        credentials: vec![],
        args: vec![Value::Int(-3), Value::Str("x\"y\\z".into()), Value::Bool(true)],
    }));
    let frame = encode_frame(&request).unwrap();
    assert_eq!(decode_frame::<WireRequest>(&frame).unwrap(), request);

    let identify = encode_frame(&WireRequest::Identify).unwrap();
    assert_eq!(
        decode_frame::<WireRequest>(&identify).unwrap(),
        WireRequest::Identify
    );
}

#[test]
fn truncated_schedule_frames_error_at_every_cut() {
    let frame = encode_frame(&WireRequest::Schedule(Box::new(ScheduleRequest {
        op_id: 1,
        action: ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            "Dom",
            "Worker",
        ),
        user: "worker".into(),
        principal: "Kworker".to_string(),
        master_key: "Kmaster".to_string(),
        credentials: vec![],
        args: vec![Value::Int(1)],
    })))
    .unwrap();
    for cut in 0..frame.len() {
        match decode_frame::<WireRequest>(&frame[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn oversized_and_garbage_frames_error_never_panic() {
    // Oversized length prefix.
    let mut oversized = vec![0x7F, 0xFF, 0xFF, 0xFF];
    oversized.extend_from_slice(b"whatever");
    assert!(matches!(
        decode_frame::<WireResponse>(&oversized),
        Err(WireError::Oversized(_))
    ));
    // Deterministic pseudo-random garbage at many lengths: decoding
    // must return an error (or, absurdly unlikely, a value) — never
    // panic or allocate absurdly.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 16, 64, 256, 1024] {
        for _ in 0..64 {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = decode_frame::<WireRequest>(&bytes);
            let _ = decode_frame::<WireResponse>(&bytes);
        }
    }
    // Valid JSON of the wrong shape is Malformed, not a panic.
    let wrong_shape = encode_frame(&vec![1u64, 2, 3]).unwrap();
    assert!(matches!(
        decode_frame::<WireRequest>(&wrong_shape),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn tcp_transport_reports_protocol_violation_for_alien_replies() {
    // A fake "client" that answers every frame with an Identity frame:
    // schedule calls must surface a protocol error, not hang or panic.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((mut s, _)) = listener.accept() {
            while hetsec_webcom::read_frame::<WireRequest, _>(&mut s).is_ok() {
                let id = hetsec_webcom::ClientIdentity {
                    name: "alien".to_string(),
                    key_text: "Kalien".to_string(),
                    domains: vec![],
                };
                if hetsec_webcom::write_frame(&mut s, &WireResponse::Identity(id)).is_err() {
                    break;
                }
            }
        }
    });
    let transport = TcpTransport::new(addr);
    let request = ScheduleRequest {
        op_id: 3,
        action: ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            "Dom",
            "Worker",
        ),
        user: "worker".into(),
        principal: "Kworker".to_string(),
        master_key: "Kmaster".to_string(),
        credentials: vec![],
        args: vec![],
    };
    let err = transport
        .call(&request, Duration::from_secs(2))
        .unwrap_err();
    assert!(
        matches!(err, hetsec_webcom::TransportError::Protocol(_)),
        "{err:?}"
    );
}
