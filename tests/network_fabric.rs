//! Integration tests for the networked scheduling fabric: the
//! length-prefixed wire protocol, the TCP master/client pair, and the
//! master's retry/timeout/failover dispatch loop under injected faults.

use hetsec_webcom::stack::TrustLayer;
use hetsec_webcom::{
    decode_frame, encode_frame, serve_tcp, spawn_client, ArithComponentExecutor, AuthzStack,
    Binding, BreakerState, ChannelTransport, ClientConfig, ClientEngine, ClientTransport,
    ComponentExecutor, ExecError, ExecOutcome, FaultyTransport, HealthConfig, RetryPolicy,
    ScheduleRequest, ScheduledAction, TcpClientServer, TcpTransport, TrustManager, WebComMaster,
    WireError, WireRequest, WireResponse,
};
use hetsec_graphs::Value;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_rbac::User;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn tm(policy: &str) -> Arc<TrustManager> {
    let t = TrustManager::permissive();
    t.add_policy(policy).unwrap();
    Arc::new(t)
}

fn config_with(name: &str, key: &str, executor: Arc<dyn ComponentExecutor>) -> ClientConfig {
    let master_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let user_tm = tm(
        "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(user_tm)));
    ClientConfig {
        name: name.to_string(),
        key_text: key.to_string(),
        master_trust,
        stack: Arc::new(stack),
        executor,
    }
}

fn engine(name: &str, key: &str) -> Arc<ClientEngine> {
    Arc::new(ClientEngine::new(config_with(
        name,
        key,
        Arc::new(ArithComponentExecutor),
    )))
}

fn serve(name: &str, key: &str) -> TcpClientServer {
    serve_tcp(engine(name, key), vec!["Dom".into()], "127.0.0.1:0").unwrap()
}

fn master_trusting(keys: &[&str]) -> WebComMaster {
    let mut policy = String::new();
    for k in keys {
        policy.push_str(&format!(
            "Authorizer: POLICY\nLicensees: \"{k}\"\nConditions: app_domain==\"WebCom\";\n\n"
        ));
    }
    let master = WebComMaster::new("Kmaster", tm(&policy))
        .with_op_timeout(Duration::from_secs(2));
    master.bind(
        "add",
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: "Kworker".to_string(),
        },
    );
    master
}

// ---- The acceptance scenario: a multi-op workload over TCP with an
// injected client death completes 100% via failover. ----

#[test]
fn tcp_burst_survives_client_death_mid_burst() {
    let c1 = serve("c1", "Kc1");
    let c2 = serve("c2", "Kc2");
    let master = master_trusting(&["Kc1", "Kc2"]);
    master.register_tcp(c1.local_addr()).unwrap();
    master.register_tcp(c2.local_addr()).unwrap();
    assert_eq!(master.client_names(), vec!["c1", "c2"]);

    let total = 30usize;
    let mut first = Some(c1);
    let mut completed = 0usize;
    for i in 0..total {
        if i == 10 {
            // Crash the client currently doing all the work.
            first.take().unwrap().kill();
        }
        let out = master.schedule_primitive("add", vec![Value::Int(i as i64), Value::Int(1)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(i as i64 + 1)), "op {i}");
        completed += 1;
    }
    assert_eq!(completed, total, "every operation must complete");
    let stats = master.stats();
    assert_eq!(stats.scheduled, total);
    // Health-ordered selection may route around the dead client without
    // ever touching it (no forced failover), but nothing may be lost:
    assert_eq!(stats.unschedulable, 0, "stats: {stats:?}");
    assert_eq!(stats.exhausted, 0, "stats: {stats:?}");
    assert_eq!(stats.in_flight, 0, "gauge must return to zero");
    // Everything the dead client did not serve, the survivor did.
    assert!(c2.served() >= total - 10, "survivor served {}", c2.served());
    c2.stop();
}

#[test]
fn concurrent_masters_share_one_tcp_client() {
    let server = serve("c1", "Kc1");
    let master = Arc::new({
        let m = master_trusting(&["Kc1"]);
        m.register_tcp(server.local_addr()).unwrap();
        m
    });
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let master = Arc::clone(&master);
            std::thread::spawn(move || {
                for i in 0..10 {
                    let v = (t * 100 + i) as i64;
                    let out =
                        master.schedule_primitive("add", vec![Value::Int(v), Value::Int(1)]);
                    assert_eq!(out, ExecOutcome::Ok(Value::Int(v + 1)));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let stats = master.stats();
    assert_eq!(stats.scheduled, 40);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(server.served(), 40);
    server.stop();
}

#[test]
fn delayed_transport_times_out_and_fails_over() {
    // c1 is reachable but slow (every call delayed past the deadline);
    // c2 is healthy. The master must count the timeout and reschedule.
    let c2 = serve("c2", "Kc2");
    let master = WebComMaster::new("Kmaster", tm(
        "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n\n\
         Authorizer: POLICY\nLicensees: \"Kc2\"\nConditions: app_domain==\"WebCom\";\n",
    ))
    .with_op_timeout(Duration::from_millis(50))
    // One attempt per client pins the counters: exactly one timeout on
    // the slow client, then one failover.
    .with_retry_policy(RetryPolicy::none());
    // The injected delay exceeds the deadline, so the wrapped transport
    // is never consulted — any peer address will do.
    let slow = FaultyTransport::new(TcpTransport::new(c2.local_addr()));
    slow.set_delay(Duration::from_millis(80));
    master.register_transport("slow", "Kc1", Arc::new(slow), vec!["Dom".into()]);
    master.register_tcp(c2.local_addr()).unwrap();
    master.bind(
        "add",
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            domain: "Dom".into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: "Kworker".to_string(),
        },
    );
    let out = master.schedule_primitive("add", vec![Value::Int(2), Value::Int(3)]);
    assert_eq!(out, ExecOutcome::Ok(Value::Int(5)));
    let stats = master.stats();
    assert_eq!(stats.timeouts, 1, "stats: {stats:?}");
    assert_eq!(stats.failovers, 1, "stats: {stats:?}");
    assert_eq!(stats.rescheduled, 1, "stats: {stats:?}");
    c2.stop();
}

// ---- Churn: a flapping link plus a killed client must cost neither
// completeness, nor duplicate executions, nor one wasted call per op on
// the corpse. ----

/// Wraps the arithmetic executor and counts executions per argument
/// vector — fleet-wide duplicate detection for the churn scenario.
#[derive(Default)]
struct CountingExecutor {
    counts: Mutex<HashMap<String, usize>>,
}

impl ComponentExecutor for CountingExecutor {
    fn invoke(
        &self,
        user: &User,
        component: &ComponentRef,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        *self
            .counts
            .lock()
            .unwrap()
            .entry(format!("{args:?}"))
            .or_insert(0) += 1;
        ArithComponentExecutor.invoke(user, component, args)
    }
}

#[test]
fn churn_burst_completes_without_duplicates_and_ejects_the_dead_client() {
    let exec = Arc::new(CountingExecutor::default());
    let master = master_trusting(&["Kc0", "Kc1", "Kc2"])
        .with_op_timeout(Duration::from_millis(500))
        .with_health_config(HealthConfig {
            failure_threshold: 3,
            // Long cooldown: once open, a breaker stays open for the
            // whole test — no half-open probes muddying call counts.
            open_cooldown: Duration::from_secs(60),
            ..HealthConfig::default()
        });
    let mut handles = Vec::new();
    let mut links = Vec::new();
    for (i, key) in ["Kc0", "Kc1", "Kc2"].iter().enumerate() {
        let name = format!("c{i}");
        let handle = spawn_client(config_with(&name, key, exec.clone()));
        let link = Arc::new(FaultyTransport::new(ChannelTransport::new(handle.sender())));
        master.register_transport(
            &name,
            *key,
            Arc::clone(&link) as Arc<dyn ClientTransport>,
            vec!["Dom".into()],
        );
        handles.push(handle);
        links.push(link);
    }

    let total = 200usize;
    let mut calls_at_kill = 0usize;
    for i in 0..total {
        if i % 9 == 4 {
            // c0 flaps: its next call fails with a connection reset.
            links[0].drop_next(1);
        }
        if i == 50 {
            links[1].kill();
            calls_at_kill = links[1].calls();
        }
        let out = master.schedule_primitive("add", vec![Value::Int(i as i64), Value::Int(1000)]);
        assert_eq!(out, ExecOutcome::Ok(Value::Int(i as i64 + 1000)), "op {i}");
    }

    let stats = master.stats();
    assert_eq!(stats.scheduled, total, "stats: {stats:?}");
    assert_eq!(stats.exhausted, 0, "stats: {stats:?}");
    assert_eq!(stats.unschedulable, 0, "stats: {stats:?}");
    assert_eq!(stats.in_flight, 0, "gauge must return to zero");
    // Health-aware selection plus the breaker eject the corpse after at
    // most `failure_threshold` wasted calls — not one per remaining op.
    let wasted = links[1].calls() - calls_at_kill;
    assert!(wasted <= 3, "dead client saw {wasted} calls after the kill");
    // If the master did burn all three calls, the breaker must be open.
    let health = master.client_health();
    let dead = health.iter().find(|h| h.client == "c1").unwrap();
    if wasted >= 3 {
        assert_eq!(dead.state, BreakerState::Open, "{dead:?}");
    }
    // Every op executed exactly once across the whole fleet: drops and
    // crashes fail over *before* execution, so churn never duplicates.
    let counts = exec.counts.lock().unwrap();
    assert_eq!(counts.len(), total, "every op executed somewhere");
    let dupes: Vec<_> = counts.iter().filter(|(_, &n)| n > 1).collect();
    assert!(dupes.is_empty(), "duplicate executions: {dupes:?}");
    drop(counts);
    for h in handles {
        h.shutdown();
    }
}

// ---- The fixed fault-handling path: a timed-out op that *did* execute
// must be replayed from the client's memo on retry, never re-executed. ----

/// An executor whose first invocation blocks until released — the
/// master's first call times out while the op still completes on the
/// client, so the retry must be answered from the executed-op memo.
struct GatedExecutor {
    gate: Mutex<Option<std::sync::mpsc::Receiver<()>>>,
    invocations: AtomicUsize,
}

impl ComponentExecutor for GatedExecutor {
    fn invoke(
        &self,
        user: &User,
        component: &ComponentRef,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        self.invocations.fetch_add(1, Ordering::SeqCst);
        if let Some(gate) = self.gate.lock().unwrap().take() {
            let _ = gate.recv_timeout(Duration::from_secs(5));
        }
        ArithComponentExecutor.invoke(user, component, args)
    }
}

#[test]
fn timed_out_op_is_replayed_from_the_memo_not_executed_twice() {
    let (release, gate) = std::sync::mpsc::channel();
    let exec = Arc::new(GatedExecutor {
        gate: Mutex::new(Some(gate)),
        invocations: AtomicUsize::new(0),
    });
    let handle = spawn_client(config_with("c1", "Kc1", exec.clone()));
    let master = master_trusting(&["Kc1"])
        .with_op_timeout(Duration::from_millis(80))
        .with_schedule_deadline(Duration::from_secs(5))
        .with_retry_policy(RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(20),
        });
    master.register_client(&handle, vec!["Dom".into()]);
    // Release the gate after the first attempt has timed out: the op
    // then completes on the client and lands in its memo.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let _ = release.send(());
    });
    let out = master.schedule_primitive("add", vec![Value::Int(40), Value::Int(2)]);
    releaser.join().unwrap();
    assert_eq!(out, ExecOutcome::Ok(Value::Int(42)));
    let stats = master.stats();
    assert!(stats.timeouts >= 1, "stats: {stats:?}");
    assert!(stats.replayed >= 1, "stats: {stats:?}");
    // The component itself ran exactly once — every re-ask after the
    // timeout was answered from the client's executed-op memo.
    assert_eq!(exec.invocations.load(Ordering::SeqCst), 1);
    let client_stats = handle.shutdown();
    assert!(client_stats.replayed >= 1, "{client_stats:?}");
}

#[test]
fn master_rejects_wrong_client_identity_politely() {
    // A master whose policy does not license the serving client's key
    // still completes the handshake, then never selects the client.
    let c1 = serve("c1", "Kc1");
    let master = master_trusting(&["Ksomeoneelse"]);
    master.register_tcp(c1.local_addr()).unwrap();
    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
    assert!(matches!(out, ExecOutcome::Denied(ref m) if m.contains("no authorised client")));
    c1.stop();
}

#[test]
fn register_tcp_against_dead_port_errors() {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap();
    drop(probe);
    let master = master_trusting(&["Kc1"]);
    let err = master.register_tcp(addr).unwrap_err();
    assert!(err.retryable, "transport-level failure: {err:?}");
}

// ---- Wire-protocol robustness: truncation, oversize, garbage. ----

#[test]
fn wire_roundtrip_of_every_message_shape() {
    let request = WireRequest::Schedule(Box::new(ScheduleRequest {
        op_id: 7,
        action: ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Corba, "Dom", "Stats", "read"),
            "Dom",
            "Worker",
        ),
        user: "worker".into(),
        principal: "Kworker".to_string(),
        master_key: "Kmaster".to_string(),
        credentials: vec![],
        stamps: vec![],
        args: vec![Value::Int(-3), Value::Str("x\"y\\z".into()), Value::Bool(true)],
    }));
    let frame = encode_frame(&request).unwrap();
    assert_eq!(decode_frame::<WireRequest>(&frame).unwrap(), request);

    let identify = encode_frame(&WireRequest::Identify).unwrap();
    assert_eq!(
        decode_frame::<WireRequest>(&identify).unwrap(),
        WireRequest::Identify
    );
}

#[test]
fn truncated_schedule_frames_error_at_every_cut() {
    let frame = encode_frame(&WireRequest::Schedule(Box::new(ScheduleRequest {
        op_id: 1,
        action: ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            "Dom",
            "Worker",
        ),
        user: "worker".into(),
        principal: "Kworker".to_string(),
        master_key: "Kmaster".to_string(),
        credentials: vec![],
        stamps: vec![],
        args: vec![Value::Int(1)],
    })))
    .unwrap();
    for cut in 0..frame.len() {
        match decode_frame::<WireRequest>(&frame[..cut]) {
            Err(WireError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn oversized_and_garbage_frames_error_never_panic() {
    // Oversized length prefix.
    let mut oversized = vec![0x7F, 0xFF, 0xFF, 0xFF];
    oversized.extend_from_slice(b"whatever");
    assert!(matches!(
        decode_frame::<WireResponse>(&oversized),
        Err(WireError::Oversized(_))
    ));
    // Deterministic pseudo-random garbage at many lengths: decoding
    // must return an error (or, absurdly unlikely, a value) — never
    // panic or allocate absurdly.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 16, 64, 256, 1024] {
        for _ in 0..64 {
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = decode_frame::<WireRequest>(&bytes);
            let _ = decode_frame::<WireResponse>(&bytes);
        }
    }
    // Valid JSON of the wrong shape is Malformed, not a panic.
    let wrong_shape = encode_frame(&vec![1u64, 2, 3]).unwrap();
    assert!(matches!(
        decode_frame::<WireRequest>(&wrong_shape),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn tcp_transport_reports_protocol_violation_for_alien_replies() {
    // A fake "client" that answers every frame with an Identity frame:
    // schedule calls must surface a protocol error, not hang or panic.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((mut s, _)) = listener.accept() {
            while hetsec_webcom::read_frame::<WireRequest, _>(&mut s).is_ok() {
                let id = hetsec_webcom::ClientIdentity {
                    name: "alien".to_string(),
                    key_text: "Kalien".to_string(),
                    domains: vec![],
                };
                if hetsec_webcom::write_frame(&mut s, &WireResponse::Identity(id)).is_err() {
                    break;
                }
            }
        }
    });
    let transport = TcpTransport::new(addr);
    let request = ScheduleRequest {
        op_id: 3,
        action: ScheduledAction::new(
            ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", "add"),
            "Dom",
            "Worker",
        ),
        user: "worker".into(),
        principal: "Kworker".to_string(),
        master_key: "Kmaster".to_string(),
        credentials: vec![],
        stamps: vec![],
        args: vec![],
    };
    let err = transport
        .call(&request, Duration::from_secs(2))
        .unwrap_err();
    assert!(
        matches!(err, hetsec_webcom::TransportError::Protocol(_)),
        "{err:?}"
    );
}
