//! Integration tests for the authorization fast path: request-scoped
//! credentials, the epoch-invalidated decision cache, and their
//! behaviour under concurrent mutation.

use hetsec_keynote::parser::parse_assertion;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_webcom::stack::{AuthzContext, AuthzStack, TrustLayer};
use hetsec_webcom::{AuthzRequest, ScheduledAction, TrustManager};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn trust_manager(policy: &str) -> Arc<TrustManager> {
    let tm = TrustManager::permissive();
    tm.add_policy(policy).unwrap();
    Arc::new(tm)
}

fn action(operation: &str) -> ScheduledAction {
    ScheduledAction::new(
        ComponentRef::new(MiddlewareKind::Ejb, "Dom", "Calc", operation),
        "Dom",
        "Worker",
    )
}

fn ctx(principal: &str, operation: &str) -> AuthzContext {
    AuthzContext::new("worker", principal, action(operation))
}

/// The headline regression: a credential presented with request A must
/// not authorize request B, and deciding must not grow the credential
/// store.
#[test]
fn presented_credential_does_not_leak_into_later_requests() {
    let tm = trust_manager(
        "Authorizer: POLICY\nLicensees: \"Kboss\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(Arc::clone(&tm))));

    let delegation =
        parse_assertion("Authorizer: \"Kboss\"\nLicensees: \"Ktemp\"\n").unwrap();

    let count_before = tm.credential_count();
    let epoch_before = tm.epoch();

    // Request A presents the delegation and is granted.
    let mut request_a = ctx("Ktemp", "add");
    request_a.credentials.push(delegation);
    assert!(stack.decide(&request_a).permitted);

    // Deciding mutated nothing: no stored credentials, no epoch bump.
    assert_eq!(tm.credential_count(), count_before);
    assert_eq!(tm.epoch(), epoch_before);

    // Request B, same principal, no credential: denied.
    assert!(!stack.decide(&ctx("Ktemp", "add")).permitted);

    // And presenting the credential again still works.
    assert!(stack.decide(&request_a).permitted);
}

/// An epoch bump (revocation) must be reflected in the very next
/// decision, through both the trust manager's cache and a stack cache.
#[test]
fn revocation_reflected_in_next_decision() {
    let tm = trust_manager(
        "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let mut stack = AuthzStack::new().with_cache(256);
    stack.push(Arc::new(TrustLayer::new(Arc::clone(&tm))));

    let c = ctx("Kworker", "add");
    assert!(stack.decide(&c).permitted);
    assert!(stack.decide(&c).permitted); // now cached

    tm.revoke_key("Kworker");
    assert!(!stack.decide(&c).permitted, "stale grant served after revocation");

    tm.reinstate_key("Kworker");
    assert!(stack.decide(&c).permitted, "stale denial served after reinstatement");
}

/// Concurrency: deciders hammer a cached stack while a mutator flips a
/// key between revoked and reinstated and injects credentials. The
/// cache must never serve a decision from a stale epoch: whenever the
/// mutator holds the key revoked (stable state), deciders must observe
/// a denial, and vice versa.
#[test]
fn cache_never_serves_stale_epoch_under_concurrency() {
    let tm = trust_manager(
        "Authorizer: POLICY\nLicensees: \"Kworker\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let mut stack = AuthzStack::new().with_cache(256);
    stack.push(Arc::new(TrustLayer::new(Arc::clone(&tm))));
    let stack = Arc::new(stack);

    let stop = Arc::new(AtomicBool::new(false));

    // Deciders: issue a spread of queries nonstop. Their answers during
    // transitions are unordered, but they keep the cache hot so the
    // checker below always races against populated entries.
    let deciders: Vec<_> = (0..4)
        .map(|i| {
            let stack = Arc::clone(&stack);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let ops = ["add", "mul", "sub", "div"];
                while !stop.load(Ordering::Relaxed) {
                    let _ = stack.decide(&ctx("Kworker", ops[i % ops.len()]));
                    let _ = stack.decide(&ctx("Kworker", "add"));
                }
            })
        })
        .collect();

    // Mutator + checker: after every mutation the very next decision
    // must reflect it, no matter what the deciders cached meanwhile.
    let mut churn_credential = 0u64;
    for round in 0..200 {
        if round % 2 == 0 {
            tm.revoke_key("Kworker");
            assert!(
                !stack.decide(&ctx("Kworker", "add")).permitted,
                "round {round}: cached grant survived revocation"
            );
        } else {
            tm.reinstate_key("Kworker");
            assert!(
                stack.decide(&ctx("Kworker", "add")).permitted,
                "round {round}: cached denial survived reinstatement"
            );
        }
        // Unrelated credential churn also bumps the epoch; decisions
        // must stay consistent with the current revocation state.
        if round % 5 == 0 {
            churn_credential += 1;
            let cred = parse_assertion(&format!(
                "Authorizer: \"Knoise\"\nLicensees: \"Knoise{churn_credential}\"\n"
            ))
            .unwrap();
            tm.add_credential(cred).unwrap();
            let expect = round % 2 != 0;
            assert_eq!(
                stack.decide(&ctx("Kworker", "add")).permitted,
                expect,
                "round {round}: decision changed by unrelated credential"
            );
        }
    }

    stop.store(true, Ordering::Relaxed);
    for d in deciders {
        d.join().unwrap();
    }

    let stats = stack.cache_stats().unwrap();
    assert!(stats.hits > 0, "cache was never exercised: {stats:?}");
    assert!(
        stats.invalidations > 0,
        "epoch invalidation was never exercised: {stats:?}"
    );
}

/// The worklist fixpoint must agree with the paper's semantics when
/// queries mix stored and request-scoped assertions at scale.
#[test]
fn large_store_with_request_scoped_chain() {
    let tm = TrustManager::permissive();
    tm.add_policy("Authorizer: POLICY\nLicensees: \"Kroot\"\n").unwrap();
    // A long stored delegation chain Kroot -> K0 -> ... -> K63.
    tm.add_credentials_text(
        &(0..64)
            .map(|i| {
                let from = if i == 0 { "Kroot".to_string() } else { format!("K{}", i - 1) };
                format!("Authorizer: \"{from}\"\nLicensees: \"K{i}\"\n")
            })
            .collect::<Vec<_>>()
            .join("\n"),
    )
    .unwrap();
    let attrs = hetsec_keynote::ActionAttributes::new();
    assert!(tm.decide(&AuthzRequest::principal("K63").attributes(attrs.clone())));
    // A request-scoped extension of the chain works for one request...
    let extra = parse_assertion("Authorizer: \"K63\"\nLicensees: \"Kguest\"\n").unwrap();
    assert!(tm.decide(
        &AuthzRequest::principal("Kguest")
            .attributes(attrs.clone())
            .credentials(std::slice::from_ref(&extra))
    ));
    // ...and only that request.
    assert!(!tm.decide(&AuthzRequest::principal("Kguest").attributes(attrs)));
}
