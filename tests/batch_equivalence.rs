//! Property suite for the batch-first decision path: `decide_batch`
//! must be observationally identical to calling `decide` once per
//! request, for any batch order, with request-presented credentials in
//! the mix, and across epoch bumps (revocation / reinstatement) in the
//! middle of the request stream.
//!
//! Inputs come from the same seeded splitmix64 stream as
//! `tests/properties.rs`, so every failure reproduces from the case
//! index in the assertion message. The oracle is a second trust manager
//! built from the same policy text whose cache never sees the batches —
//! each of its verdicts is an independent single-shot `decide`.

use hetsec_keynote::ast::Assertion;
use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::ActionAttributes;
use hetsec_webcom::{AuthzRequest, TrustManager};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

const PRINCIPALS: [&str; 6] = ["Ka", "Kb", "Kc", "Kd", "Ke", "Kf"];
const OPS: [&str; 4] = ["read", "write", "grant", "delete"];

/// A random delegation store over a small principal pool, mirroring the
/// generator in `tests/hotpath_equivalence.rs` so chains connect.
fn random_store_text(rng: &mut Rng) -> String {
    let mut text = String::new();
    let n_assertions = rng.below(6) + 2;
    for i in 0..n_assertions {
        let authorizer = if i == 0 || rng.below(3) == 0 {
            "POLICY".to_string()
        } else {
            format!("\"{}\"", PRINCIPALS[rng.below(PRINCIPALS.len())])
        };
        let licensees = match rng.below(3) {
            0 => format!("\"{}\"", PRINCIPALS[rng.below(PRINCIPALS.len())]),
            1 => format!(
                "\"{}\" || \"{}\"",
                PRINCIPALS[rng.below(PRINCIPALS.len())],
                PRINCIPALS[rng.below(PRINCIPALS.len())]
            ),
            _ => format!(
                "\"{}\" && \"{}\"",
                PRINCIPALS[rng.below(PRINCIPALS.len())],
                PRINCIPALS[rng.below(PRINCIPALS.len())]
            ),
        };
        let conditions = match rng.below(4) {
            0 => String::new(),
            1 => format!("Conditions: oper == \"{}\";\n", OPS[rng.below(OPS.len())]),
            2 => format!(
                "Conditions: oper == \"{}\" || level > {};\n",
                OPS[rng.below(OPS.len())],
                rng.below(9)
            ),
            _ => format!(
                "Conditions: oper == \"{}\" -> \"_MAX_TRUST\"; level > {} -> \"_MIN_TRUST\";\n",
                OPS[rng.below(OPS.len())],
                rng.below(9)
            ),
        };
        text.push_str(&format!(
            "Authorizer: {authorizer}\nLicensees: {licensees}\n{conditions}\n"
        ));
    }
    text
}

/// One request, described before the borrowed `AuthzRequest` is built
/// so the descriptor list can be shuffled freely.
#[derive(Clone, Copy)]
struct Desc {
    who: &'static str,
    attrs: usize,
    with_extra: bool,
}

#[test]
fn shuffled_batches_match_per_request_decides() {
    let mut rng = Rng::new(0x6261_7463_6865_7101);
    let mut checked = 0usize;
    let mut granted = 0usize;
    for case in 0..40 {
        let text = random_store_text(&mut rng);
        let subject = TrustManager::permissive();
        if subject.add_policy(&text).is_err() {
            continue;
        }
        let oracle = TrustManager::permissive();
        oracle.add_policy(&text).unwrap();

        // A request-scoped delegation from a store principal to Kx;
        // requests sometimes come from Kx so the credential matters.
        let extra: Vec<Assertion> = parse_assertions(&format!(
            "Authorizer: \"{}\"\nLicensees: \"Kx\"\n",
            PRINCIPALS[rng.below(3)]
        ))
        .unwrap();

        // Three rounds over the same managers, with an epoch bump
        // (revocation or reinstatement, applied to subject and oracle
        // alike) in the middle of the request stream.
        for round in 0..3 {
            if round > 0 {
                let key = PRINCIPALS[rng.below(PRINCIPALS.len())];
                if rng.below(2) == 0 {
                    subject.revoke_key(key);
                    oracle.revoke_key(key);
                } else {
                    subject.reinstate_key(key);
                    oracle.reinstate_key(key);
                }
            }
            let n = rng.below(10) + 3;
            let attr_sets: Vec<ActionAttributes> = (0..n)
                .map(|_| {
                    [
                        ("oper", OPS[rng.below(OPS.len())].to_string()),
                        ("level", rng.below(12).to_string()),
                    ]
                    .into_iter()
                    .collect()
                })
                .collect();
            let mut descs: Vec<Desc> = (0..n)
                .map(|i| Desc {
                    who: if rng.below(4) == 0 {
                        "Kx"
                    } else {
                        PRINCIPALS[rng.below(PRINCIPALS.len())]
                    },
                    attrs: i,
                    with_extra: rng.below(3) == 0,
                })
                .collect();
            // Fisher–Yates shuffle: batch order is adversarial, the
            // per-request verdicts must not depend on it.
            for i in (1..descs.len()).rev() {
                descs.swap(i, rng.below(i + 1));
            }
            let requests: Vec<AuthzRequest<'_>> = descs
                .iter()
                .map(|d| {
                    let mut r =
                        AuthzRequest::principal(d.who).attributes_ref(&attr_sets[d.attrs]);
                    if d.with_extra {
                        r = r.credentials(&extra);
                    }
                    r
                })
                .collect();
            let got = subject.decide_batch(&requests);
            assert_eq!(got.len(), requests.len());
            for (i, r) in requests.iter().enumerate() {
                let want = oracle.decide(r);
                assert_eq!(
                    got[i], want,
                    "case {case} round {round} item {i} ({}): batch verdict \
                     diverged from single-shot over:\n{text}",
                    descs[i].who
                );
                // The subject's own cached single-shot path must agree
                // with what the batch just decided (and inserted).
                assert_eq!(
                    subject.decide(r),
                    want,
                    "case {case} round {round} item {i}: post-batch decide disagreed"
                );
                checked += 1;
                granted += usize::from(want);
            }
        }
    }
    assert!(checked > 300, "generator degenerated: only {checked} cases");
    assert!(granted > 0, "degenerate stream: no request was ever granted");
}

#[test]
fn concurrent_epoch_bumps_do_not_corrupt_batch_results() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // Revoking and reinstating a key no store mentions bumps the epoch
    // without changing any verdict, so every batch decided while the
    // bump thread spins must still produce the oracle answers.
    let tm = Arc::new(TrustManager::permissive());
    tm.add_policy(
        "Authorizer: POLICY\nLicensees: \"Kbob\"\n\
         Conditions: app_domain==\"SalariesDB\" && (oper==\"read\" || oper==\"write\");\n",
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let bumper = {
        let tm = Arc::clone(&tm);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                tm.revoke_key("Kunrelated");
                tm.reinstate_key("Kunrelated");
            }
        })
    };
    let read: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "read")]
        .into_iter()
        .collect();
    let drop_attrs: ActionAttributes = [("app_domain", "SalariesDB"), ("oper", "drop")]
        .into_iter()
        .collect();
    for _ in 0..200 {
        let requests = [
            AuthzRequest::principal("Kbob").attributes_ref(&read),
            AuthzRequest::principal("Kbob").attributes_ref(&drop_attrs),
            AuthzRequest::principal("Kmallory").attributes_ref(&read),
            AuthzRequest::principal("Kbob").attributes_ref(&read),
        ];
        assert_eq!(tm.decide_batch(&requests), vec![true, false, false, true]);
    }
    stop.store(true, Ordering::Relaxed);
    bumper.join().unwrap();
}
