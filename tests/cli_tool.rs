//! End-to-end checks of the `hetsec` CLI library surface against the
//! translation pipeline (the binary itself is a thin wrapper).

use hetsec_cli::{run, CliError};
use hetsec_rbac::fixtures::{salaries_policy, synthetic_policy};
use hetsec_rbac::RbacPolicy;

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn write_policy(policy: &RbacPolicy, name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("hetsec-cli-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, serde_json::to_string(policy).unwrap()).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn full_figure_1_decision_matrix_via_cli() {
    let path = write_policy(&salaries_policy(), "fig1.json");
    for (user, d, r, p, expect) in [
        ("Alice", "Finance", "Clerk", "write", true),
        ("Alice", "Finance", "Clerk", "read", false),
        ("Bob", "Finance", "Manager", "read", true),
        ("Claire", "Sales", "Manager", "read", true),
        ("Dave", "Sales", "Assistant", "read", false),
    ] {
        let out = run(&args(&["check", &path, user, d, r, "SalariesDB", p])).unwrap();
        let expected_prefix = if expect { "_MAX_TRUST" } else { "_MIN_TRUST" };
        assert!(out.starts_with(expected_prefix), "{user} {d}/{r} {p}: {out}");
    }
}

#[test]
fn cli_roundtrip_on_synthetic_policy() {
    let policy = synthetic_policy(3, 3, 2, 2);
    let path = write_policy(&policy, "synth.json");
    let encoded = run(&args(&["encode", &path])).unwrap();
    let kn_path = write_policy(&RbacPolicy::new(), "placeholder.json")
        .replace("placeholder.json", "synth.kn");
    std::fs::write(&kn_path, &encoded).unwrap();
    let decoded_text = run(&args(&["decode", &kn_path])).unwrap();
    let decoded: RbacPolicy =
        serde_json::from_str(decoded_text.split("\n//").next().unwrap()).unwrap();
    assert_eq!(decoded, policy);
}

#[test]
fn cli_migrate_interprets_com_permissions() {
    let mut policy = RbacPolicy::new();
    policy.grant(hetsec_rbac::PermissionGrant::new("CORP", "Op", "App", "Access"));
    policy.assign(hetsec_rbac::RoleAssignment::new("u", "CORP", "Op"));
    let path = write_policy(&policy, "com.json");
    let out = run(&args(&["migrate", &path, "CORP", "h/s/j", "com", "ejb"])).unwrap();
    let migrated: RbacPolicy = serde_json::from_str(out.split("\n//").next().unwrap()).unwrap();
    assert!(migrated
        .grants()
        .any(|g| g.permission.as_str() == "invoke" && g.domain.as_str() == "h/s/j"));
}

#[test]
fn cli_spki_output_parses_as_sexps() {
    let path = write_policy(&salaries_policy(), "fig1-spki.json");
    let out = run(&args(&["spki-encode", &path])).unwrap();
    let mut cert_lines = 0;
    for line in out.lines().filter(|l| l.starts_with("(cert")) {
        hetsec_spki::parse(line).unwrap();
        cert_lines += 1;
    }
    assert_eq!(cert_lines, 5); // one name cert per UserRole row
}

#[test]
fn cli_errors_are_reported_not_panicked() {
    assert!(matches!(run(&args(&["decode", "/no/file"])), Err(CliError::Io(_))));
    let bad = write_policy(&RbacPolicy::new(), "bad.json");
    std::fs::write(&bad, "not json").unwrap();
    assert!(matches!(run(&args(&["encode", &bad])), Err(CliError::Json(_))));
    let badkn = bad.replace("bad.json", "bad.kn");
    std::fs::write(&badkn, "Bogus-Field: x\n").unwrap();
    assert!(matches!(run(&args(&["decode", &badkn])), Err(CliError::KeyNote(_))));
}
