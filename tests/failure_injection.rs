//! Failure injection: malformed inputs, tampered credentials, and
//! misbehaving endpoints must degrade cleanly — errors, never panics,
//! and never silent grants.

use hetsec_keynote::parser::{parse_assertion, parse_assertions};
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_middleware::security::{Decision, MiddlewareError, MiddlewareSecurity};
use hetsec_rbac::{
    Domain, ObjectType, Permission, PermissionGrant, RbacPolicy, Role, RoleAssignment, User,
};
use hetsec_translate::batch::sign_owned;
use hetsec_translate::maintenance::{PolicyBus, PolicyChange};
use hetsec_translate::{encode_policy, KeyStoreDirectory, PrincipalDirectory};
use std::sync::Arc;

#[test]
fn malformed_assertion_corpus_never_panics() {
    let corpus = [
        "",
        "Authorizer",
        "Authorizer:",
        "Authorizer: POLICY\nLicensees: \"unterminated\n",
        "Authorizer: POLICY\nConditions: a == ;\n",
        "Authorizer: POLICY\nConditions: (a == \"1\";\n",
        "Authorizer: POLICY\nLicensees: 0-of(\"Ka\")\n",
        "Authorizer: POLICY\nLicensees: \"Ka\" &&\n",
        "Authorizer: POLICY\nConditions: a ~= ;\n",
        "Signature: first\nAuthorizer: POLICY\nSignature: second\n",
        "Random-Field: x\n",
        "Authorizer: POLICY POLICY\n",
        ": no name\n",
        "Authorizer: POLICY\nConditions: x -> { y == \"1\" -> v;\n",
        "Authorizer: POLICY\nConditions: 1.2.3 == \"x\";\n",
    ];
    for (i, text) in corpus.iter().enumerate() {
        // Every entry must produce a structured error (or, for the
        // empty text, an empty set) without panicking.
        match parse_assertion(text) {
            Ok(_) if text.trim().is_empty() => {}
            Ok(a) => panic!("corpus[{i}] unexpectedly parsed: {a:?}"),
            Err(_) => {}
        }
    }
    // And the multi-assertion splitter tolerates junk too.
    assert!(parse_assertions("garbage\n\nmore garbage\n").is_err());
}

#[test]
fn tampering_anywhere_in_the_signed_pipeline_fails_closed() {
    let dir = KeyStoreDirectory::new();
    let webcom_key = dir.key_of(&User::new("WebCom"));
    let mut assertions = encode_policy(
        &hetsec_rbac::fixtures::salaries_policy(),
        &webcom_key,
        &dir,
    );
    sign_owned(&mut assertions, &dir);
    // Flip the licensee of a signed credential (privilege escalation
    // attempt): the strict session must reject it.
    let mut tampered = assertions
        .iter()
        .find(|a| a.signature.is_some())
        .unwrap()
        .clone();
    tampered.licensees = Some(hetsec_keynote::LicenseeExpr::Principal(
        dir.key_of(&User::new("Mallory")),
    ));
    let mut strict = KeyNoteSession::new();
    assert!(strict.add_credential_parsed(tampered).is_err());
    // Corrupt the signature bytes themselves.
    let mut corrupted = assertions
        .iter()
        .find(|a| a.signature.is_some())
        .unwrap()
        .clone();
    corrupted.signature = corrupted.signature.map(|s| {
        let mut s = s;
        s.push('0');
        s
    });
    assert!(strict.add_credential_parsed(corrupted).is_err());
}

/// A middleware endpoint that accepts registration but rejects every
/// administration call (e.g. a catalogue with a wedged service).
struct WedgedMiddleware;

impl MiddlewareSecurity for WedgedMiddleware {
    fn kind(&self) -> MiddlewareKind {
        MiddlewareKind::Ejb
    }

    fn instance_name(&self) -> String {
        "wedged".to_string()
    }

    fn owned_domains(&self) -> Vec<Domain> {
        vec!["WedgedDom".into()]
    }

    fn export_policy(&self) -> RbacPolicy {
        RbacPolicy::new()
    }

    fn grant(&self, g: &PermissionGrant) -> Result<(), MiddlewareError> {
        Err(MiddlewareError::NotFound(format!("wedged: {g}")))
    }

    fn revoke(&self, g: &PermissionGrant) -> Result<(), MiddlewareError> {
        Err(MiddlewareError::NotFound(format!("wedged: {g}")))
    }

    fn assign(&self, a: &RoleAssignment) -> Result<(), MiddlewareError> {
        Err(MiddlewareError::NotFound(format!("wedged: {a}")))
    }

    fn unassign(&self, a: &RoleAssignment) -> Result<(), MiddlewareError> {
        Err(MiddlewareError::NotFound(format!("wedged: {a}")))
    }

    fn check(
        &self,
        _user: &User,
        _domain: &Domain,
        _role: Option<&Role>,
        _object_type: &ObjectType,
        _permission: &Permission,
    ) -> Decision {
        Decision::denied("wedged")
    }
}

#[test]
fn policy_bus_records_endpoint_failures_without_losing_the_unified_change() {
    let bus = PolicyBus::new();
    bus.register(Arc::new(WedgedMiddleware));
    let change = PolicyChange::Assign(RoleAssignment::new("u", "WedgedDom", "R"));
    let report = bus.apply(&change);
    // The unified policy took the change; the endpoint failure is
    // reported, not swallowed.
    assert!(report.unified_changed);
    assert!(report.propagated_to.is_empty());
    assert_eq!(report.failures.len(), 1);
    assert!(report.failures[0].1.contains("wedged"));
    assert!(bus.unified().user_in_role(&"u".into(), &"WedgedDom".into(), &"R".into()));
    // The audit shows the endpoint is now inconsistent (it has nothing).
    let audit = bus.consistency_report();
    assert_eq!(audit.len(), 1);
    assert!(!audit[0].is_consistent());
    // Repair attempts run but cannot fix a wedged endpoint; they must
    // not panic and must report zero rows changed.
    assert_eq!(bus.repair(), 0);
}

#[test]
fn spki_malformed_inputs_never_panic() {
    for src in [
        "",
        "(",
        ")",
        "(cert",
        "(cert (issuer) (subject Ka))",
        "(cert (issuer Ka) (subject (name)))",
        "(cert (issuer Ka) (subject Kb) (tag))",
        "\"unterminated",
        "(a . b)",
    ] {
        let _ = hetsec_spki::parse(src);
        let _ = hetsec_spki::cert::parse_cert(src);
    }
}

#[test]
fn keynote_regex_pathological_patterns_terminate() {
    // Classic catastrophic-backtracking shapes must terminate (the
    // engine guards zero-width loops) and simply answer false/true.
    let mut s = KeyNoteSession::permissive();
    s.add_policy(
        "Authorizer: POLICY\nLicensees: \"Ka\"\nConditions: x ~= \"^(a*)*b$\";\n",
    )
    .unwrap();
    let attrs = [("x", "aaaaaaaaaaaaaaaaaaaac")].into_iter().collect();
    let r = s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs));
    assert!(!r.is_authorized());
    let attrs = [("x", "aaaaب")].into_iter().collect();
    assert!(!s.evaluate(&ActionQuery::principals(&["Ka"]).attributes(&attrs)).is_authorized());
}
