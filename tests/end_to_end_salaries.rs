//! End-to-end integration of the paper's running example: Figure 1
//! policy -> KeyNote encoding (Figs 5-7) -> middleware commissioning ->
//! stacked mediation, with every layer agreeing.

use hetsec_com::ComMiddleware;
use hetsec_corba::CorbaMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::{CorbaDomain, EjbDomain, MiddlewareKind};
use hetsec_middleware::security::{MiddlewareSecurity, MiddlewareSecurityExt};
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::{DomainRole, RbacPolicy, User};
use hetsec_translate::{
    decode_policy, delegate_role, encode_policy, SymbolicDirectory, APP_DOMAIN,
};
use hetsec_webcom::{
    AuthzContext, AuthzStack, MiddlewareLayer, ScheduledAction, TrustLayer, TrustManager,
};
use std::sync::Arc;

fn attrs(d: &str, r: &str, t: &str, p: &str) -> hetsec_keynote::ActionAttributes {
    [
        ("app_domain", APP_DOMAIN),
        ("Domain", d),
        ("Role", r),
        ("ObjectType", t),
        ("Permission", p),
    ]
    .into_iter()
    .collect()
}

/// The unified Figure 1 policy but with domains renamed onto a real EJB
/// server, so the same table commissions into actual middleware.
fn ejb_shaped_policy(domain: &str) -> RbacPolicy {
    // All rows move into the single middleware domain; roles keep their
    // original department as a prefix so Finance/Manager and
    // Sales/Manager stay distinct after the merge.
    let mut p = RbacPolicy::new();
    for g in salaries_policy().grants() {
        let mut g = g.clone();
        g.role = format!("{}_{}", g.domain, g.role).as_str().into();
        g.domain = domain.into();
        p.grant(g);
    }
    for a in salaries_policy().assignments() {
        let mut a = a.clone();
        a.role = format!("{}_{}", a.domain, a.role).as_str().into();
        a.domain = domain.into();
        p.assign(a);
    }
    p
}

#[test]
fn keynote_view_agrees_with_all_three_middlewares() {
    let dir = SymbolicDirectory::default();
    // Commission Figure 1 into EJB and CORBA instances and a COM-shaped
    // variant into a COM catalogue.
    let ejb_domain = EjbDomain::new("h", "s", "Salaries").to_string();
    let corba_domain = CorbaDomain::new("zeus", "orb").to_string();

    let ejb = EjbMiddleware::new(EjbDomain::new("h", "s", "Salaries"));
    ejb.import_policy(&ejb_shaped_policy(&ejb_domain));
    let corba = CorbaMiddleware::new(CorbaDomain::new("zeus", "orb"));
    corba.import_policy(&ejb_shaped_policy(&corba_domain));

    for (mw, domain) in [
        (&ejb as &dyn MiddlewareSecurity, ejb_domain.as_str()),
        (&corba as &dyn MiddlewareSecurity, corba_domain.as_str()),
    ] {
        // Encode the middleware's exported policy and compare decisions.
        let tm = TrustManager::permissive();
        for a in encode_policy(&mw.export_policy(), "KWebCom", &dir) {
            tm.add_policy_assertion(a).unwrap();
        }
        for (user, perm, expect) in [
            ("Alice", "write", true),
            ("Alice", "read", false),
            ("Bob", "read", true),
            ("Bob", "write", true),
            ("Claire", "read", true),
            ("Claire", "write", false),
            ("Dave", "read", false),
        ] {
            let native = mw.allows(
                &user.into(),
                &domain.into(),
                &"SalariesDB".into(),
                &perm.into(),
            );
            assert_eq!(native, expect, "{} native {user} {perm}", mw.instance_name());
            // The KeyNote view: user's key, any matching role.
            let roles = mw.export_policy().roles_of(&user.into());
            let key = format!("K{}", user.to_lowercase());
            let tm_says = roles.iter().any(|dr| {
                tm.decide(
                    &hetsec_webcom::AuthzRequest::principal(key.as_str())
                        .attributes(attrs(dr.domain.as_str(), dr.role.as_str(), "SalariesDB", perm)),
                )
            });
            assert_eq!(tm_says, expect, "{} keynote {user} {perm}", mw.instance_name());
        }
    }
}

#[test]
fn com_variant_with_coarse_rights() {
    // The COM concretisation uses Launch/Access/RunAs permissions.
    let com = ComMiddleware::new("CORP");
    let mut policy = RbacPolicy::new();
    policy.grant(hetsec_rbac::PermissionGrant::new("CORP", "Manager", "SalariesDB", "Access"));
    policy.grant(hetsec_rbac::PermissionGrant::new("CORP", "Manager", "SalariesDB", "Launch"));
    policy.grant(hetsec_rbac::PermissionGrant::new("CORP", "Clerk", "SalariesDB", "Access"));
    policy.assign(hetsec_rbac::RoleAssignment::new("Bob", "CORP", "Manager"));
    policy.assign(hetsec_rbac::RoleAssignment::new("Alice", "CORP", "Clerk"));
    let report = com.import_policy(&policy);
    assert!(report.skipped.is_empty());
    // Export equals import for COM-representable policies.
    assert_eq!(com.export_policy(), policy);
    // Round trip through KeyNote as well.
    let dir = SymbolicDirectory::default();
    let decoded = decode_policy(&encode_policy(&policy, "KWebCom", &dir), "KWebCom", &dir);
    assert_eq!(decoded.policy, policy);
}

#[test]
fn stacked_mediation_trust_plus_middleware() {
    let dir = SymbolicDirectory::default();
    let ejb_domain = EjbDomain::new("h", "s", "Salaries").to_string();
    let ejb = Arc::new(EjbMiddleware::new(EjbDomain::new("h", "s", "Salaries")));
    ejb.import_policy(&ejb_shaped_policy(&ejb_domain));

    let tm = Arc::new(TrustManager::permissive());
    for a in encode_policy(&ejb.export_policy(), "KWebCom", &dir) {
        tm.add_policy_assertion(a).unwrap();
    }
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(MiddlewareLayer::new(ejb.clone())));
    stack.push(Arc::new(TrustLayer::new(tm.clone())));

    let component = ComponentRef::new(
        MiddlewareKind::Ejb,
        ejb_domain.as_str(),
        "SalariesDB",
        "write",
    );
    let action = ScheduledAction::new(component, ejb_domain.as_str(), "Finance_Clerk");
    // Alice (Finance->renamed Clerk) may write through both layers.
    let ctx = AuthzContext::new("Alice", "Kalice", action.clone());
    let d = stack.decide(&ctx);
    assert!(d.permitted, "{:?}", d.trace);
    // Dave may not: both layers deny.
    let ctx = AuthzContext::new("Dave", "Kdave", action);
    let d = stack.decide(&ctx);
    assert!(!d.permitted);
    assert!(d.trace.iter().filter(|(_, v)| matches!(v, hetsec_webcom::Verdict::Deny(_))).count() >= 2);
}

#[test]
fn delegation_is_keynote_only_but_effective() {
    // Figure 7: Fred's access exists at the trust layer without any
    // middleware row — decentralisation in action.
    let dir = SymbolicDirectory::default();
    let policy = salaries_policy();
    let tm = TrustManager::permissive();
    for a in encode_policy(&policy, "KWebCom", &dir) {
        tm.add_policy_assertion(a).unwrap();
    }
    tm.add_credential(delegate_role(
        &User::new("Claire"),
        &User::new("Fred"),
        &DomainRole::new("Sales", "Manager"),
        &dir,
    ))
    .unwrap();
    assert!(tm.decide(
        &hetsec_webcom::AuthzRequest::principal("Kfred")
            .attributes(attrs("Sales", "Manager", "SalariesDB", "read"))
    ));
    // But the RBAC relations themselves never mention Fred.
    assert!(policy.roles_of(&"Fred".into()).is_empty());
    // And decoding the credential set reports (not applies) it.
    let mut assertions = encode_policy(&policy, "KWebCom", &dir);
    assertions.push(delegate_role(
        &User::new("Claire"),
        &User::new("Fred"),
        &DomainRole::new("Sales", "Manager"),
        &dir,
    ));
    let report = decode_policy(&assertions, "KWebCom", &dir);
    assert!(!report
        .policy
        .user_in_role(&"Fred".into(), &"Sales".into(), &"Manager".into()));
}
