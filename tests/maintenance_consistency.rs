//! Policy Maintenance across three heterogeneous endpoints (paper §4.4):
//! top-down changes through the bus, KeyCom-driven updates, drift
//! detection and repair.

use hetsec_com::ComMiddleware;
use hetsec_corba::CorbaMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::naming::{CorbaDomain, EjbDomain};
use hetsec_middleware::security::MiddlewareSecurityExt;
use hetsec_rbac::{PermissionGrant, RbacPolicy, RoleAssignment};
use hetsec_translate::maintenance::{PolicyBus, PolicyChange};
use hetsec_webcom::{KeyComService, PolicyUpdateRequest, TrustManager};
use std::sync::Arc;

struct Fixture {
    bus: PolicyBus,
    com: Arc<ComMiddleware>,
    ejb: Arc<EjbMiddleware>,
    corba: Arc<CorbaMiddleware>,
    ejb_domain: String,
    corba_domain: String,
}

fn fixture() -> Fixture {
    let ejb_domain = EjbDomain::new("h", "s", "Orders").to_string();
    let corba_domain = CorbaDomain::new("zeus", "orb").to_string();
    let mut unified = RbacPolicy::new();
    unified.grant(PermissionGrant::new("CORP", "Manager", "SalariesDB", "Access"));
    unified.assign(RoleAssignment::new("bob", "CORP", "Manager"));
    unified.grant(PermissionGrant::new(ejb_domain.as_str(), "Clerk", "OrdersBean", "write"));
    unified.assign(RoleAssignment::new("alice", ejb_domain.as_str(), "Clerk"));
    unified.grant(PermissionGrant::new(corba_domain.as_str(), "Analyst", "Stats", "read"));
    unified.assign(RoleAssignment::new("carol", corba_domain.as_str(), "Analyst"));
    let bus = PolicyBus::with_policy(unified);
    let com = Arc::new(ComMiddleware::new("CORP"));
    let ejb = Arc::new(EjbMiddleware::new(EjbDomain::new("h", "s", "Orders")));
    let corba = Arc::new(CorbaMiddleware::new(CorbaDomain::new("zeus", "orb")));
    bus.register(com.clone());
    bus.register(ejb.clone());
    bus.register(corba.clone());
    Fixture {
        bus,
        com,
        ejb,
        corba,
        ejb_domain,
        corba_domain,
    }
}

#[test]
fn three_endpoints_commissioned_consistently() {
    let f = fixture();
    assert_eq!(f.bus.endpoint_count(), 3);
    assert!(f.bus.consistency_report().iter().all(|c| c.is_consistent()));
    assert!(f.com.allows(&"bob".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
    assert!(f.ejb.allows(
        &"alice".into(),
        &f.ejb_domain.as_str().into(),
        &"OrdersBean".into(),
        &"write".into()
    ));
    assert!(f.corba.allows(
        &"carol".into(),
        &f.corba_domain.as_str().into(),
        &"Stats".into(),
        &"read".into()
    ));
}

#[test]
fn changes_propagate_only_to_owners() {
    let f = fixture();
    let report = f.bus.apply(&PolicyChange::Grant(PermissionGrant::new(
        f.corba_domain.as_str(),
        "Analyst",
        "Stats",
        "export",
    )));
    assert!(report.unified_changed);
    assert_eq!(report.propagated_to.len(), 1);
    assert!(report.propagated_to[0].contains("CORBA"));
    assert!(f.corba.allows(
        &"carol".into(),
        &f.corba_domain.as_str().into(),
        &"Stats".into(),
        &"export".into()
    ));
    assert!(f.bus.consistency_report().iter().all(|c| c.is_consistent()));
}

#[test]
fn new_employee_flow_across_all_systems() {
    // The paper's example: a new employee must appear in every relevant
    // middleware policy. Apply three changes through the bus.
    let f = fixture();
    for change in [
        PolicyChange::Assign(RoleAssignment::new("newbie", "CORP", "Manager")),
        PolicyChange::Assign(RoleAssignment::new("newbie", f.ejb_domain.as_str(), "Clerk")),
        PolicyChange::Assign(RoleAssignment::new("newbie", f.corba_domain.as_str(), "Analyst")),
    ] {
        let r = f.bus.apply(&change);
        assert!(r.unified_changed);
        assert_eq!(r.propagated_to.len(), 1);
        assert!(r.failures.is_empty());
    }
    assert!(f.com.allows(&"newbie".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
    assert!(f.ejb.allows(
        &"newbie".into(),
        &f.ejb_domain.as_str().into(),
        &"OrdersBean".into(),
        &"write".into()
    ));
    assert!(f.corba.allows(
        &"newbie".into(),
        &f.corba_domain.as_str().into(),
        &"Stats".into(),
        &"read".into()
    ));
    // Removing them everywhere is equally uniform.
    for change in [
        PolicyChange::Unassign(RoleAssignment::new("newbie", "CORP", "Manager")),
        PolicyChange::Unassign(RoleAssignment::new("newbie", f.ejb_domain.as_str(), "Clerk")),
        PolicyChange::Unassign(RoleAssignment::new("newbie", f.corba_domain.as_str(), "Analyst")),
    ] {
        f.bus.apply(&change);
    }
    assert!(!f.com.allows(&"newbie".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
    assert!(f.bus.consistency_report().iter().all(|c| c.is_consistent()));
}

#[test]
fn drift_in_any_endpoint_is_found_and_repaired() {
    let f = fixture();
    // Drift in all three endpoints simultaneously.
    f.com.catalog().add_role_member("Manager", "ghost1");
    f.ejb.container().map_principal("Clerk", "ghost2");
    f.corba.orb().add_role_member("Analyst", "ghost3");
    let audit = f.bus.consistency_report();
    assert_eq!(audit.iter().filter(|c| !c.is_consistent()).count(), 3);
    let repaired = f.bus.repair();
    assert_eq!(repaired, 3);
    assert!(f.bus.consistency_report().iter().all(|c| c.is_consistent()));
}

#[test]
fn keycom_updates_flow_through_to_the_bus_view() {
    let f = fixture();
    let admin_tm = Arc::new(TrustManager::permissive());
    admin_tm
        .add_policy(
            "Authorizer: POLICY\nLicensees: \"KAdmin\"\n\
             Conditions: app_domain==\"WebCom\" && oper==\"administer\";\n",
        )
        .unwrap();
    let keycom = KeyComService::new(admin_tm, f.com.clone());
    keycom
        .handle(&PolicyUpdateRequest {
            requester: "KAdmin".to_string(),
            credentials: vec![],
            change: PolicyChange::Assign(RoleAssignment::new("kc-user", "CORP", "Manager")),
        })
        .unwrap();
    // KeyCom wrote to the catalogue directly: the bus's audit notices
    // (the unified policy was bypassed) ...
    let audit = f.bus.consistency_report();
    let drifted: Vec<_> = audit.iter().filter(|c| !c.is_consistent()).collect();
    assert_eq!(drifted.len(), 1);
    // ... and the recommended flow is to mirror the change into the bus.
    f.bus
        .apply(&PolicyChange::Assign(RoleAssignment::new("kc-user", "CORP", "Manager")));
    assert!(f.bus.consistency_report().iter().all(|c| c.is_consistent()));
}

#[test]
fn lint_gate_blocks_propagation_to_revoked_keys_end_to_end() {
    use hetsec_analyze::LintAdmissionGate;

    let f = fixture();
    f.bus
        .set_gate(Arc::new(LintAdmissionGate::new().revoke("Kmallory")));

    // A clean change still flows to its owning endpoint.
    let ok = f
        .bus
        .apply(&PolicyChange::Assign(RoleAssignment::new("dave", "CORP", "Manager")));
    assert!(ok.admitted() && ok.unified_changed, "{ok:?}");
    assert!(f.com.allows(&"dave".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));

    // Granting a role to the revoked key's user introduces a new
    // error-severity HS013 in the candidate's credential encoding, so
    // the bus rejects before commit: no endpoint ever sees the row.
    let before = f.bus.unified();
    let rejected = f
        .bus
        .apply(&PolicyChange::Assign(RoleAssignment::new("mallory", "CORP", "Manager")));
    assert!(!rejected.admitted());
    assert!(!rejected.unified_changed);
    assert!(rejected.propagated_to.is_empty());
    assert!(
        rejected.rejected.iter().any(|x| x.code == "HS013" && x.is_error()),
        "{rejected:?}"
    );
    assert_eq!(f.bus.unified(), before);
    assert!(!f.com.allows(&"mallory".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));
    assert!(rejected.is_consistent());

    // With the gate cleared the same change commits again — the gate is
    // policy, not capability.
    f.bus.clear_gate();
    let ungated = f
        .bus
        .apply(&PolicyChange::Assign(RoleAssignment::new("mallory", "CORP", "Manager")));
    assert!(ungated.admitted() && ungated.unified_changed);
}
