//! Property-based tests over the framework's core invariants.

use proptest::prelude::*;

use hetsec_crypto::bigint::U512;
use hetsec_keynote::ast::{CmpOp, Expr, LicenseeExpr, Term};
use hetsec_keynote::parser::{parse_expression, parse_licensees};
use hetsec_keynote::print::{print_expr, print_licensees};
use hetsec_keynote::regex::Regex;
use hetsec_rbac::policy::{PermissionGrant, RbacPolicy, RoleAssignment};
use hetsec_translate::{decode_policy, encode_policy, SymbolicDirectory};

// ---- U512 arithmetic vs u128 reference ----

proptest! {
    #[test]
    fn u512_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = U512::from_u64(a).add(&U512::from_u64(b));
        prop_assert_eq!(sum, U512::from_u128(a as u128 + b as u128));
    }

    #[test]
    fn u512_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = U512::from_u64(a).mul(&U512::from_u64(b));
        prop_assert_eq!(prod, U512::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn u512_divmod_matches_u128(a in any::<u128>(), b in 1u64..) {
        let (q, r) = U512::from_u128(a).divmod(&U512::from_u64(b));
        prop_assert_eq!(q, U512::from_u128(a / b as u128));
        prop_assert_eq!(r, U512::from_u128(a % b as u128));
    }

    #[test]
    fn u512_hex_roundtrip(a in any::<u128>()) {
        let v = U512::from_u128(a);
        prop_assert_eq!(U512::from_hex(&v.to_hex()), Some(v));
    }

    #[test]
    fn u512_shift_roundtrip(a in any::<u128>(), s in 0u32..256) {
        let v = U512::from_u128(a);
        prop_assert_eq!(v.shl_small(s).shr_small(s), v);
    }

    #[test]
    fn u512_modpow_mul_law(a in 1u64.., b in 1u64.., m in 2u64..) {
        // (a*b) mod m == (a mod m * b mod m) mod m via mulmod
        let am = U512::from_u64(a);
        let bm = U512::from_u64(b);
        let mm = U512::from_u64(m);
        let lhs = am.mulmod(&bm, &mm);
        let rhs = U512::from_u128((a as u128 * b as u128) % m as u128);
        prop_assert_eq!(lhs, rhs);
    }
}

// ---- Expression printer/parser round-trips over generated ASTs ----

fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[a-z_][a-z0-9_]{0,6}".prop_map(Term::Attr),
        "[ -~]{0,8}".prop_map(Term::Str),
        (0u32..100_000).prop_map(|n| Term::Num(n as f64)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Term::Concat(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|t| Term::Deref(Box::new(t))),
        ]
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::True),
        Just(Expr::False),
        (arb_term(), arb_term()).prop_map(|(lhs, rhs)| Expr::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs
        }),
        (arb_term(), arb_term()).prop_map(|(lhs, rhs)| Expr::Cmp {
            op: CmpOp::Le,
            lhs,
            rhs
        }),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn arb_licensees() -> impl Strategy<Value = LicenseeExpr> {
    let leaf = "[A-Za-z][A-Za-z0-9]{0,8}".prop_map(LicenseeExpr::Principal);
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| LicenseeExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| LicenseeExpr::Or(Box::new(a), Box::new(b))),
            proptest::collection::vec(inner.clone(), 1..4).prop_flat_map(|items| {
                let n = items.len();
                (1..=n).prop_map(move |k| LicenseeExpr::KOf(k, items.clone()))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = print_expr(&e);
        let back = parse_expression(&printed).expect("printed expression parses");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn licensees_print_parse_roundtrip(l in arb_licensees()) {
        let printed = print_licensees(&l);
        let back = parse_licensees(&printed).expect("printed licensees parse");
        prop_assert_eq!(back, l);
    }
}

// ---- Regex engine vs a naive literal matcher ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn regex_literal_agrees_with_contains(
        needle in "[a-z]{1,5}",
        hay in "[a-z]{0,12}",
    ) {
        let re = Regex::new(&needle).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn regex_anchored_literal_agrees_with_eq(
        needle in "[a-z]{1,5}",
        hay in "[a-z]{0,7}",
    ) {
        let re = Regex::new(&format!("^{needle}$")).unwrap();
        prop_assert_eq!(re.is_match(&hay), hay == needle);
    }

    #[test]
    fn regex_star_never_panics(pat in "[a-z.()*+?|\\[\\]]{0,10}", hay in "[a-z]{0,10}") {
        // Any syntactically valid pattern must match or not without
        // panicking or hanging.
        if let Ok(re) = Regex::new(&pat) {
            let _ = re.is_match(&hay);
        }
    }
}

// ---- RBAC <-> KeyNote encode/decode round-trips ----

fn arb_policy() -> impl Strategy<Value = RbacPolicy> {
    let grant = (
        "[A-Z][a-z]{1,5}",
        "[A-Z][a-z]{1,5}",
        "[A-Z][a-z]{1,5}",
        "[a-z]{1,5}",
    )
        .prop_map(|(d, r, t, p)| PermissionGrant::new(d.as_str(), r.as_str(), t.as_str(), p.as_str()));
    let assignment = ("[a-z]{1,6}", "[A-Z][a-z]{1,5}", "[A-Z][a-z]{1,5}")
        .prop_map(|(u, d, r)| RoleAssignment::new(u.as_str(), d.as_str(), r.as_str()));
    (
        proptest::collection::vec(grant, 0..12),
        proptest::collection::vec(assignment, 0..12),
    )
        .prop_map(|(gs, asgs)| {
            let mut p = RbacPolicy::new();
            for g in gs {
                p.grant(g);
            }
            for a in asgs {
                p.assign(a);
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_identity(policy in arb_policy()) {
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&policy, "KWebCom", &dir);
        let report = decode_policy(&assertions, "KWebCom", &dir);
        prop_assert_eq!(report.policy, policy);
        prop_assert!(report.skipped.is_empty());
    }

    #[test]
    fn merge_is_monotone(a in arb_policy(), b in arb_policy()) {
        // Merging never removes access.
        let mut merged = a.clone();
        merged.merge(&b);
        for g in a.grants() {
            prop_assert!(merged.role_has_permission(&g.domain, &g.role, &g.object_type, &g.permission));
        }
        for asg in b.assignments() {
            prop_assert!(merged.user_in_role(&asg.user, &asg.domain, &asg.role));
        }
    }
}

// ---- Compliance monotonicity: adding credentials never revokes ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn adding_credentials_is_monotone(policy in arb_policy(), extra in "[a-z]{1,6}") {
        use hetsec_keynote::session::KeyNoteSession;
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&policy, "KWebCom", &dir);
        let mut base = KeyNoteSession::permissive();
        for a in assertions.clone() {
            base.add_policy_assertion(a).unwrap();
        }
        let mut extended = KeyNoteSession::permissive();
        for a in assertions {
            extended.add_policy_assertion(a).unwrap();
        }
        // An unrelated extra credential from an unknown key.
        extended
            .add_credentials(&format!(
                "Authorizer: \"Kstray\"\nLicensees: \"K{extra}\"\n"
            ))
            .unwrap();
        // Every decision authorised before stays authorised.
        for asg in policy.assignments() {
            for g in policy.grants() {
                let attrs: hetsec_keynote::ActionAttributes = [
                    ("app_domain", "WebCom"),
                    ("Domain", g.domain.as_str()),
                    ("Role", g.role.as_str()),
                    ("ObjectType", g.object_type.as_str()),
                    ("Permission", g.permission.as_str()),
                ]
                .into_iter()
                .collect();
                let key = format!("K{}", asg.user.as_str().to_lowercase());
                let before = base.query_action(&[key.as_str()], &attrs).is_authorized();
                if before {
                    prop_assert!(extended.query_action(&[key.as_str()], &attrs).is_authorized());
                }
            }
        }
    }
}

// ---- Role-hierarchy flattening preserves access decisions ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flattening_a_hierarchy_preserves_decisions(
        grants in proptest::collection::vec((0usize..5, 0usize..3, "[a-z]{1,4}"), 1..10),
        assigns in proptest::collection::vec(("[a-z]{1,5}", 0usize..5), 1..8),
        edges in proptest::collection::vec((0usize..5, 0usize..5), 0..6),
    ) {
        use hetsec_rbac::hierarchy::RoleHierarchy;
        use hetsec_rbac::DomainRole;
        // All roles live in one fixed domain so hierarchy edges are
        // always well-formed.
        let roles = ["R0", "R1", "R2", "R3", "R4"];
        let mut policy = RbacPolicy::new();
        for (r, t, p) in &grants {
            policy.grant(PermissionGrant::new("D", roles[*r], format!("T{t}"), p.as_str()));
        }
        for (u, r) in &assigns {
            policy.assign(RoleAssignment::new(u.as_str(), "D", roles[*r]));
        }
        let mut h = RoleHierarchy::new();
        for (a, b) in edges {
            if a != b {
                // Cycle-producing edges are rejected; that's fine.
                let _ = h.add_seniority(
                    DomainRole::new("D", roles[a]),
                    DomainRole::new("D", roles[b]),
                );
            }
        }
        // Flatten into a copy; hierarchical check on the original must
        // equal the flat check on the flattened policy.
        let mut flat = policy.clone();
        h.flatten(&mut flat);
        for user in policy.users() {
            for g in policy.grants() {
                let hier = h.check_access(&policy, &user, &g.object_type, &g.permission);
                let flat_says = flat.check_access(&user, &g.object_type, &g.permission);
                prop_assert_eq!(hier, flat_says, "user={} grant={}", user, g);
            }
        }
    }
}
