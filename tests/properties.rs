//! Property-based tests over the framework's core invariants.
//!
//! Written against a small deterministic generator harness instead of
//! proptest (the build environment cannot reach a crates registry).
//! Each test drives a fixed number of pseudo-random cases from a seeded
//! splitmix64 stream, so failures are reproducible; the failing case is
//! reported through the assertion message.

use hetsec_crypto::bigint::U512;
use hetsec_keynote::ast::{CmpOp, Expr, LicenseeExpr, Term};
use hetsec_keynote::parser::{parse_expression, parse_licensees};
use hetsec_keynote::print::{print_expr, print_licensees};
use hetsec_keynote::regex::Regex;
use hetsec_keynote::session::ActionQuery;
use hetsec_rbac::policy::{PermissionGrant, RbacPolicy, RoleAssignment};
use hetsec_translate::{decode_policy, encode_policy, SymbolicDirectory};

// ---- Deterministic generator harness ----

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// splitmix64 — enough statistical quality for test-case generation.
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform value in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..hi` (half-open, hi > lo).
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// A string of `len` characters drawn from `alphabet`.
    fn pick_string(&mut self, alphabet: &[char], len: usize) -> String {
        (0..len).map(|_| alphabet[self.below(alphabet.len())]).collect()
    }
}

fn chars(ranges: &[(char, char)]) -> Vec<char> {
    let mut out = Vec::new();
    for &(lo, hi) in ranges {
        let (lo, hi) = (lo as u32, hi as u32);
        out.extend((lo..=hi).filter_map(char::from_u32));
    }
    out
}

/// `[a-z_][a-z0-9_]{0,6}` — a KeyNote attribute identifier.
fn gen_ident(rng: &mut Rng) -> String {
    let first = chars(&[('a', 'z'), ('_', '_')]);
    let rest = chars(&[('a', 'z'), ('0', '9'), ('_', '_')]);
    let mut s = rng.pick_string(&first, 1);
    let n = rng.below(7);
    s.push_str(&rng.pick_string(&rest, n));
    s
}

/// `[A-Za-z][A-Za-z0-9]{0,8}` — a principal name.
fn gen_principal(rng: &mut Rng) -> String {
    let first = chars(&[('A', 'Z'), ('a', 'z')]);
    let rest = chars(&[('A', 'Z'), ('a', 'z'), ('0', '9')]);
    let mut s = rng.pick_string(&first, 1);
    let n = rng.below(9);
    s.push_str(&rng.pick_string(&rest, n));
    s
}

/// `[A-Z][a-z]{1,5}` — a capitalised name (domain/role/type).
fn gen_cap_name(rng: &mut Rng) -> String {
    let first = chars(&[('A', 'Z')]);
    let rest = chars(&[('a', 'z')]);
    let mut s = rng.pick_string(&first, 1);
    let n = rng.range(1, 6);
    s.push_str(&rng.pick_string(&rest, n));
    s
}

/// `[a-z]{lo,hi}` — a lowercase word.
fn gen_word(rng: &mut Rng, lo: usize, hi: usize) -> String {
    let alpha = chars(&[('a', 'z')]);
    let n = rng.range(lo, hi + 1);
    rng.pick_string(&alpha, n)
}

// ---- U512 arithmetic vs u128 reference ----

#[test]
fn u512_add_matches_u128() {
    let mut rng = Rng::new(0x5add);
    for case in 0..256 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let sum = U512::from_u64(a).add(&U512::from_u64(b));
        assert_eq!(
            sum,
            U512::from_u128(a as u128 + b as u128),
            "case {case}: {a} + {b}"
        );
    }
}

#[test]
fn u512_mul_matches_u128() {
    let mut rng = Rng::new(0x5b01);
    for case in 0..256 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let prod = U512::from_u64(a).mul(&U512::from_u64(b));
        assert_eq!(
            prod,
            U512::from_u128(a as u128 * b as u128),
            "case {case}: {a} * {b}"
        );
    }
}

#[test]
fn u512_divmod_matches_u128() {
    let mut rng = Rng::new(0x5d17);
    for case in 0..256 {
        let a = rng.next_u128();
        let b = rng.next_u64().max(1);
        let (q, r) = U512::from_u128(a).divmod(&U512::from_u64(b));
        assert_eq!(q, U512::from_u128(a / b as u128), "case {case}: {a} / {b}");
        assert_eq!(r, U512::from_u128(a % b as u128), "case {case}: {a} % {b}");
    }
}

#[test]
fn u512_hex_roundtrip() {
    let mut rng = Rng::new(0x4e7);
    for case in 0..256 {
        let v = U512::from_u128(rng.next_u128());
        assert_eq!(U512::from_hex(&v.to_hex()), Some(v), "case {case}");
    }
}

#[test]
fn u512_shift_roundtrip() {
    let mut rng = Rng::new(0x54f7);
    for case in 0..256 {
        let v = U512::from_u128(rng.next_u128());
        let s = rng.below(256) as u32;
        assert_eq!(v.shl_small(s).shr_small(s), v, "case {case}: shift {s}");
    }
}

#[test]
fn u512_modpow_mul_law() {
    let mut rng = Rng::new(0x0d90);
    for case in 0..256 {
        // (a*b) mod m == mulmod(a, b, m)
        let a = rng.next_u64().max(1);
        let b = rng.next_u64().max(1);
        let m = rng.next_u64().max(2);
        let lhs = U512::from_u64(a).mulmod(&U512::from_u64(b), &U512::from_u64(m));
        let rhs = U512::from_u128((a as u128 * b as u128) % m as u128);
        assert_eq!(lhs, rhs, "case {case}: {a} * {b} mod {m}");
    }
}

// ---- Expression printer/parser round-trips over generated ASTs ----

fn gen_term(rng: &mut Rng, depth: usize) -> Term {
    let printable = chars(&[(' ', '~')]);
    match if depth == 0 { rng.below(3) } else { rng.below(5) } {
        0 => Term::Attr(gen_ident(rng)),
        1 => {
            let n = rng.below(9);
            Term::Str(rng.pick_string(&printable, n))
        }
        2 => Term::Num(rng.below(100_000) as f64),
        3 => Term::Concat(
            Box::new(gen_term(rng, depth - 1)),
            Box::new(gen_term(rng, depth - 1)),
        ),
        _ => Term::Deref(Box::new(gen_term(rng, depth - 1))),
    }
}

fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
    match if depth == 0 { rng.below(4) } else { rng.below(7) } {
        0 => Expr::True,
        1 => Expr::False,
        2 => Expr::Cmp {
            op: CmpOp::Eq,
            lhs: gen_term(rng, 2),
            rhs: gen_term(rng, 2),
        },
        3 => Expr::Cmp {
            op: CmpOp::Le,
            lhs: gen_term(rng, 2),
            rhs: gen_term(rng, 2),
        },
        4 => Expr::And(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        5 => Expr::Or(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
    }
}

fn gen_licensees(rng: &mut Rng, depth: usize) -> LicenseeExpr {
    match if depth == 0 { 0 } else { rng.below(4) } {
        0 => LicenseeExpr::Principal(gen_principal(rng)),
        1 => LicenseeExpr::And(
            Box::new(gen_licensees(rng, depth - 1)),
            Box::new(gen_licensees(rng, depth - 1)),
        ),
        2 => LicenseeExpr::Or(
            Box::new(gen_licensees(rng, depth - 1)),
            Box::new(gen_licensees(rng, depth - 1)),
        ),
        _ => {
            let n = rng.range(1, 4);
            let items: Vec<LicenseeExpr> =
                (0..n).map(|_| gen_licensees(rng, depth - 1)).collect();
            let k = rng.range(1, n + 1);
            LicenseeExpr::KOf(k, items)
        }
    }
}

#[test]
fn expr_print_parse_roundtrip() {
    let mut rng = Rng::new(0xe387);
    for case in 0..64 {
        let e = gen_expr(&mut rng, 4);
        let printed = print_expr(&e);
        let back = parse_expression(&printed)
            .unwrap_or_else(|err| panic!("case {case}: `{printed}` failed to parse: {err:?}"));
        assert_eq!(back, e, "case {case}: `{printed}`");
    }
}

#[test]
fn licensees_print_parse_roundtrip() {
    let mut rng = Rng::new(0x11c5);
    for case in 0..64 {
        let l = gen_licensees(&mut rng, 3);
        let printed = print_licensees(&l);
        let back = parse_licensees(&printed)
            .unwrap_or_else(|err| panic!("case {case}: `{printed}` failed to parse: {err:?}"));
        assert_eq!(back, l, "case {case}: `{printed}`");
    }
}

// ---- Regex engine vs a naive literal matcher ----

#[test]
fn regex_literal_agrees_with_contains() {
    let mut rng = Rng::new(0x9e8e);
    for case in 0..128 {
        let needle = gen_word(&mut rng, 1, 5);
        let hay = gen_word(&mut rng, 0, 12);
        let re = Regex::new(&needle).unwrap();
        assert_eq!(
            re.is_match(&hay),
            hay.contains(&needle),
            "case {case}: needle `{needle}` hay `{hay}`"
        );
    }
}

#[test]
fn regex_anchored_literal_agrees_with_eq() {
    let mut rng = Rng::new(0xa9c0);
    for case in 0..128 {
        let needle = gen_word(&mut rng, 1, 5);
        let hay = gen_word(&mut rng, 0, 7);
        let re = Regex::new(&format!("^{needle}$")).unwrap();
        assert_eq!(
            re.is_match(&hay),
            hay == needle,
            "case {case}: needle `{needle}` hay `{hay}`"
        );
    }
}

#[test]
fn regex_star_never_panics() {
    // Any syntactically valid pattern must match or not without
    // panicking or hanging.
    let mut rng = Rng::new(0x57a6);
    let pat_alpha: Vec<char> = chars(&[('a', 'z')])
        .into_iter()
        .chain(".()*+?|[]".chars())
        .collect();
    for _case in 0..128 {
        let n = rng.below(11);
        let pat = rng.pick_string(&pat_alpha, n);
        let hay = gen_word(&mut rng, 0, 10);
        if let Ok(re) = Regex::new(&pat) {
            let _ = re.is_match(&hay);
        }
    }
}

// ---- RBAC <-> KeyNote encode/decode round-trips ----

fn gen_policy(rng: &mut Rng) -> RbacPolicy {
    let mut p = RbacPolicy::new();
    for _ in 0..rng.below(12) {
        p.grant(PermissionGrant::new(
            gen_cap_name(rng).as_str(),
            gen_cap_name(rng).as_str(),
            gen_cap_name(rng).as_str(),
            gen_word(rng, 1, 5).as_str(),
        ));
    }
    for _ in 0..rng.below(12) {
        p.assign(RoleAssignment::new(
            gen_word(rng, 1, 6).as_str(),
            gen_cap_name(rng).as_str(),
            gen_cap_name(rng).as_str(),
        ));
    }
    p
}

#[test]
fn encode_decode_is_identity() {
    let mut rng = Rng::new(0xe4c0);
    for case in 0..64 {
        let policy = gen_policy(&mut rng);
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&policy, "KWebCom", &dir);
        let report = decode_policy(&assertions, "KWebCom", &dir);
        assert_eq!(report.policy, policy, "case {case}");
        assert!(report.skipped.is_empty(), "case {case}: {:?}", report.skipped);
    }
}

#[test]
fn merge_is_monotone() {
    // Merging never removes access.
    let mut rng = Rng::new(0x3e66);
    for case in 0..64 {
        let a = gen_policy(&mut rng);
        let b = gen_policy(&mut rng);
        let mut merged = a.clone();
        merged.merge(&b);
        for g in a.grants() {
            assert!(
                merged.role_has_permission(&g.domain, &g.role, &g.object_type, &g.permission),
                "case {case}: lost grant {g}"
            );
        }
        for asg in b.assignments() {
            assert!(
                merged.user_in_role(&asg.user, &asg.domain, &asg.role),
                "case {case}: lost assignment"
            );
        }
    }
}

// ---- Compliance monotonicity: adding credentials never revokes ----

#[test]
fn adding_credentials_is_monotone() {
    use hetsec_keynote::session::KeyNoteSession;
    let mut rng = Rng::new(0xc4ed);
    for case in 0..32 {
        let policy = gen_policy(&mut rng);
        let extra = gen_word(&mut rng, 1, 6);
        let dir = SymbolicDirectory::default();
        let assertions = encode_policy(&policy, "KWebCom", &dir);
        let mut base = KeyNoteSession::permissive();
        for a in assertions.clone() {
            base.add_policy_assertion(a).unwrap();
        }
        let mut extended = KeyNoteSession::permissive();
        for a in assertions {
            extended.add_policy_assertion(a).unwrap();
        }
        // An unrelated extra credential from an unknown key.
        extended
            .add_credentials(&format!(
                "Authorizer: \"Kstray\"\nLicensees: \"K{extra}\"\n"
            ))
            .unwrap();
        // Every decision authorised before stays authorised.
        for asg in policy.assignments() {
            for g in policy.grants() {
                let attrs: hetsec_keynote::ActionAttributes = [
                    ("app_domain", "WebCom"),
                    ("Domain", g.domain.as_str()),
                    ("Role", g.role.as_str()),
                    ("ObjectType", g.object_type.as_str()),
                    ("Permission", g.permission.as_str()),
                ]
                .into_iter()
                .collect();
                let key = format!("K{}", asg.user.as_str().to_lowercase());
                let before = base.evaluate(&ActionQuery::principals(&[key.as_str()]).attributes(&attrs)).is_authorized();
                if before {
                    assert!(
                        extended.evaluate(&ActionQuery::principals(&[key.as_str()]).attributes(&attrs)).is_authorized(),
                        "case {case}: user {key} lost access to {g}"
                    );
                }
            }
        }
    }
}

// ---- Role-hierarchy flattening preserves access decisions ----

#[test]
fn flattening_a_hierarchy_preserves_decisions() {
    use hetsec_rbac::hierarchy::RoleHierarchy;
    use hetsec_rbac::DomainRole;
    let mut rng = Rng::new(0xf1a7);
    for case in 0..32 {
        // All roles live in one fixed domain so hierarchy edges are
        // always well-formed.
        let roles = ["R0", "R1", "R2", "R3", "R4"];
        let mut policy = RbacPolicy::new();
        for _ in 0..rng.range(1, 10) {
            let r = rng.below(5);
            let t = rng.below(3);
            let p = gen_word(&mut rng, 1, 4);
            policy.grant(PermissionGrant::new("D", roles[r], format!("T{t}"), p.as_str()));
        }
        for _ in 0..rng.range(1, 8) {
            let u = gen_word(&mut rng, 1, 5);
            let r = rng.below(5);
            policy.assign(RoleAssignment::new(u.as_str(), "D", roles[r]));
        }
        let mut h = RoleHierarchy::new();
        for _ in 0..rng.below(6) {
            let a = rng.below(5);
            let b = rng.below(5);
            if a != b {
                // Cycle-producing edges are rejected; that's fine.
                let _ = h.add_seniority(
                    DomainRole::new("D", roles[a]),
                    DomainRole::new("D", roles[b]),
                );
            }
        }
        // Flatten into a copy; hierarchical check on the original must
        // equal the flat check on the flattened policy.
        let mut flat = policy.clone();
        h.flatten(&mut flat);
        for user in policy.users() {
            for g in policy.grants() {
                let hier = h.check_access(&policy, &user, &g.object_type, &g.permission);
                let flat_says = flat.check_access(&user, &g.object_type, &g.permission);
                assert_eq!(hier, flat_says, "case {case}: user={user} grant={g}");
            }
        }
    }
}
