//! Distributed condensed-graph execution with full mutual mediation
//! (Figure 3): multi-client scheduling, per-domain client selection,
//! mid-run delegation, and denial propagation.

use hetsec_graphs::{Engine, EngineError, GraphBuilder, Source, Value};
use hetsec_middleware::component::ComponentRef;
use hetsec_middleware::naming::MiddlewareKind;
use hetsec_rbac::DomainRole;
use hetsec_translate::{delegate_role, SymbolicDirectory};
use hetsec_webcom::{
    spawn_client, ArithComponentExecutor, AuthzStack, Binding, ClientConfig, ClientHandle,
    ExecOutcome, TrustLayer, TrustManager, WebComMaster,
};
use std::sync::Arc;

fn tm(policy: &str) -> Arc<TrustManager> {
    let t = TrustManager::permissive();
    t.add_policy(policy).unwrap();
    Arc::new(t)
}

fn spawn_domain_client(name: &str, key: &str, domain: &str, worker_key: &str) -> ClientHandle {
    let master_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let user_tm = tm(&format!(
        "Authorizer: POLICY\nLicensees: \"{worker_key}\"\n\
         Conditions: app_domain==\"WebCom\" && Domain==\"{domain}\";\n"
    ));
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(user_tm)));
    spawn_client(ClientConfig {
        name: name.to_string(),
        key_text: key.to_string(),
        master_trust,
        stack: Arc::new(stack),
        executor: Arc::new(ArithComponentExecutor),
    })
}

fn bind(master: &WebComMaster, prim: &str, domain: &str, op: &str, worker_key: &str) {
    master.bind(
        prim,
        Binding {
            component: ComponentRef::new(MiddlewareKind::Ejb, domain, "Calc", op),
            domain: domain.into(),
            role: "Worker".into(),
            user: "worker".into(),
            principal: worker_key.to_string(),
        },
    );
}

#[test]
fn multi_domain_graph_routes_to_the_right_clients() {
    // Master trusts each client key only for its own domain.
    let client_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kc1\"\n\
         Conditions: app_domain==\"WebCom\" && Domain==\"DomA\";\n\n\
         Authorizer: POLICY\nLicensees: \"Kc2\"\n\
         Conditions: app_domain==\"WebCom\" && Domain==\"DomB\";\n",
    );
    let master = WebComMaster::new("Kmaster", client_trust);
    let c1 = spawn_domain_client("c1", "Kc1", "DomA", "Kworker");
    let c2 = spawn_domain_client("c2", "Kc2", "DomB", "Kworker");
    master.register_client(&c1, vec!["DomA".into()]);
    master.register_client(&c2, vec!["DomB".into()]);
    bind(&master, "addA", "DomA", "add", "Kworker");
    bind(&master, "mulB", "DomB", "mul", "Kworker");

    // graph: mulB(addA(p0, p1), p0)
    let mut b = GraphBuilder::new("two-domain", 2);
    let s = b.primitive("s", "addA", vec![Source::Param(0), Source::Param(1)]);
    let m = b.primitive("m", "mulB", vec![Source::Node(s), Source::Param(0)]);
    let t = b.output(Source::Node(m)).unwrap();
    let result = Engine::new(&master)
        .evaluate(&t, &[Value::Int(5), Value::Int(2)])
        .unwrap();
    assert_eq!(result, Value::Int(35));
    let s1 = c1.shutdown();
    let s2 = c2.shutdown();
    assert_eq!(s1.executed, 1, "DomA client ran exactly the add");
    assert_eq!(s2.executed, 1, "DomB client ran exactly the mul");
}

#[test]
fn parallel_fanout_distributes_many_ops() {
    let client_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let master = WebComMaster::new("Kmaster", client_trust);
    let c1 = spawn_domain_client("c1", "Kc1", "DomA", "Kworker");
    master.register_client(&c1, vec!["DomA".into()]);
    bind(&master, "add", "DomA", "add", "Kworker");

    let width = 32usize;
    let mut b = GraphBuilder::new("fanout", 1);
    let mut leaves = Vec::new();
    for i in 0..width {
        let c = b.constant(&format!("c{i}"), i as i64);
        leaves.push(b.primitive(&format!("n{i}"), "add", vec![Source::Param(0), Source::Node(c)]));
    }
    // Reduce pairwise with scheduled adds too.
    let mut frontier: Vec<_> = leaves;
    let mut round = 0;
    while frontier.len() > 1 {
        let mut next = Vec::new();
        for pair in frontier.chunks(2) {
            if pair.len() == 2 {
                next.push(b.primitive(
                    &format!("r{round}-{}", next.len()),
                    "add",
                    vec![Source::Node(pair[0]), Source::Node(pair[1])],
                ));
            } else {
                next.push(pair[0]);
            }
        }
        frontier = next;
        round += 1;
    }
    let t = b.output(Source::Node(frontier[0])).unwrap();
    let result = Engine::new(&master).evaluate(&t, &[Value::Int(1)]).unwrap();
    let expected: i64 = (0..width as i64).map(|i| 1 + i).sum();
    assert_eq!(result, Value::Int(expected));
    let stats = c1.shutdown();
    assert_eq!(stats.executed, width + (width - 1));
}

#[test]
fn delegation_unlocks_scheduling_mid_session() {
    // The worker's key is NOT directly trusted; only Kboss is. A Figure 7
    // delegation credential forwarded by the master lets the worker run.
    let client_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let master = WebComMaster::new("Kmaster", client_trust);

    let master_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let user_tm = tm(
        "Authorizer: POLICY\nLicensees: \"Kboss\"\n\
         Conditions: app_domain==\"WebCom\" && Domain==\"DomA\";\n",
    );
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(TrustLayer::new(user_tm)));
    let client = spawn_client(ClientConfig {
        name: "c1".to_string(),
        key_text: "Kc1".to_string(),
        master_trust,
        stack: Arc::new(stack),
        executor: Arc::new(ArithComponentExecutor),
    });
    master.register_client(&client, vec!["DomA".into()]);
    bind(&master, "add", "DomA", "add", "Kboss_deputy");

    // First attempt: denied (no chain from Kboss to Kboss_deputy).
    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
    assert!(matches!(out, ExecOutcome::Denied(_)));

    // Boss signs a delegation; master forwards it with requests.
    let dir = SymbolicDirectory::default();
    let cred = delegate_role(
        &"Boss".into(),
        &"Boss_deputy".into(),
        &DomainRole::new("DomA", "Worker"),
        &dir,
    );
    master.forward_credential(cred);
    let out = master.schedule_primitive("add", vec![Value::Int(1), Value::Int(1)]);
    assert_eq!(out, ExecOutcome::Ok(Value::Int(2)));
    client.shutdown();
}

#[test]
fn denial_surfaces_as_refusal_in_the_engine() {
    let client_trust = tm(
        "Authorizer: POLICY\nLicensees: \"Kc1\"\nConditions: app_domain==\"WebCom\";\n",
    );
    let master = WebComMaster::new("Kmaster", client_trust);
    let c1 = spawn_domain_client("c1", "Kc1", "DomA", "Kworker");
    master.register_client(&c1, vec!["DomA".into()]);
    // The binding's principal is unknown to the client.
    bind(&master, "add", "DomA", "add", "Kstranger");
    let mut b = GraphBuilder::new("denied", 0);
    let c = b.constant("c", 1i64);
    let n = b.primitive("n", "add", vec![Source::Node(c), Source::Node(c)]);
    let t = b.output(Source::Node(n)).unwrap();
    let err = Engine::new(&master).evaluate(&t, &[]).unwrap_err();
    assert!(matches!(err, EngineError::Refused { .. }));
    let stats = c1.shutdown();
    assert_eq!(stats.stack_denied, 1);
}
