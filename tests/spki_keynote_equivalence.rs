//! The two trust-management back-ends agree (paper footnote 1): the
//! KeyNote encoding and the SPKI/SDSI encoding of the same RBAC policy
//! yield identical authorisation decisions, including under delegation.

use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_rbac::fixtures::{salaries_policy, synthetic_policy};
use hetsec_rbac::{DomainRole, RbacPolicy, User};
use hetsec_spki::{delegate_role_spki, encode_rbac};
use hetsec_translate::{delegate_role, encode_policy, SymbolicDirectory, APP_DOMAIN};

fn keynote_session(policy: &RbacPolicy) -> KeyNoteSession {
    let dir = SymbolicDirectory::default();
    let mut s = KeyNoteSession::permissive();
    for a in encode_policy(policy, "KWebCom", &dir) {
        s.add_policy_assertion(a).unwrap();
    }
    s
}

fn keynote_check(s: &KeyNoteSession, user: &str, d: &str, r: &str, t: &str, p: &str) -> bool {
    let attrs = [
        ("app_domain", APP_DOMAIN),
        ("Domain", d),
        ("Role", r),
        ("ObjectType", t),
        ("Permission", p),
    ]
    .into_iter()
    .collect();
    let key = format!("K{}", user.to_lowercase());
    s.evaluate(&ActionQuery::principals(&[key.as_str()]).attributes(&attrs)).is_authorized()
}

/// Enumerates every (user, domain-role, object, permission) combination
/// mentioned by the policy and asserts both back-ends agree.
fn assert_equivalent(policy: &RbacPolicy) {
    let kn = keynote_session(policy);
    let spki = encode_rbac(policy, "Kwebcom");
    let perms: Vec<_> = policy
        .grants()
        .map(|g| (g.object_type.clone(), g.permission.clone()))
        .collect();
    for user in policy.users() {
        for dr in policy.domain_roles() {
            for (t, p) in &perms {
                let kn_says = keynote_check(
                    &kn,
                    user.as_str(),
                    dr.domain.as_str(),
                    dr.role.as_str(),
                    t.as_str(),
                    p.as_str(),
                );
                let spki_says = spki.check(&user, &dr.domain, &dr.role, t.as_str(), p);
                assert_eq!(
                    kn_says, spki_says,
                    "disagreement: user={user} dr={dr} obj={t} perm={p}"
                );
            }
        }
    }
}

#[test]
fn figure_1_policy_equivalent() {
    assert_equivalent(&salaries_policy());
}

#[test]
fn synthetic_policies_equivalent() {
    for (d, r, p, u) in [(1usize, 2usize, 2usize, 2usize), (3, 3, 2, 2), (2, 4, 3, 1)] {
        assert_equivalent(&synthetic_policy(d, r, p, u));
    }
}

#[test]
fn empty_policy_equivalent() {
    assert_equivalent(&RbacPolicy::new());
}

#[test]
fn figure_7_delegation_equivalent() {
    let policy = salaries_policy();
    // KeyNote side.
    let dir = SymbolicDirectory::default();
    let mut kn = keynote_session(&policy);
    kn.add_credential_parsed(delegate_role(
        &User::new("Claire"),
        &User::new("Fred"),
        &DomainRole::new("Sales", "Manager"),
        &dir,
    ))
    .unwrap();
    // SPKI side.
    let mut spki = encode_rbac(&policy, "Kwebcom");
    spki.store.add_auth(delegate_role_spki(
        &User::new("Claire"),
        &User::new("Fred"),
        &"Sales".into(),
        &"Manager".into(),
    ));
    for perm in ["read", "write"] {
        let kn_says = keynote_check(&kn, "Fred", "Sales", "Manager", "SalariesDB", perm);
        let spki_says = spki.check(
            &"Fred".into(),
            &"Sales".into(),
            &"Manager".into(),
            "SalariesDB",
            &perm.into(),
        );
        assert_eq!(kn_says, spki_says, "perm={perm}");
    }
    // And the delegated read actually works in both.
    assert!(keynote_check(&kn, "Fred", "Sales", "Manager", "SalariesDB", "read"));
}

#[test]
fn delegation_from_unauthorised_user_equivalent() {
    let policy = salaries_policy();
    let dir = SymbolicDirectory::default();
    let mut kn = keynote_session(&policy);
    kn.add_credential_parsed(delegate_role(
        &User::new("Dave"),
        &User::new("Mallory"),
        &DomainRole::new("Sales", "Manager"),
        &dir,
    ))
    .unwrap();
    let mut spki = encode_rbac(&policy, "Kwebcom");
    spki.store.add_auth(delegate_role_spki(
        &User::new("Dave"),
        &User::new("Mallory"),
        &"Sales".into(),
        &"Manager".into(),
    ));
    let kn_says = keynote_check(&kn, "Mallory", "Sales", "Manager", "SalariesDB", "read");
    let spki_says = spki.check(
        &"Mallory".into(),
        &"Sales".into(),
        &"Manager".into(),
        "SalariesDB",
        &"read".into(),
    );
    assert_eq!(kn_says, spki_says);
    assert!(!kn_says);
}
