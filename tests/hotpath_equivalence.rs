//! Equivalence suites for the authorization hot-path overhaul.
//!
//! Two independently implemented fast paths exist in the tree: the
//! Montgomery-form modular arithmetic in `hetsec-crypto` (vs the
//! schoolbook long-division path) and the compiled KeyNote evaluator in
//! `hetsec-keynote` (vs the AST interpreter). Both are held to the slow
//! implementation's answers on pseudo-random inputs from a seeded
//! splitmix64 stream — deterministic, so any failure is reproducible
//! from the case index in the assertion message.

use hetsec_crypto::bigint::{Montgomery, U512};
use hetsec_keynote::ast::Assertion;
use hetsec_keynote::parser::parse_assertions;
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_keynote::signing::sign_assertion;
use hetsec_keynote::ActionAttributes;
use hetsec_crypto::KeyPair;

// ---- Deterministic generator harness (see tests/properties.rs) ----

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// A uniformly random `U512` with up to `bits` significant bits.
    fn next_u512(&mut self, bits: u32) -> U512 {
        let mut limbs = [0u64; 8];
        for limb in &mut limbs {
            *limb = self.next_u64();
        }
        U512::from_limbs(limbs).shr_small(512 - bits)
    }

    /// A random odd modulus with exactly `bits` significant bits
    /// (top bit forced so the width is predictable).
    fn next_odd_modulus(&mut self, bits: u32) -> U512 {
        let mut m = self.next_u512(bits);
        let mut limbs = m.limbs();
        limbs[0] |= 1;
        m = U512::from_limbs(limbs);
        if !m.bit(bits - 1) {
            m = m.add(&U512::ONE.shl_small(bits - 1));
        }
        m
    }
}

// ---- Montgomery vs schoolbook ----

#[test]
fn montgomery_mulmod_matches_schoolbook_on_random_operands() {
    let mut rng = Rng::new(0x4d6f_6e74_676f_6d01);
    for case in 0..200 {
        // Vary the modulus width across the whole supported range,
        // including full 512-bit moduli where the schoolbook divider
        // exercises its high-bit overflow path.
        let bits = [64, 128, 256, 384, 500, 512][case % 6] as u32;
        let m = rng.next_odd_modulus(bits);
        if m == U512::ONE {
            continue;
        }
        let ctx = Montgomery::new(&m).expect("odd modulus");
        let a = rng.next_u512(512).rem(&m);
        let b = rng.next_u512(512).rem(&m);
        let fast = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        let slow = a.mulmod(&b, &m);
        assert_eq!(fast, slow, "case {case}: mulmod diverged for bits={bits}");
    }
}

#[test]
fn montgomery_modpow_matches_schoolbook_on_random_operands() {
    let mut rng = Rng::new(0x4d6f_6e74_676f_6d02);
    for case in 0..60 {
        let bits = [64, 192, 256, 512][case % 4] as u32;
        let m = rng.next_odd_modulus(bits);
        if m == U512::ONE {
            continue;
        }
        let base = rng.next_u512(512);
        // Exponent width varies from tiny to full so every window
        // pattern of the fixed-window ladder is exercised.
        let exp = rng.next_u512([1, 17, 64, 250, 512][case % 5] as u32);
        let fast = base.modpow(&exp, &m);
        let slow = base.modpow_schoolbook(&exp, &m);
        assert_eq!(fast, slow, "case {case}: modpow diverged for bits={bits}");
    }
}

#[test]
fn montgomery_edge_exponents_match_schoolbook() {
    let mut rng = Rng::new(0x4d6f_6e74_676f_6d03);
    let m = rng.next_odd_modulus(256);
    let base = rng.next_u512(512);
    for exp in [
        U512::ZERO,
        U512::ONE,
        U512::TWO,
        U512::from_u64(65_537),
        U512::from_u64(u64::MAX),
    ] {
        assert_eq!(
            base.modpow(&exp, &m),
            base.modpow_schoolbook(&exp, &m),
            "exp {exp:?}"
        );
    }
}

// ---- Compiled vs interpreted KeyNote evaluation ----

/// Generates a random assertion-store text plus query inputs, drawing
/// principals from a small pool so delegation chains actually connect.
fn random_policy_text(rng: &mut Rng) -> String {
    const PRINCIPALS: [&str; 6] = ["Ka", "Kb", "Kc", "Kd", "Ke", "Kf"];
    const OPS: [&str; 4] = ["read", "write", "grant", "delete"];
    let mut text = String::new();
    let n_assertions = rng.below(6) + 2;
    for i in 0..n_assertions {
        let authorizer = if i == 0 || rng.below(3) == 0 {
            "POLICY".to_string()
        } else {
            format!("\"{}\"", PRINCIPALS[rng.below(PRINCIPALS.len())])
        };
        let licensees = match rng.below(4) {
            0 => format!("\"{}\"", PRINCIPALS[rng.below(PRINCIPALS.len())]),
            1 => format!(
                "\"{}\" || \"{}\"",
                PRINCIPALS[rng.below(PRINCIPALS.len())],
                PRINCIPALS[rng.below(PRINCIPALS.len())]
            ),
            2 => format!(
                "\"{}\" && \"{}\"",
                PRINCIPALS[rng.below(PRINCIPALS.len())],
                PRINCIPALS[rng.below(PRINCIPALS.len())]
            ),
            _ => format!(
                "2-of(\"{}\", \"{}\", \"{}\")",
                PRINCIPALS[rng.below(PRINCIPALS.len())],
                PRINCIPALS[rng.below(PRINCIPALS.len())],
                PRINCIPALS[rng.below(PRINCIPALS.len())]
            ),
        };
        let conditions = match rng.below(5) {
            0 => String::new(),
            1 => format!("Conditions: oper == \"{}\";\n", OPS[rng.below(OPS.len())]),
            2 => format!(
                "Conditions: oper == \"{}\" || level > {};\n",
                OPS[rng.below(OPS.len())],
                rng.below(9)
            ),
            3 => format!("Conditions: oper ~= \"^(read|write)$\" && level <= {};\n", rng.below(9)),
            _ => format!(
                "Conditions: oper == \"{}\" -> \"_MAX_TRUST\"; level > {} -> \"_MIN_TRUST\";\n",
                OPS[rng.below(OPS.len())],
                rng.below(9)
            ),
        };
        text.push_str(&format!(
            "Authorizer: {authorizer}\nLicensees: {licensees}\n{conditions}\n"
        ));
    }
    text
}

#[test]
fn compiled_evaluation_matches_interpreter_on_random_stores() {
    const PRINCIPALS: [&str; 6] = ["Ka", "Kb", "Kc", "Kd", "Ke", "Kf"];
    const OPS: [&str; 4] = ["read", "write", "grant", "delete"];
    let mut rng = Rng::new(0x4b65_794e_6f74_6501);
    let mut checked = 0usize;
    for case in 0..150 {
        let text = random_policy_text(&mut rng);
        // Some random stores are syntactically invalid (e.g. duplicated
        // licensee pools are fine, but keep the guard anyway).
        let Ok(_) = parse_assertions(&text) else {
            continue;
        };
        let mut session = KeyNoteSession::permissive();
        if session.add_policy(&text).is_err() {
            continue;
        }
        if rng.below(4) == 0 {
            session.revoke_key(PRINCIPALS[rng.below(PRINCIPALS.len())]);
        }
        for _ in 0..4 {
            let who = PRINCIPALS[rng.below(PRINCIPALS.len())];
            let attrs: ActionAttributes = [
                ("oper", OPS[rng.below(OPS.len())].to_string()),
                ("level", rng.below(12).to_string()),
            ]
            .into_iter()
            .collect();
            let compiled = session.evaluate(&ActionQuery::principals(&[who]).attributes(&attrs));
            let interpreted = session.evaluate(&ActionQuery::principals(&[who]).attributes(&attrs).interpreted());
            assert_eq!(
                compiled.value, interpreted.value,
                "case {case}: verdict diverged for {who} over:\n{text}"
            );
            assert_eq!(
                compiled.value_name, interpreted.value_name,
                "case {case}: value name diverged for {who}"
            );
            checked += 1;
        }
    }
    assert!(checked > 400, "generator degenerated: only {checked} cases");
}

#[test]
fn compiled_evaluation_matches_interpreter_with_extra_credentials() {
    let mut rng = Rng::new(0x4b65_794e_6f74_6502);
    for case in 0..40 {
        let text = random_policy_text(&mut rng);
        let mut session = KeyNoteSession::permissive();
        if session.add_policy(&text).is_err() {
            continue;
        }
        // A request-scoped delegation from a random store principal.
        let from = ["Ka", "Kb", "Kc"][rng.below(3)];
        let extra_text = format!("Authorizer: \"{from}\"\nLicensees: \"Kx\"\n");
        let extra: Vec<Assertion> = parse_assertions(&extra_text).unwrap();
        let attrs: ActionAttributes = [("oper", "read"), ("level", "3")].into_iter().collect();
        let compiled = session.evaluate(&ActionQuery::principals(&["Kx"]).attributes(&attrs).extra(&extra));
        let interpreted = session.evaluate(&ActionQuery::principals(&["Kx"]).attributes(&attrs).extra(&extra).interpreted());
        assert_eq!(
            compiled.value, interpreted.value,
            "case {case}: extra-credential verdict diverged over:\n{text}"
        );
    }
}

#[test]
fn batch_evaluation_matches_sequential_on_random_stores() {
    const PRINCIPALS: [&str; 6] = ["Ka", "Kb", "Kc", "Kd", "Ke", "Kf"];
    const OPS: [&str; 4] = ["read", "write", "grant", "delete"];
    let mut rng = Rng::new(0x4b65_794e_6f74_6503);
    let mut checked = 0usize;
    for case in 0..80 {
        let text = random_policy_text(&mut rng);
        let mut session = KeyNoteSession::permissive();
        if session.add_policy(&text).is_err() {
            continue;
        }
        if rng.below(4) == 0 {
            session.revoke_key(PRINCIPALS[rng.below(PRINCIPALS.len())]);
        }
        // A mixed batch: varied principals and attribute sets, some
        // items carrying request-scoped credentials, some forced onto
        // the interpreted path, and occasional coincident repeats of
        // the predecessor (same borrowed attrs — the collapse case).
        let extra_text = format!(
            "Authorizer: \"{}\"\nLicensees: \"Kx\"\n",
            PRINCIPALS[rng.below(3)]
        );
        let extra: Vec<Assertion> = parse_assertions(&extra_text).unwrap();
        let n = rng.below(12) + 2;
        let attr_sets: Vec<ActionAttributes> = (0..n)
            .map(|_| {
                [
                    ("oper", OPS[rng.below(OPS.len())].to_string()),
                    ("level", rng.below(12).to_string()),
                ]
                .into_iter()
                .collect()
            })
            .collect();
        let mut queries: Vec<ActionQuery<'_>> = Vec::with_capacity(n);
        for i in 0..n {
            if i > 0 && rng.below(4) == 0 {
                queries.push(queries[i - 1]);
                continue;
            }
            let mut q = ActionQuery::principal(PRINCIPALS[rng.below(PRINCIPALS.len())])
                .attributes(&attr_sets[i]);
            if rng.below(3) == 0 {
                q = q.extra(&extra);
            }
            if rng.below(4) == 0 {
                q = q.interpreted();
            }
            queries.push(q);
        }
        let batch = session.evaluate_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let single = session.evaluate(q);
            assert_eq!(
                batch[i].value, single.value,
                "case {case} item {i}: batch verdict diverged over:\n{text}"
            );
            assert_eq!(
                batch[i].value_name, single.value_name,
                "case {case} item {i}: value name diverged"
            );
            checked += 1;
        }
    }
    assert!(checked > 200, "generator degenerated: only {checked} cases");
}

// ---- Memoized signature verdicts vs revocation ----

#[test]
fn memoized_signature_verdict_does_not_defeat_revocation() {
    let kp = KeyPair::from_label("hotpath-revocation");
    let key_text = kp.public().to_text();
    let mut session = KeyNoteSession::new();
    session
        .add_policy(&format!("Authorizer: POLICY\nLicensees: \"{key_text}\"\n"))
        .unwrap();
    let mut signed = Assertion::new(
        hetsec_keynote::Principal::key(&key_text),
        hetsec_keynote::LicenseeExpr::Principal("Kworker".to_string()),
    );
    sign_assertion(&mut signed, &kp).unwrap();
    let attrs = ActionAttributes::new();
    let extra = std::slice::from_ref(&signed);

    // Warm the verdict memo, then revoke the signer: both the compiled
    // and the interpreted path must flip to denied, while the memoized
    // verdict keeps being served (no new misses).
    assert!(session.evaluate(&ActionQuery::principals(&["Kworker"]).attributes(&attrs).extra(extra)).is_authorized());
    assert!(session.evaluate(&ActionQuery::principals(&["Kworker"]).attributes(&attrs).extra(extra)).is_authorized());
    let warm = session.verify_cache_stats();
    assert!(warm.hits >= 1);
    session.revoke_key(&key_text);
    assert!(!session.evaluate(&ActionQuery::principals(&["Kworker"]).attributes(&attrs).extra(extra)).is_authorized());
    assert!(!session.evaluate(&ActionQuery::principals(&["Kworker"]).attributes(&attrs).extra(extra).interpreted()).is_authorized());
    assert_eq!(session.verify_cache_stats().misses, warm.misses);

    // Reinstating restores authority — with the verdict still memoized.
    session.reinstate_key(&key_text);
    assert!(session.evaluate(&ActionQuery::principals(&["Kworker"]).attributes(&attrs).extra(extra)).is_authorized());
    assert_eq!(session.verify_cache_stats().misses, warm.misses);
}
