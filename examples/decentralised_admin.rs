//! Decentralised administration (paper §4.1/§4.4/§4.5, Figure 8).
//!
//! A manager delegates administrative authority over a COM+ domain to a
//! deputy by signing a KeyNote credential — no human Windows
//! administrator involved. The deputy then pushes a policy update
//! through the KeyCom service, the PolicyBus keeps the unified policy
//! and the middleware catalogues consistent, and an out-of-band edit is
//! detected and repaired.
//!
//! Run with: `cargo run --example decentralised_admin`

use hetsec_com::ComMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::naming::EjbDomain;
use hetsec_middleware::security::MiddlewareSecurityExt;
use hetsec_rbac::{PermissionGrant, RbacPolicy, RoleAssignment};
use hetsec_translate::maintenance::{PolicyBus, PolicyChange};
use hetsec_webcom::{KeyComService, PolicyUpdateRequest, TrustManager};
use std::sync::Arc;

fn main() {
    // ---- Two middleware systems under one unified policy ----
    let ejb_domain = EjbDomain::new("h", "s", "Orders").to_string();
    let mut unified = RbacPolicy::new();
    unified.grant(PermissionGrant::new("CORP", "Manager", "SalariesDB", "Access"));
    unified.assign(RoleAssignment::new("bob", "CORP", "Manager"));
    unified.grant(PermissionGrant::new(ejb_domain.as_str(), "Clerk", "OrdersBean", "write"));
    unified.assign(RoleAssignment::new("alice", ejb_domain.as_str(), "Clerk"));

    let com = Arc::new(ComMiddleware::new("CORP"));
    let ejb = Arc::new(EjbMiddleware::new(EjbDomain::new("h", "s", "Orders")));
    let bus = PolicyBus::with_policy(unified);
    bus.register(com.clone());
    bus.register(ejb.clone());
    println!("registered {} endpoints; all consistent: {}",
        bus.endpoint_count(),
        bus.consistency_report().iter().all(|c| c.is_consistent()));

    // ---- Figure 8: KeyCom with delegated administrative authority ----
    let admin_tm = Arc::new(TrustManager::permissive());
    admin_tm
        .add_policy(
            "Authorizer: POLICY\nLicensees: \"KAdmin\"\n\
             Conditions: app_domain==\"WebCom\" && oper==\"administer\" && Domain==\"CORP\";\n",
        )
        .unwrap();
    let keycom = KeyComService::new(admin_tm, com.clone());

    // The manager (KAdmin) signs a delegation to the deputy (Kdeputy).
    let delegation = hetsec_keynote::parser::parse_assertion(
        "Authorizer: \"KAdmin\"\nLicensees: \"Kdeputy\"\n\
         Conditions: app_domain==\"WebCom\" && oper==\"administer\" && Domain==\"CORP\";\n",
    )
    .unwrap();

    // The deputy integrates a user from another domain into CORP
    // (exactly the Figure 8 flow).
    let request = PolicyUpdateRequest {
        requester: "Kdeputy".to_string(),
        credentials: vec![delegation],
        change: PolicyChange::Assign(RoleAssignment::new("newcomer", "CORP", "Manager")),
    };
    keycom.handle(&request).expect("delegated authority accepted");
    println!("KeyCom accepted the deputy's update: newcomer is now CORP/Manager");
    assert!(com.allows(&"newcomer".into(), &"CORP".into(), &"SalariesDB".into(), &"Access".into()));

    // An unauthorised requester is refused.
    let rogue = PolicyUpdateRequest {
        requester: "Kmallory".to_string(),
        credentials: vec![],
        change: PolicyChange::Assign(RoleAssignment::new("mallory", "CORP", "Manager")),
    };
    assert!(keycom.handle(&rogue).is_err());
    println!("KeyCom refused the unauthorised requester");

    // ---- §4.4: maintenance through the bus, top-down ----
    let report = bus.apply(&PolicyChange::Assign(RoleAssignment::new(
        "newcomer", "CORP", "Manager",
    )));
    println!(
        "bus recorded the change in the unified policy (changed: {})",
        report.unified_changed
    );

    // Out-of-band drift: someone edits the EJB container directly.
    ejb.container().map_principal("Clerk", "intruder");
    let audit = bus.consistency_report();
    let drifted: Vec<_> = audit.iter().filter(|c| !c.is_consistent()).collect();
    println!("audit found {} drifted endpoint(s)", drifted.len());
    assert_eq!(drifted.len(), 1);
    for d in &drifted {
        println!("  {}:\n{}", d.instance, d.diff);
    }
    let repaired = bus.repair();
    println!("repair reverted {repaired} row(s)");
    assert!(bus.consistency_report().iter().all(|c| c.is_consistent()));
    assert!(!ejb.allows(
        &"intruder".into(),
        &ejb_domain.as_str().into(),
        &"OrdersBean".into(),
        &"write".into()
    ));
    println!("\ndecentralised administration scenario completed");
}
