//! The paper's Figure 9 interoperation scenario.
//!
//! Four systems share one WebCom fabric:
//!
//! * **W** — the WebCom server (Windows, COM+, KeyNote);
//! * **Y** — a Windows client with a COM+ middleware security policy;
//! * **X** — a Unix client with *no* middleware security, mediating with
//!   KeyNote + OS only;
//! * **Z** — a legacy Windows/COM system being migrated to an EJB
//!   replacement.
//!
//! The example shows: (1) Y's COM policy translated to KeyNote
//! credentials and used by X; (2) Z's legacy COM policy migrated to the
//! replacement EJB server; (3) access decisions agreeing across systems.
//!
//! Run with: `cargo run --example interop_scenario`

use hetsec_com::ComMiddleware;
use hetsec_ejb::EjbMiddleware;
use hetsec_middleware::naming::EjbDomain;
use hetsec_middleware::security::{MiddlewareSecurity, MiddlewareSecurityExt};
use hetsec_rbac::{PermissionGrant, RoleAssignment};
use hetsec_translate::{
    decode_policy, encode_policy, migrate, MigrationSpec, SymbolicDirectory, APP_DOMAIN,
};
use hetsec_webcom::{AuthzRequest, TrustManager};

fn main() {
    let directory = SymbolicDirectory::default();

    // ---- System Y: Windows client with a COM+ RBAC policy ----
    let y = ComMiddleware::new("CORPY");
    y.grant(&PermissionGrant::new("CORPY", "Manager", "SalariesDB", "Access"))
        .unwrap();
    y.grant(&PermissionGrant::new("CORPY", "Manager", "SalariesDB", "Launch"))
        .unwrap();
    y.assign(&RoleAssignment::new("Claire", "CORPY", "Manager"))
        .unwrap();
    println!("System Y (COM+ in NT domain CORPY): {} grants, {} assignments",
        y.export_policy().grant_count(),
        y.export_policy().assignment_count());

    // ---- Step 1: comprehend Y's COM policy into KeyNote ----
    let y_credentials = encode_policy(&y.export_policy(), "KWebCom", &directory);
    println!(
        "translated Y's COM policy into {} KeyNote assertions",
        y_credentials.len()
    );

    // ---- System X: no middleware security; KeyNote-only mediation ----
    let x_tm = TrustManager::permissive();
    for a in y_credentials.clone() {
        x_tm.add_policy_assertion(a).unwrap();
    }
    // X can now mediate requests against Y's policy without any COM
    // installation at all.
    let attrs = |perm: &str| {
        [
            ("app_domain", APP_DOMAIN),
            ("Domain", "CORPY"),
            ("Role", "Manager"),
            ("ObjectType", "SalariesDB"),
            ("Permission", perm),
        ]
        .into_iter()
        .collect()
    };
    let claire_access = x_tm.decide(&AuthzRequest::principal("Kclaire").attributes(attrs("Access")));
    let claire_runas = x_tm.decide(&AuthzRequest::principal("Kclaire").attributes(attrs("RunAs")));
    println!("System X (no middleware): Kclaire Access -> {claire_access}, RunAs -> {claire_runas}");
    assert!(claire_access);
    assert!(!claire_runas);

    // Cross-check: X's KeyNote decision agrees with Y's native COM one.
    assert_eq!(
        claire_access,
        y.allows(&"Claire".into(), &"CORPY".into(), &"SalariesDB".into(), &"Access".into())
    );

    // ---- System Z: legacy COM system migrated to EJB ----
    let z_legacy = ComMiddleware::new("CORPZ");
    z_legacy
        .grant(&PermissionGrant::new("CORPZ", "Clerk", "OrdersApp", "Access"))
        .unwrap();
    z_legacy
        .assign(&RoleAssignment::new("Alice", "CORPZ", "Clerk"))
        .unwrap();
    let replacement_domain = EjbDomain::new("zhost", "ejbsrv", "Orders");
    let z_replacement = EjbMiddleware::new(replacement_domain.clone());
    let spec = MigrationSpec::domain("CORPZ", replacement_domain.to_string())
        .map_object("OrdersApp", "OrdersBean");
    let report = migrate(&z_legacy, &z_replacement, &spec);
    println!(
        "System Z migration: {} rows applied, {} skipped, {} role renames",
        report.import.applied,
        report.import.skipped.len(),
        report.role_renames.len()
    );
    // COM Access became method-level `invoke` on the bean.
    assert!(z_replacement.allows(
        &"Alice".into(),
        &replacement_domain.to_string().as_str().into(),
        &"OrdersBean".into(),
        &"invoke".into()
    ));

    // ---- Round trip: decode the KeyNote view back into RBAC ----
    let decoded = decode_policy(&y_credentials, "KWebCom", &directory);
    assert_eq!(decoded.policy, y.export_policy());
    println!(
        "round-trip fidelity: decoded policy identical to Y's export ({} rows)",
        decoded.policy.grant_count() + decoded.policy.assignment_count()
    );

    println!("\ninterop scenario completed: unified view consistent across W/X/Y/Z");
}
