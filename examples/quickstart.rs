//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 1 RBAC policy for the salaries database, encodes it
//! as KeyNote credentials (regenerating Figures 5-7), and answers the
//! paper's Example 1/2 authorisation questions through the compliance
//! checker.
//!
//! Run with: `cargo run --example quickstart`

use hetsec_keynote::print::print_assertion;
use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::{DomainRole, User};
use hetsec_translate::{delegate_role, encode_policy, SymbolicDirectory, APP_DOMAIN};

fn main() {
    // ---- Figure 1: the RBAC relations ----
    let policy = salaries_policy();
    println!("== Figure 1: RBAC relations for the Salaries Database ==\n");
    println!("HasPermission:");
    for g in policy.grants() {
        println!("  {g}");
    }
    println!("UserRole:");
    for a in policy.assignments() {
        println!("  {a}");
    }

    // ---- Figures 5 & 6: comprehension into KeyNote ----
    let directory = SymbolicDirectory::default();
    let assertions = encode_policy(&policy, "KWebCom", &directory);
    println!("\n== Figures 5-6: the policy as KeyNote credentials ==\n");
    for a in &assertions {
        println!("{}", print_assertion(a));
    }

    let mut session = KeyNoteSession::permissive();
    for a in assertions {
        session
            .add_policy_assertion(a)
            .expect("encoded assertions are well-formed");
    }

    // ---- Figure 7: Claire delegates her role to Fred ----
    let delegation = delegate_role(
        &User::new("Claire"),
        &User::new("Fred"),
        &DomainRole::new("Sales", "Manager"),
        &directory,
    );
    println!("== Figure 7: Claire delegates Sales/Manager to Fred ==\n");
    println!("{}", print_assertion(&delegation));
    session
        .add_credential_parsed(delegation)
        .expect("delegation credential is well-formed");

    // ---- Example 1/2-style queries ----
    println!("== Authorisation queries ==\n");
    let cases = [
        ("Kbob", "Finance", "Manager", "read"),
        ("Kbob", "Finance", "Manager", "write"),
        ("Kalice", "Finance", "Clerk", "write"),
        ("Kalice", "Finance", "Clerk", "read"),
        ("Kclaire", "Sales", "Manager", "read"),
        ("Kclaire", "Sales", "Manager", "write"),
        ("Kfred", "Sales", "Manager", "read"),
        ("Kdave", "Sales", "Assistant", "read"),
        ("Kmallory", "Finance", "Manager", "read"),
    ];
    for (key, domain, role, permission) in cases {
        let attrs = [
            ("app_domain", APP_DOMAIN),
            ("Domain", domain),
            ("Role", role),
            ("ObjectType", "SalariesDB"),
            ("Permission", permission),
        ]
        .into_iter()
        .collect();
        let result = session.evaluate(&ActionQuery::principals(&[key]).attributes(&attrs));
        println!(
            "  {key:9} as {domain}/{role:9} {permission:5} on SalariesDB -> {}",
            result.value_name
        );
    }

    // Sanity assertions so the example doubles as a smoke test.
    let check = |key: &str, d: &str, r: &str, p: &str| -> bool {
        let attrs = [
            ("app_domain", APP_DOMAIN),
            ("Domain", d),
            ("Role", r),
            ("ObjectType", "SalariesDB"),
            ("Permission", p),
        ]
        .into_iter()
        .collect();
        session.evaluate(&ActionQuery::principals(&[key]).attributes(&attrs)).is_authorized()
    };
    assert!(check("Kbob", "Finance", "Manager", "read"));
    assert!(check("Kbob", "Finance", "Manager", "write"));
    assert!(check("Kalice", "Finance", "Clerk", "write"));
    assert!(!check("Kalice", "Finance", "Clerk", "read"));
    assert!(check("Kfred", "Sales", "Manager", "read"));
    assert!(!check("Kdave", "Sales", "Assistant", "read"));
    assert!(!check("Kmallory", "Finance", "Manager", "read"));
    println!("\nall quickstart checks passed");
}
