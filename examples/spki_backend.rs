//! The SPKI/SDSI back-end (paper footnote 1): the Figure 1 policy
//! encoded as SDSI name certs plus SPKI ACL entries, queried by tuple
//! reduction, with a Figure 7-style delegation — and a side-by-side
//! check that KeyNote gives the same answers.
//!
//! Run with: `cargo run --example spki_backend`

use hetsec_keynote::session::{ActionQuery, KeyNoteSession};
use hetsec_rbac::fixtures::salaries_policy;
use hetsec_rbac::{DomainRole, User};
use hetsec_spki::{authorize, delegate_role_spki, encode_rbac, rbac::request, user_key};
use hetsec_translate::{delegate_role, encode_policy, SymbolicDirectory, APP_DOMAIN};

fn main() {
    let policy = salaries_policy();

    // ---- SPKI encoding ----
    let mut spki = encode_rbac(&policy, "Kwebcom");
    println!("== SPKI/SDSI encoding of Figure 1 ==\n");
    println!("ACL ({} entries):", spki.acl.len());
    for entry in &spki.acl {
        println!("  subject {} tag {}", entry.subject, entry.tag);
    }
    println!("\nname certs ({}):", spki.store.names.len());
    for cert in &spki.store.names {
        println!("  {}", cert.to_sexp());
    }

    // ---- Figure 7: Claire delegates to Fred, as an SPKI auth cert ----
    let delegation = delegate_role_spki(
        &User::new("Claire"),
        &User::new("Fred"),
        &"Sales".into(),
        &"Manager".into(),
    );
    println!("\n== Figure 7 as an SPKI auth cert ==\n  {}", delegation.to_sexp());
    spki.store.add_auth(delegation);

    // ---- Proof-producing authorisation ----
    let req = request(&"Sales".into(), &"Manager".into(), "SalariesDB", &"read".into());
    let proof = authorize(&spki.acl, &spki.store, &user_key(&User::new("Fred")), &req)
        .expect("Fred is authorised through Claire");
    println!(
        "\nFred's read authorisation proof: {} steps, tag {}",
        proof.steps.len(),
        proof.tag
    );

    // ---- Equivalence with the KeyNote back-end ----
    let dir = SymbolicDirectory::default();
    let mut kn = KeyNoteSession::permissive();
    for a in encode_policy(&policy, "KWebCom", &dir) {
        kn.add_policy_assertion(a).unwrap();
    }
    kn.add_credential_parsed(delegate_role(
        &User::new("Claire"),
        &User::new("Fred"),
        &DomainRole::new("Sales", "Manager"),
        &dir,
    ))
    .unwrap();

    println!("\n== Back-end agreement ==\n");
    let mut disagreements = 0;
    for user in ["Alice", "Bob", "Claire", "Dave", "Elaine", "Fred", "Mallory"] {
        for dr in [("Finance", "Clerk"), ("Finance", "Manager"), ("Sales", "Manager")] {
            for perm in ["read", "write"] {
                let attrs = [
                    ("app_domain", APP_DOMAIN),
                    ("Domain", dr.0),
                    ("Role", dr.1),
                    ("ObjectType", "SalariesDB"),
                    ("Permission", perm),
                ]
                .into_iter()
                .collect();
                let key = format!("K{}", user.to_lowercase());
                let kn_says = kn.evaluate(&ActionQuery::principals(&[key.as_str()]).attributes(&attrs)).is_authorized();
                let spki_says = spki.check(
                    &user.into(),
                    &dr.0.into(),
                    &dr.1.into(),
                    "SalariesDB",
                    &perm.into(),
                );
                if kn_says != spki_says {
                    disagreements += 1;
                }
                if kn_says {
                    println!("  {user:8} {}/{:8} {perm:5} -> authorised (both back-ends)", dr.0, dr.1);
                }
            }
        }
    }
    assert_eq!(disagreements, 0, "back-ends must agree");
    println!("\nKeyNote and SPKI/SDSI agree on all 42 decisions");
}
