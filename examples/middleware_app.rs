//! A full-stack heterogeneous application (§6): an EJB server deployed
//! from an `ejb-jar.xml`, a CORBA ORB populated from IDL, both policies
//! comprehended into KeyNote, a condensed-graph application whose
//! primitives invoke the *actual* middleware components through the
//! WebCom fabric — with audited, stacked mediation at the client.
//!
//! Run with: `cargo run --example middleware_app`

use hetsec_corba::{load_idl, CorbaMiddleware, SALARIES_IDL};
use hetsec_ejb::{deploy_descriptor, parse_ejb_jar, EjbMiddleware, SALARIES_EJB_JAR};
use hetsec_graphs::{to_dot, Engine, GraphBuilder, Source, Value};
use hetsec_middleware::naming::{CorbaDomain, EjbDomain};
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_translate::{encode_policy, SymbolicDirectory};
use hetsec_webcom::{
    interrogate, spawn_client, Binding, ClientConfig, MiddlewareExecutor, MiddlewareLayer,
    PartialSpec, TrustLayer, TrustManager, WebComMaster,
};
use std::sync::Arc;

fn tm(policy: &str) -> Arc<TrustManager> {
    let t = TrustManager::permissive();
    t.add_policy(policy).unwrap();
    Arc::new(t)
}

fn main() {
    // ---- Deploy the EJB server from its deployment descriptor ----
    let ejb_domain = EjbDomain::new("apphost", "ejbsrv", "Salaries");
    let ejb = Arc::new(EjbMiddleware::new(ejb_domain.clone()));
    let jar = parse_ejb_jar(SALARIES_EJB_JAR).expect("descriptor parses");
    let applied = deploy_descriptor(ejb.container(), &jar);
    ejb.container().map_principal("Manager", "bob");
    ejb.container().map_principal("Clerk", "alice");
    println!("deployed ejb-jar.xml: {} security entries", applied);

    // ---- Populate the ORB from IDL ----
    let corba_domain = CorbaDomain::new("apphost", "payrollorb");
    let corba = Arc::new(CorbaMiddleware::new(corba_domain.clone()));
    let n = load_idl(corba.orb(), SALARIES_IDL).expect("IDL parses");
    corba.orb().grant_operation("Auditor", "Payroll::Audit", "log");
    corba.orb().add_role_member("Auditor", "bob");
    println!("loaded IDL: {n} interfaces registered");

    // ---- Interrogate both middlewares (Figure 11) ----
    let palette = interrogate(&[ejb.as_ref() as &dyn hetsec_webcom::ide::InterrogationPlugin, corba.as_ref()]);
    println!("\npalette has {} components:", palette.len());
    for entry in &palette.entries {
        println!("  {} ({} authorised combos)", entry.component.identifier(), entry.authorized.len());
    }

    // ---- Trust fabric from the exported policies ----
    let dir = SymbolicDirectory::default();
    let user_tm = Arc::new(TrustManager::permissive());
    for mw in [&ejb.export_policy(), &corba.export_policy()] {
        for a in encode_policy(mw, "KWebCom", &dir) {
            user_tm.add_policy_assertion(a).unwrap();
        }
    }

    // The client stacks both middleware layers plus trust management and
    // executes through the real middleware call paths.
    let mut stack = hetsec_webcom::AuthzStack::new();
    stack.push(Arc::new(MiddlewareLayer::new(ejb.clone())));
    stack.push(Arc::new(MiddlewareLayer::new(corba.clone())));
    stack.push(Arc::new(TrustLayer::new(user_tm)));
    let executor = MiddlewareExecutor::new()
        .with_ejb(ejb.clone())
        .with_corba(corba.clone());
    let client = spawn_client(ClientConfig {
        name: "app-client".to_string(),
        key_text: "Kapp".to_string(),
        master_trust: tm(
            "Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n",
        ),
        stack: Arc::new(stack),
        executor: Arc::new(executor),
    });

    let master = WebComMaster::new(
        "Kmaster",
        tm("Authorizer: POLICY\nLicensees: \"Kapp\"\nConditions: app_domain==\"WebCom\";\n"),
    );
    master.register_client(
        &client,
        vec![ejb_domain.to_string().as_str().into(), corba_domain.to_string().as_str().into()],
    );

    // Resolve bindings from the palette (partial spec: any authorised).
    let read_id = format!("ejb://{}/SalariesBean#read", ejb_domain);
    let log_id = format!("corba://{}/Payroll::Audit#log", corba_domain);
    for (primitive, id) in [("read_salary", read_id.as_str()), ("audit_log", log_id.as_str())] {
        let entry = palette.entry(id).expect("component on palette");
        let combo = hetsec_webcom::resolve_spec(entry, &PartialSpec::any())
            .expect("an authorised combo exists");
        println!("binding {primitive} -> {} as {}/{}/{}", id, combo.domain, combo.role, combo.user);
        let principal = format!("K{}", combo.user.as_str().to_lowercase());
        master.bind(
            primitive,
            Binding {
                component: entry.component.clone(),
                domain: combo.domain,
                role: combo.role,
                user: combo.user,
                principal,
            },
        );
    }

    // ---- The application graph: read a salary, then log the audit ----
    let mut b = GraphBuilder::new("salaries-app", 0);
    let read = b.primitive("read", "read_salary", vec![]);
    let audit = b.primitive("audit", "audit_log", vec![]);
    let gather = b.primitive("gather", "gather", vec![Source::Node(read), Source::Node(audit)]);
    let graph = b.output(Source::Node(gather)).unwrap();
    println!("\nDOT rendering of the application graph:\n{}", to_dot(&graph));

    // The master schedules read/audit; `gather` is local (bind it to an
    // EJB no-op? No — bind gather as a local list op via a tiny wrapper).
    struct WithLocalGather<'a>(&'a WebComMaster);
    impl hetsec_graphs::OpExecutor for WithLocalGather<'_> {
        fn execute(&self, op: &str, args: &[Value]) -> Result<Value, hetsec_graphs::EngineError> {
            if op == "gather" {
                return Ok(Value::List(args.to_vec()));
            }
            self.0.execute(op, args)
        }
    }
    let executor = WithLocalGather(&master);
    let engine = Engine::new(&executor);
    let result = engine.evaluate(&graph, &[]).expect("application runs");
    println!("application result: {result}");
    let stats = master.stats();
    println!(
        "master: {} scheduled, {} denials, {} rescheduled",
        stats.scheduled, stats.client_denials, stats.rescheduled
    );
    assert_eq!(stats.scheduled, 2);
    let cstats = client.shutdown();
    assert_eq!(cstats.executed, 2);
    println!("full-stack heterogeneous application completed");
}
