//! The WebCom IDE flow (paper §6, Figure 11): interrogate the
//! middlewares, build the security-aware component palette, resolve
//! partial execution specifications, and run a distributed condensed
//! graph whose primitives are scheduled to authorised clients.
//!
//! Run with: `cargo run --example ide_palette`

use hetsec_ejb::EjbMiddleware;
use hetsec_graphs::{Engine, GraphBuilder, Source, Value};
use hetsec_middleware::naming::EjbDomain;
use hetsec_middleware::security::MiddlewareSecurity;
use hetsec_rbac::{PermissionGrant, RoleAssignment};
use hetsec_translate::{encode_policy, SymbolicDirectory};
use hetsec_webcom::{
    interrogate, resolve_spec, spawn_client, ArithComponentExecutor, AuthzStack, Binding,
    ClientConfig, MiddlewareLayer, PartialSpec, TrustLayer, TrustManager, WebComMaster,
};
use std::sync::Arc;

fn main() {
    let domain = EjbDomain::new("calchost", "ejbsrv", "Payroll");
    let ds = domain.to_string();

    // ---- A payroll EJB server with a calculator bean ----
    let ejb = Arc::new(EjbMiddleware::new(domain));
    for method in ["add", "mul", "max"] {
        ejb.grant(&PermissionGrant::new(ds.as_str(), "Analyst", "CalcBean", method))
            .unwrap();
    }
    ejb.assign(&RoleAssignment::new("ana", ds.as_str(), "Analyst"))
        .unwrap();

    // ---- Figure 11: interrogation builds the palette ----
    let palette = interrogate(&[ejb.as_ref()]);
    println!("== Component palette ({} components) ==", palette.len());
    for entry in &palette.entries {
        println!("  {}", entry.component.identifier());
        for combo in &entry.authorized {
            println!("      authorised: {}/{} as {}", combo.domain, combo.role, combo.user);
        }
    }

    // ---- Partial specification: pin domain+role, let WebCom pick the user ----
    let spec = PartialSpec::any().in_domain(ds.as_str()).as_role("Analyst");
    println!("\nresolving partial spec (domain={ds}, role=Analyst):");
    let mut bindings = Vec::new();
    for entry in &palette.entries {
        let combo = resolve_spec(entry, &spec).expect("an authorised combo exists");
        println!("  {} -> user {}", entry.component.identifier(), combo.user);
        bindings.push((entry.component.clone(), combo));
    }

    // ---- Trust fabric: encode the EJB policy for the master & client ----
    let dir = SymbolicDirectory::default();
    let encoded = encode_policy(&ejb.export_policy(), "KWebCom", &dir);
    let user_tm = Arc::new(TrustManager::permissive());
    for a in encoded {
        user_tm.add_policy_assertion(a).unwrap();
    }
    // The master trusts the client key for this domain; the client
    // trusts the master to schedule.
    let client_trust = Arc::new(TrustManager::permissive());
    client_trust
        .add_policy(&format!(
            "Authorizer: POLICY\nLicensees: \"Kcalc\"\nConditions: app_domain==\"WebCom\" && Domain==\"{ds}\";\n"
        ))
        .unwrap();
    let master_trust = Arc::new(TrustManager::permissive());
    master_trust
        .add_policy("Authorizer: POLICY\nLicensees: \"Kmaster\"\nConditions: app_domain==\"WebCom\";\n")
        .unwrap();

    // The client's stack: middleware layer + trust layer (L1 + L2).
    let mut stack = AuthzStack::new();
    stack.push(Arc::new(MiddlewareLayer::new(ejb.clone())));
    stack.push(Arc::new(TrustLayer::new(user_tm)));

    let client = spawn_client(ClientConfig {
        name: "calc-client".to_string(),
        key_text: "Kcalc".to_string(),
        master_trust,
        stack: Arc::new(stack),
        executor: Arc::new(ArithComponentExecutor),
    });

    let master = WebComMaster::new("Kmaster", client_trust);
    master.register_client(&client, vec![ds.as_str().into()]);
    for (component, combo) in bindings {
        let principal = format!("K{}", combo.user.as_str().to_lowercase());
        master.bind(
            &component.operation.clone(),
            Binding {
                component,
                domain: combo.domain,
                role: combo.role,
                user: combo.user,
                principal,
            },
        );
    }

    // ---- A condensed-graph payroll application: max(a+b, a*b) ----
    let mut b = GraphBuilder::new("payroll-calc", 2);
    let sum = b.primitive("sum", "add", vec![Source::Param(0), Source::Param(1)]);
    let prod = b.primitive("prod", "mul", vec![Source::Param(0), Source::Param(1)]);
    let best = b.primitive("best", "max", vec![Source::Node(sum), Source::Node(prod)]);
    let graph = b.output(Source::Node(best)).unwrap();

    let engine = Engine::new(&master);
    let result = engine
        .evaluate(&graph, &[Value::Int(6), Value::Int(7)])
        .expect("distributed evaluation succeeds");
    println!("\ndistributed evaluation of max(6+7, 6*7) = {result}");
    assert_eq!(result, Value::Int(42));

    let stats = master.stats();
    println!(
        "master stats: {} scheduled, {} denials, {} unschedulable",
        stats.scheduled, stats.client_denials, stats.unschedulable
    );
    assert_eq!(stats.scheduled, 3);
    let cstats = client.shutdown();
    assert_eq!(cstats.executed, 3);
    println!("client executed {} components; all authorised", cstats.executed);
}
