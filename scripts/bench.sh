#!/usr/bin/env bash
# Runs the headline criterion benches and emits machine-readable
# summaries (BENCH_fig2.json, BENCH_fig3.json, BENCH_load.json,
# BENCH_analyze.json) at the repo root, so the perf trajectory can be
# tracked across commits.
#
# Usage: ./scripts/bench.sh            full measured run
#        ./scripts/bench.sh --smoke    correctness-only pass (no JSON),
#                                      used by verify.sh so the benches
#                                      cannot bitrot
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== bench smoke: every bench target, single-iteration =="
    cargo bench -q -- --test
    echo "bench.sh: smoke pass complete"
    exit 0
fi

for fig in fig2_query_latency fig3_sched_throughput fig_load fig_analyze; do
    case "${fig}" in
        fig_load)    short="load" ;;
        fig_analyze) short="analyze" ;;
        *)           short="${fig%%_*}" ;;
    esac
    out="BENCH_${short}.json"
    echo "== bench: ${fig} -> ${out} =="
    # Absolute path: cargo runs bench binaries from the package dir.
    CRITERION_JSON="${PWD}/${out}" cargo bench -q --bench "${fig}"
done

# The fig2 summary must carry the batch-first decision series alongside
# the single-shot ones — the batch path's perf claim is only checkable
# if every batch size lands in the JSON.
for series in decision_batched_b1 decision_batched_b16 decision_batched_b256; do
    grep -q "\"id\": \"fig2_query_latency/${series}\"" BENCH_fig2.json \
        || { echo "bench.sh: BENCH_fig2.json is missing the ${series} series"; exit 1; }
done

# The fig2 summary must also carry the verdict-stamp series: the
# stamped-re-presentation claim (>= 5x cheaper than cold verification,
# asserted inside the bench binary) is only reviewable if all three
# sides land in the JSON.
for series in stamp_cold_verify stamp_represent stamp_memoized; do
    grep -q "\"id\": \"fig2_query_latency/${series}\"" BENCH_fig2.json \
        || { echo "bench.sh: BENCH_fig2.json is missing the ${series} series"; exit 1; }
done

# The load summary must carry throughput and latency-quantile series
# for every fabric shape the scaling claims compare: lockstep vs mux at
# 1/2/4 shards.
for shape in lockstep_shards1 lockstep_shards2 lockstep_shards4 \
             mux_shards1 mux_shards2 mux_shards4; do
    for metric in throughput p50 p99 p999; do
        grep -q "\"id\": \"fig_load/${metric}/${shape}\"" BENCH_load.json \
            || { echo "bench.sh: BENCH_load.json is missing fig_load/${metric}/${shape}"; exit 1; }
    done
done

# The analyze summary must carry the cold / incremental / gate series
# at every store size the incremental-speedup claim compares (the
# >= 10x bar itself is asserted inside the bench binary).
for size in 100 1000 10000; do
    for series in cold incremental gate; do
        grep -q "\"id\": \"fig_analyze/${series}/n${size}\"" BENCH_analyze.json \
            || { echo "bench.sh: BENCH_analyze.json is missing fig_analyze/${series}/n${size}"; exit 1; }
    done
done

echo "bench.sh: wrote BENCH_fig2.json BENCH_fig3.json BENCH_load.json BENCH_analyze.json"
