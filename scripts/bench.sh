#!/usr/bin/env bash
# Runs the headline criterion benches and emits machine-readable
# summaries (BENCH_fig2.json, BENCH_fig3.json) at the repo root, so the
# perf trajectory can be tracked across commits.
#
# Usage: ./scripts/bench.sh            full measured run
#        ./scripts/bench.sh --smoke    correctness-only pass (no JSON),
#                                      used by verify.sh so the benches
#                                      cannot bitrot
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== bench smoke: every bench target, single-iteration =="
    cargo bench -q -- --test
    echo "bench.sh: smoke pass complete"
    exit 0
fi

for fig in fig2_query_latency fig3_sched_throughput; do
    short="${fig%%_*}"
    out="BENCH_${short}.json"
    echo "== bench: ${fig} -> ${out} =="
    # Absolute path: cargo runs bench binaries from the package dir.
    CRITERION_JSON="${PWD}/${out}" cargo bench -q --bench "${fig}"
done

# The fig2 summary must carry the batch-first decision series alongside
# the single-shot ones — the batch path's perf claim is only checkable
# if every batch size lands in the JSON.
for series in decision_batched_b1 decision_batched_b16 decision_batched_b256; do
    grep -q "\"id\": \"fig2_query_latency/${series}\"" BENCH_fig2.json \
        || { echo "bench.sh: BENCH_fig2.json is missing the ${series} series"; exit 1; }
done

echo "bench.sh: wrote BENCH_fig2.json BENCH_fig3.json"
