#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders with measured times parsed from
bench_output.txt (criterion text output)."""
import re
import sys

BENCH_OUT = "bench_output.txt"
EXPERIMENTS = "EXPERIMENTS.md"

MARKERS = {
    "FIG1": "fig1_policy_commission",
    "FIG2": "fig2_query_latency",
    "FIG3": "fig3_sched_throughput",
    "FIG4": "fig4_delegation",
    "FIG5": "fig5_encode",
    "FIG7": "fig7_decentralised",
    "FIG8": "fig8_keycom",
    "FIG9": "fig9_migration",
    "FIG10": "fig10_stack",
    "FIG11": "fig11_interrogate",
    "ABL1": "abl1_similarity",
    "ABL2": "abl2_graph_scaling",
    "ABL3": "abl3_spki_vs_keynote",
}


def parse(path):
    """Returns {group: [(bench_id, mid_time, thrpt or None)]}."""
    out = {}
    lines = open(path).read().splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        m = re.match(r"^([a-z0-9_]+)/(\S+)\s*$", line)
        if m and i + 1 < len(lines) and "time:" in lines[i + 1]:
            group, bench = m.group(1), m.group(2)
            tm = re.search(
                r"time:\s*\[\S+ \S+ (\S+ \S+) \S+ \S+\]", lines[i + 1]
            )
            mid = tm.group(1) if tm else "?"
            thr = None
            if i + 2 < len(lines) and "thrpt:" in lines[i + 2]:
                tt = re.search(
                    r"thrpt:\s*\[\S+ \S+ (\S+ \S+) \S+ \S+\]", lines[i + 2]
                )
                thr = tt.group(1) if tt else None
            out.setdefault(group, []).append((bench, mid, thr))
        i += 1
    return out


def table(rows):
    has_thr = any(t for _, _, t in rows)
    if has_thr:
        md = "| benchmark | time (median) | throughput |\n|---|---|---|\n"
        for b, m, t in rows:
            md += f"| `{b}` | {m} | {t or '—'} |\n"
    else:
        md = "| benchmark | time (median) |\n|---|---|\n"
        for b, m, _ in rows:
            md += f"| `{b}` | {m} |\n"
    return md


def main():
    groups = parse(BENCH_OUT)
    text = open(EXPERIMENTS).read()
    missing = []
    for marker, group in MARKERS.items():
        placeholder = f"<!--{marker}-->"
        if placeholder not in text:
            continue
        rows = groups.get(group)
        if not rows:
            missing.append(group)
            continue
        text = text.replace(placeholder, table(rows))
    open(EXPERIMENTS, "w").write(text)
    if missing:
        print(f"WARNING: no data for {missing}", file=sys.stderr)
    print(f"filled {len(MARKERS) - len(missing)}/{len(MARKERS)} experiment tables")


if __name__ == "__main__":
    main()
