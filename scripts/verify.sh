#!/usr/bin/env bash
# Tier-1 verification gate plus workspace-wide lint pass.
# Run from the repo root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== network fabric tests (bounded: must not hang on a dead socket) =="
timeout 120 cargo test -q --test network_fabric

echo "== clippy (-D warnings): whole workspace, all targets =="
cargo clippy --no-deps --workspace --all-targets -- -D warnings

echo "== bench smoke (--test mode: run once, no timing) =="
./scripts/bench.sh --smoke

echo "verify.sh: all gates passed"
