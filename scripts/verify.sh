#!/usr/bin/env bash
# Tier-1 verification gate plus workspace-wide lint pass.
# Run from the repo root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== network fabric tests (bounded: must not hang on a dead socket) =="
timeout 120 cargo test -q --test network_fabric

echo "== churn smoke (breaker + memo under injected faults) =="
timeout 120 cargo test -q --test network_fabric -- churn_burst timed_out_op

echo "== hetsec lint: clean fixtures stay clean, defect fixture matches golden =="
LINT=./target/release/hetsec
out="$($LINT lint fixtures/figures_clean.kn --rbac fixtures/figures_clean.rbac.json)"
if [ "$out" != "clean: no findings" ]; then
    echo "figures_clean.kn is no longer lint-clean:"; echo "$out"; exit 1
fi
$LINT lint fixtures/defects.kn --rbac fixtures/defects.rbac.json \
    --now 200 --revoked Kdave --format json | diff -u fixtures/defects.golden.json - \
    || { echo "defects.kn lint output drifted from fixtures/defects.golden.json"; exit 1; }

echo "== incremental analysis: warm engine must agree with the cold run =="
$LINT lint fixtures/defects.kn --rbac fixtures/defects.rbac.json \
    --now 200 --revoked Kdave --incremental-check > /dev/null \
    || { echo "verify.sh: incremental-check diverged on defects.kn"; exit 1; }
$LINT lint fixtures/figures_clean.kn --incremental-check > /dev/null \
    || { echo "verify.sh: incremental-check diverged on figures_clean.kn"; exit 1; }

echo "== hetsec diff: semantic verdict diff matches golden =="
$LINT diff fixtures/defects.kn fixtures/defects_v2.kn \
    --now 200 --revoked Kdave --format json | diff -u fixtures/semdiff.golden.json - \
    || { echo "hetsec diff output drifted from fixtures/semdiff.golden.json"; exit 1; }

echo "== sharded fabric tests (bounded: mux + forwarding must not hang) =="
timeout 120 cargo test -q --test sharded_fabric

echo "== 2-shard mux smoke (small principal count, real TCP fabric) =="
out="$(timeout 120 ./target/release/hetsec loadgen \
    --principals 500 --ops 60 --shards 2 --window 8 --callers 2 \
    --pipeline 4 --service-us 200)"
echo "$out"
echo "$out" | grep -q "60/60 ops ok over 2 shard(s), mux transport" \
    || { echo "verify.sh: 2-shard mux smoke dropped ops"; exit 1; }

echo "== two-node verdict-stamp smoke (stamps must amortise across a real fabric) =="
out="$(timeout 120 ./target/release/hetsec serve 127.0.0.1:0 smoke Kc 24 --shards 2)"
echo "$out"
echo "$out" | grep -q "24/24 ok" \
    || { echo "verify.sh: two-node stamp smoke dropped ops"; exit 1; }
echo "$out" | grep -Eq "verdict stamps: issued [1-9][0-9]*, clients admitted [1-9][0-9]* \(rejected 0, stale 0\)" \
    || { echo "verify.sh: two-node stamp smoke issued/admitted no verdict stamps"; exit 1; }

echo "== verdict-stamp tests (tamper property, revocation, cross-node amortisation) =="
timeout 120 cargo test -q --test verdict_stamps

echo "== batch-equivalence smoke (decide_batch === per-request decide) =="
timeout 120 cargo test -q --test batch_equivalence
timeout 120 cargo test -q --test hotpath_equivalence -- batch

echo "== clippy (-D warnings): whole workspace, all targets =="
cargo clippy --no-deps --workspace --all-targets -- -D warnings

echo "== bench smoke (--test mode: run once, no timing) =="
./scripts/bench.sh --smoke

echo "verify.sh: all gates passed"
