#!/usr/bin/env bash
# Tier-1 verification gate plus lint pass on the crates this change
# touches most. Run from the repo root: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== clippy (-D warnings): hetsec-keynote, hetsec-webcom =="
cargo clippy --no-deps -p hetsec-keynote -p hetsec-webcom --all-targets -- -D warnings

echo "verify.sh: all gates passed"
