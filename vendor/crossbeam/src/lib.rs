//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface this workspace uses is provided,
//! implemented over `std::sync::mpsc`. `std::sync::mpsc::Sender` is
//! `Sync` on modern toolchains, so the clone-and-share patterns the
//! WebCom fabric relies on behave as with real crossbeam channels.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// The message could not be sent because the channel is disconnected.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The channel is currently empty, or disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on a disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// No message arrived before the timeout, or the channel is
    /// disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on a disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}
}
