//! Offline placeholder for the `rand` crate.
//!
//! The workspace lists `rand` as a dependency but no code path uses it;
//! this empty crate satisfies dependency resolution without network
//! access. Grow it (or vendor the real crate) if randomness is needed.
