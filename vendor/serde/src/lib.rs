//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors a compact serialization framework that is API-compatible with
//! the subset of serde the codebase uses: `Serialize`/`Deserialize`
//! derives, manual impls via `Serializer::serialize_str` and
//! `Deserializer` + `de::Error::custom`, and `serde_json`-style
//! round-trips.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! self-describing [`Content`] tree (the same trick serde itself uses
//! internally for untagged enums). A `Serializer` consumes a `Content`;
//! a `Deserializer` produces one. This keeps derived code tiny while
//! preserving serde's externally-tagged enum representation and
//! transparent newtype behaviour.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt::{self, Display};
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

/// Self-describing serialization tree — the data model every value
/// passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

pub mod ser {
    use std::fmt::{Debug, Display};

    /// Errors produced (or wrapped) during serialization.
    pub trait Error: Sized + Debug + Display {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod de {
    use std::fmt::{Debug, Display};

    /// Errors produced (or wrapped) during deserialization.
    pub trait Error: Sized + Debug + Display {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can consume a [`Content`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_owned()))
    }
}

/// A data format that can produce a [`Content`] tree.
///
/// The `'de` lifetime mirrors serde's API so manual impls written
/// against real serde compile unchanged; this stand-in always copies
/// out of the input, so the lifetime carries no borrow.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The error type of the in-memory `Content` format itself.
#[derive(Debug)]
pub struct ContentError(pub String);

impl Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serializer that just hands back the `Content` tree.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Deserializer that reads from an in-memory `Content` tree.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}

/// Support plumbing for derive-generated code and data formats. Not a
/// stable API, mirrors serde's own `__private` convention.
pub mod __private {
    use super::*;

    /// Serialize any value into a `Content` tree, wrapping the error
    /// into the caller's error type.
    pub fn ser_content<T: Serialize + ?Sized, E: ser::Error>(value: &T) -> Result<Content, E> {
        value.serialize(ContentSerializer).map_err(|e| E::custom(e))
    }

    /// Deserialize any value out of a `Content` tree, wrapping the error
    /// into the caller's error type.
    pub fn de_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
        T::deserialize(ContentDeserializer(content)).map_err(|e| E::custom(e))
    }

    /// Pull a named field out of a struct map. Missing fields
    /// deserialize from `Null`, which makes `Option` fields default to
    /// `None` (as with serde's `missing_field`) while required fields
    /// produce a "missing field" error.
    pub fn take_field<'de, T: Deserialize<'de>, E: de::Error>(
        map: &mut Vec<(Content, Content)>,
        name: &str,
    ) -> Result<T, E> {
        let pos = map
            .iter()
            .position(|(k, _)| matches!(k, Content::Str(s) if s == name));
        match pos {
            Some(i) => de_content(map.remove(i).1),
            None => de_content(Content::Null)
                .map_err(|_: E| E::custom(format!("missing field `{name}`"))),
        }
    }

    /// Pull a named field out of a struct map, falling back to the
    /// type's `Default` when absent — the shim's implementation of
    /// `#[serde(default)]` (lets message types grow fields without
    /// breaking older peers).
    pub fn take_field_default<'de, T: Deserialize<'de> + Default, E: de::Error>(
        map: &mut Vec<(Content, Content)>,
        name: &str,
    ) -> Result<T, E> {
        let pos = map
            .iter()
            .position(|(k, _)| matches!(k, Content::Str(s) if s == name));
        match pos {
            Some(i) => de_content(map.remove(i).1),
            None => Ok(T::default()),
        }
    }

    /// Pull the next element from a sequence being deserialized into a
    /// tuple (struct/variant).
    pub fn next_elem<'de, T: Deserialize<'de>, E: de::Error>(
        iter: &mut std::vec::IntoIter<Content>,
    ) -> Result<T, E> {
        match iter.next() {
            Some(c) => de_content(c),
            None => Err(E::custom("sequence shorter than expected")),
        }
    }
}

use __private::{de_content, ser_content};

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::I64(*self as i64))
            }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize);

macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Null)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn ser_seq<'a, S, T, I>(serializer: S, items: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
{
    let mut seq = Vec::new();
    for item in items {
        seq.push(ser_content(item)?);
    }
    serializer.serialize_content(Content::Seq(seq))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_seq(serializer, self)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_seq(serializer, self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_seq(serializer, self)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_seq(serializer, self)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_seq(serializer, self)
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_seq(serializer, self)
    }
}

fn ser_map<'a, S, K, V, I>(serializer: S, entries: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = Vec::new();
    for (k, v) in entries {
        map.push((ser_content(k)?, ser_content(v)?));
    }
    serializer.serialize_content(Content::Map(map))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_map(serializer, self)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_map(serializer, self)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::Seq(vec![$(ser_content(&self.$n)?),+]))
            }
        }
    )*};
}
ser_tuple! {
    (0 T0)
    (0 T0, 1 T1)
    (0 T0, 1 T1, 2 T2)
    (0 T0, 1 T1, 2 T2, 3 T3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

fn content_err<E: de::Error>(expected: &str, got: &Content) -> E {
    let kind = match got {
        Content::Null => "null",
        Content::Bool(_) => "a boolean",
        Content::I64(_) | Content::U64(_) | Content::F64(_) => "a number",
        Content::Str(_) => "a string",
        Content::Seq(_) => "a sequence",
        Content::Map(_) => "a map",
    };
    E::custom(format!("expected {expected}, found {kind}"))
}

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                let out = match &c {
                    Content::I64(v) => <$t>::try_from(*v).ok(),
                    Content::U64(v) => <$t>::try_from(*v).ok(),
                    Content::F64(v) if v.fract() == 0.0 => Some(*v as $t),
                    _ => return Err(content_err("an integer", &c)),
                };
                out.ok_or_else(|| <D::Error as de::Error>::custom(
                    format!("integer out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
de_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

macro_rules! de_float {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                match c {
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::F64(v) => Ok(v as $t),
                    other => Err(content_err("a number", &other)),
                }
            }
        }
    )*};
}
de_float!(f32 f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.deserialize_content()?;
        match c {
            Content::Bool(v) => Ok(v),
            other => Err(content_err("a boolean", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.deserialize_content()?;
        match &c {
            Content::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(ch), None) => Ok(ch),
                    _ => Err(<D::Error as de::Error>::custom("expected a single character")),
                }
            }
            other => Err(content_err("a character", other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.deserialize_content()?;
        match c {
            Content::Str(s) => Ok(s),
            other => Err(content_err("a string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.deserialize_content()?;
        match c {
            Content::Null => Ok(()),
            other => Err(content_err("null", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = deserializer.deserialize_content()?;
        match c {
            Content::Null => Ok(None),
            other => de_content(other).map(Some),
        }
    }
}

fn de_seq<'de, T: Deserialize<'de>, E: de::Error>(c: Content) -> Result<Vec<T>, E> {
    match c {
        Content::Seq(items) => items.into_iter().map(de_content).collect(),
        other => Err(content_err("a sequence", &other)),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de_seq(deserializer.deserialize_content()?)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de_seq(deserializer.deserialize_content()?).map(Vec::into_iter).map(|it| it.collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de_seq(deserializer.deserialize_content()?).map(Vec::into_iter).map(|it| it.collect())
    }
}

impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + Hash,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de_seq(deserializer.deserialize_content()?).map(Vec::into_iter).map(|it| it.collect())
    }
}

fn de_entries<'de, K: Deserialize<'de>, V: Deserialize<'de>, E: de::Error>(
    c: Content,
) -> Result<Vec<(K, V)>, E> {
    match c {
        Content::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| Ok((de_content(k)?, de_content(v)?)))
            .collect(),
        other => Err(content_err("a map", &other)),
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de_entries(deserializer.deserialize_content()?).map(|v| v.into_iter().collect())
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de_entries(deserializer.deserialize_content()?).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Rc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Arc::new)
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let c = deserializer.deserialize_content()?;
                match c {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(de_content::<$t, D::Error>(it.next().unwrap())?,)+))
                    }
                    other => Err(content_err(
                        concat!("a sequence of length ", $len), &other,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; T0)
    (2; T0, T1)
    (3; T0, T1, T2)
    (4; T0, T1, T2, T3)
}
