//! Offline stand-in for the `criterion` crate.
//!
//! A minimal timing harness exposing the API surface the workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId` and
//! `Bencher::iter`. Measurement is simple adaptive batching (double the
//! iteration count until a batch runs long enough to time reliably,
//! then report the best-of-three mean), which is plenty to compare
//! series within one run — the use the repo's figure benches put it to.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results of every benchmark run so far, for [`finalize`].
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Smoke mode: run each routine a handful of times and skip the timed
/// measurement window. Enabled by passing `--test` to the bench binary
/// (as `cargo bench -- --test` does) or setting `BENCH_SMOKE=1`; lets
/// CI execute every bench cheaply so they cannot bitrot.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test") || std::env::var_os("BENCH_SMOKE").is_some()
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into a benchmark id; lets `bench_function` accept both
/// string literals and [`BenchmarkId`]s, as in real criterion.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Expected throughput of one iteration, echoed in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Benchmark manager; the `criterion_group!` macro creates one per
/// group function.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(120) }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let t = self.measurement_time;
        run_one(id, None, t, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_one(&id, self.throughput, self.measurement_time, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        run_one(&id, self.throughput, self.measurement_time, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    smoke: bool,
    best_ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            // Correctness-only pass: exercise the routine, record a
            // single rough timing, skip the measurement window.
            let start = Instant::now();
            std_black_box(routine());
            self.best_ns_per_iter = start.elapsed().as_nanos() as f64;
            return;
        }
        // Warm up and find an iteration count whose batch is long
        // enough to time reliably.
        let mut iters: u64 = 1;
        let batch_floor = Duration::from_micros(200);
        let elapsed = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || iters >= 1 << 30 {
                break elapsed;
            }
            iters *= 2;
        };
        // Measure: repeat the sized batch for the configured window,
        // keep the fastest batch (least interference).
        let mut best = elapsed;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed < best {
                best = elapsed;
            }
        }
        self.best_ns_per_iter = best.as_nanos() as f64 / iters as f64;
    }

    /// Criterion's escape hatch for routines that time themselves: the
    /// closure receives an iteration count and returns the elapsed wall
    /// time for that many iterations. Same adaptive sizing and
    /// best-batch selection as [`Bencher::iter`], but the caller owns
    /// the clock — the repo's batch benches use it to report
    /// per-element rather than per-call time.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        if self.smoke {
            self.best_ns_per_iter = routine(1).as_nanos() as f64;
            return;
        }
        let mut iters: u64 = 1;
        let batch_floor = Duration::from_micros(200);
        let elapsed = loop {
            let elapsed = routine(iters);
            if elapsed >= batch_floor || iters >= 1 << 30 {
                break elapsed;
            }
            iters *= 2;
        };
        let mut best = elapsed;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let elapsed = routine(iters);
            if elapsed < best {
                best = elapsed;
            }
        }
        self.best_ns_per_iter = best.as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        measurement_time,
        smoke: smoke_mode(),
        best_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    let ns = b.best_ns_per_iter;
    if !ns.is_nan() && !b.smoke {
        RESULTS.lock().unwrap().push((id.to_string(), ns));
    }
    let time = format_ns(ns);
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("{id:<60} time: {time:>12}   thrpt: {per_sec:.0} elem/s");
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("{id:<60} time: {time:>12}   thrpt: {per_sec:.0} B/s");
        }
        _ => println!("{id:<60} time: {time:>12}"),
    }
}

/// Writes every recorded result as JSON to the path in the
/// `CRITERION_JSON` environment variable (no-op when unset). Called by
/// `criterion_main!` after all groups have run; scripts/bench.sh uses
/// it to build the repo's machine-readable `BENCH_*.json` summaries.
pub fn finalize() {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (id, ns)) in results.iter().enumerate() {
        let escaped: String = id
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "    {{ \"id\": \"{escaped}\", \"ns_per_iter\": {ns:.1} }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: failed to write {}: {e}", path.to_string_lossy());
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "not measured".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Defines a group function running each benchmark target in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}
