//! Offline stand-in for `serde_json`.
//!
//! Provides `to_string`, `to_string_pretty` and `from_str` over the
//! vendored serde's [`Content`] data model. The emitted JSON matches
//! serde_json's conventions (externally tagged enums, `42.0` for whole
//! floats, string-keyed objects only).

use serde::{Content, ContentDeserializer, ContentSerializer, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value.serialize(ContentSerializer).map_err(|e| Error(e.0))?;
    let mut out = String::new();
    write_content(&mut out, &content, None, 0)?;
    Ok(out)
}

/// Serialize a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = value.serialize(ContentSerializer).map_err(|e| Error(e.0))?;
    let mut out = String::new();
    write_content(&mut out, &content, Some(2), 0)?;
    Ok(out)
}

fn write_content(
    out: &mut String,
    c: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite float"));
            }
            if v.fract() == 0.0 && v.abs() < 1e15 {
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                match k {
                    Content::Str(s) => write_escaped(out, s),
                    _ => return Err(Error::new("JSON object keys must be strings")),
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserialize a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::deserialize(ContentDeserializer(content)).map_err(|e| Error(e.0))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at offset {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char,
            )));
        }
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid JSON at offset {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Content::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of JSON input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Content::Seq(items)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}, found `{}`",
                        self.pos - 1,
                        c as char,
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Content::Map(entries)),
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}, found `{}`",
                        self.pos - 1,
                        c as char,
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast-forward over the unescaped run
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?,
            );
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0c}'),
                    b'u' => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // surrogate pair
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    c => {
                        return Err(Error::new(format!(
                            "invalid escape `\\{}`",
                            c as char
                        )))
                    }
                },
                c if c < 0x20 => {
                    return Err(Error::new("control character in JSON string"))
                }
                _ => unreachable!("scanner stopped on quote, backslash, or control"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in unicode escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
