//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! syn or quote (neither is available offline): a small token-tree
//! walker extracts the item shape (struct/enum, field names, variant
//! shapes) and code is generated as strings targeting the vendored
//! serde's `Content` data model.
//!
//! Supported shapes — everything this workspace derives:
//! * named-field structs → externally a map
//! * newtype structs (1-tuple) → transparent, like serde's newtype rule
//! * tuple structs (n ≥ 2) → a sequence
//! * unit structs → null
//! * enums with unit / newtype / tuple / struct variants →
//!   externally tagged, exactly serde's default representation
//! * `#[serde(default)]` on named struct/variant fields → the field
//!   deserializes from the type's `Default` when absent (wire
//!   compatibility for newly added fields)
//!
//! Generics are not supported (no derived type in the workspace is
//! generic); the macro panics with a clear message if one appears.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its name and whether it carries `#[serde(default)]`.
#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip `#[...]` attributes (doc comments arrive in this form too).
    fn skip_attributes(&mut self) {
        self.consume_attributes();
    }

    /// Skip `#[...]` attributes, reporting whether one of them was
    /// `#[serde(default)]`.
    fn consume_attributes(&mut self) -> bool {
        let mut has_default = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    if attr_is_serde_default(g.stream()) {
                        has_default = true;
                    }
                    self.pos += 1;
                }
            }
        }
        has_default
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Skip a field's type: everything up to a top-level `,`, tracking
    /// `<`/`>` nesting so commas inside generics don't terminate early.
    /// (`(...)`/`[...]` arrive as single Group tokens, so only angle
    /// brackets need manual depth tracking.)
    fn skip_type(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        return;
                    }
                    if c == '-' {
                        // consume `->` as a unit so the '>' is not
                        // mistaken for a closing angle bracket
                        self.pos += 1;
                        if let Some(TokenTree::Punct(q)) = self.peek() {
                            if q.as_char() == '>' {
                                self.pos += 1;
                            }
                        }
                        continue;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth = angle_depth.saturating_sub(1);
                    }
                    self.pos += 1;
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }
}

/// True for a `serde(...)` attribute body containing a bare `default`
/// (the only serde field attribute the shim implements).
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(ref id) if id.to_string() == "default")),
        _ => false,
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        let default = c.consume_attributes();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_type();
        // consume the trailing comma, if any
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.pos += 1;
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut count = 0usize;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        c.skip_type();
        count += 1;
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.pos += 1;
            }
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.pos += 1;
                Fields::Tuple(count_tuple_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.pos += 1;
                Fields::Named(parse_named_fields(inner))
            }
            _ => Fields::Unit,
        };
        // skip an explicit discriminant (`= expr`) up to the comma
        while let Some(tok) = c.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    c.pos += 1;
                    break;
                }
                _ => c.pos += 1,
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (offline stand-in): generic type `{name}` is not supported");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Shape::Struct(Fields::Unit),
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => {
            "__serializer.serialize_content(::serde::Content::Null)".to_string()
        }
        Shape::Struct(Fields::Tuple(1)) => {
            // newtype structs serialize transparently, as in serde
            "::serde::Serialize::serialize(&self.0, __serializer)".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::ser_content(&self.{i})?"))
                .collect();
            format!(
                "__serializer.serialize_content(::serde::Content::Seq(vec![{}]))",
                elems.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut __map: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n",
            );
            for f in fields {
                let f = &f.name;
                s.push_str(&format!(
                    "__map.push((::serde::Content::Str(String::from(\"{f}\")), \
                     ::serde::__private::ser_content(&self.{f})?));\n"
                ));
            }
            s.push_str("__serializer.serialize_content(::serde::Content::Map(__map))");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => __serializer.serialize_content(\
                             ::serde::Content::Str(String::from(\"{vname}\"))),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => {{\n\
                             let __v = ::serde::__private::ser_content(__f0)?;\n\
                             __serializer.serialize_content(::serde::Content::Map(vec![\
                             (::serde::Content::Str(String::from(\"{vname}\")), __v)]))\n}}\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::__private::ser_content({b})?"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let __v = ::serde::Content::Seq(vec![{elems}]);\n\
                             __serializer.serialize_content(::serde::Content::Map(vec![\
                             (::serde::Content::Str(String::from(\"{vname}\")), __v)]))\n}}\n",
                            binds = binds.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    Fields::Named(fnames) => {
                        let binds =
                            fnames.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        let mut inner = String::from(
                            "let mut __inner: Vec<(::serde::Content, ::serde::Content)> = \
                             Vec::new();\n",
                        );
                        for f in fnames {
                            let f = &f.name;
                            inner.push_str(&format!(
                                "__inner.push((::serde::Content::Str(String::from(\"{f}\")), \
                                 ::serde::__private::ser_content({f})?));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}\
                             __serializer.serialize_content(::serde::Content::Map(vec![\
                             (::serde::Content::Str(String::from(\"{vname}\")), \
                             ::serde::Content::Map(__inner))]))\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         #[allow(unused_mut, clippy::vec_init_then_push)]\n{{ {body} }}\n}}\n}}\n"
    );
    out.parse().expect("serde derive: generated Serialize impl failed to parse")
}

fn gen_named_construct(path: &str, fields: &[Field], map_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let (name, taker) = (
                &f.name,
                if f.default { "take_field_default" } else { "take_field" },
            );
            format!("{name}: ::serde::__private::{taker}(&mut {map_var}, \"{name}\")?")
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_tuple_construct(path: &str, n: usize, iter_var: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|_| format!("::serde::__private::next_elem(&mut {iter_var})?"))
        .collect();
    format!("{path}({})", inits.join(", "))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let err = "<__D::Error as ::serde::de::Error>::custom";
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => {
            format!(
                "let _ = __deserializer.deserialize_content()?;\n\
                 ::core::result::Result::Ok({name})"
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!(
                "::core::result::Result::Ok({name}(\
                 ::serde::Deserialize::deserialize(__deserializer)?))"
            )
        }
        Shape::Struct(Fields::Tuple(n)) => {
            format!(
                "let __c = __deserializer.deserialize_content()?;\n\
                 let __seq = match __c {{\n\
                 ::serde::Content::Seq(s) if s.len() == {n} => s,\n\
                 _ => return ::core::result::Result::Err({err}(\
                 \"expected a sequence of length {n} for tuple struct {name}\")),\n}};\n\
                 let mut __it = __seq.into_iter();\n\
                 ::core::result::Result::Ok({ctor})",
                ctor = gen_tuple_construct(name, *n, "__it"),
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            format!(
                "let __c = __deserializer.deserialize_content()?;\n\
                 let mut __map = match __c {{\n\
                 ::serde::Content::Map(m) => m,\n\
                 _ => return ::core::result::Result::Err({err}(\
                 \"expected a map for struct {name}\")),\n}};\n\
                 ::core::result::Result::Ok({ctor})",
                ctor = gen_named_construct(name, fields, "__map"),
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                             ::serde::__private::de_content(__v)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __seq = match __v {{\n\
                             ::serde::Content::Seq(s) if s.len() == {n} => s,\n\
                             _ => return ::core::result::Result::Err({err}(\
                             \"expected a sequence of length {n} for variant {vname}\")),\n}};\n\
                             let mut __it = __seq.into_iter();\n\
                             ::core::result::Result::Ok({ctor})\n}}\n",
                            ctor = gen_tuple_construct(&format!("{name}::{vname}"), *n, "__it"),
                        ));
                    }
                    Fields::Named(fnames) => {
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __inner = match __v {{\n\
                             ::serde::Content::Map(m) => m,\n\
                             _ => return ::core::result::Result::Err({err}(\
                             \"expected a map for variant {vname}\")),\n}};\n\
                             ::core::result::Result::Ok({ctor})\n}}\n",
                            ctor = gen_named_construct(
                                &format!("{name}::{vname}"),
                                fnames,
                                "__inner"
                            ),
                        ));
                    }
                }
            }
            format!(
                "let __c = __deserializer.deserialize_content()?;\n\
                 match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err({err}(\
                 format!(\"unknown variant `{{__other}}` of enum {name}\"))),\n}},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = __m.into_iter().next().unwrap();\n\
                 let __k = match __k {{\n\
                 ::serde::Content::Str(s) => s,\n\
                 _ => return ::core::result::Result::Err({err}(\
                 \"expected a string variant tag for enum {name}\")),\n}};\n\
                 #[allow(unused_variables)]\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::core::result::Result::Err({err}(\
                 format!(\"unknown variant `{{__other}}` of enum {name}\"))),\n}}\n}}\n\
                 _ => ::core::result::Result::Err({err}(\
                 \"expected a string or single-entry map for enum {name}\")),\n}}"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         #[allow(unused_mut)]\n{{ {body} }}\n}}\n}}\n"
    );
    out.parse().expect("serde derive: generated Deserialize impl failed to parse")
}
