//! Offline placeholder for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so the
//! workspace's property tests (`tests/properties.rs`) are written
//! against a small deterministic in-tree generator harness instead of
//! proptest's strategy combinators. This empty crate keeps the
//! `proptest = { workspace = true }` dev-dependency entries resolvable.
