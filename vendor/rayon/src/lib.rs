//! Offline stand-in for the `rayon` crate.
//!
//! `par_iter()` returns an ordinary sequential iterator, so
//! `.map(..).collect()` chains compile and produce identical results —
//! just without work-stealing parallelism. Call sites keep their shape
//! and can move back to real rayon unchanged once a registry is
//! available.

pub mod iter {
    /// `rayon`'s by-reference parallel-iterator entry point, sequentially.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;

        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}
